//! Walk the paper's §3 design progression — Base → EC → ECS → HR → RL →
//! Final — on one workload and show what each design point buys.
//!
//! The base design flushes caches at every commit and invalidates
//! everything on squashes; EC makes commits one cycle; ECS retains
//! architectural data across squashes; HR snarfs; RL moves to realistic
//! multi-word lines; Final adds the hybrid update–invalidate protocol.
//!
//! Run with: `cargo run --release --example design_progression`

use svc_repro::multiscalar::{Engine, EngineConfig, PredictorModel};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::VersionedMemory;
use svc_repro::workloads::{SyntheticWorkload, WorkloadProfile};

fn main() {
    let mut profile = WorkloadProfile::demo();
    profile.num_tasks = 4_000;
    profile.mispredict_rate = 0.03; // give the squash machinery work to do
    let wl = SyntheticWorkload::new(profile, 7);

    let designs: [(&str, SvcConfig); 6] = [
        ("base  (§3.2)", SvcConfig::base(4)),
        ("EC    (§3.4)", SvcConfig::ec(4)),
        ("ECS   (§3.5)", SvcConfig::ecs(4)),
        ("HR    (§3.6)", SvcConfig::hr(4)),
        ("RL    (§3.7)", SvcConfig::rl(4)),
        ("final (§3.8)", SvcConfig::final_design(4)),
    ];

    println!(
        "{:14} {:>6} {:>9} {:>9} {:>10} {:>9} {:>8}",
        "design", "IPC", "missrate", "busutil", "transfers", "snarfs", "retained"
    );
    for (name, cfg) in designs {
        let engine_cfg = EngineConfig {
            num_pus: 4,
            predictor: PredictorModel {
                accuracy: 1.0 - profile.mispredict_rate,
                detect_cycles: profile.detect_cycles,
                seed: 7,
            },
            seed: 7,
            garbage_addr_space: profile.hot_set,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(engine_cfg, SvcSystem::new(cfg));
        let report = engine.run(&wl);
        let mem = engine.into_memory();
        let stats = mem.stats();
        println!(
            "{:14} {:6.2} {:9.3} {:9.3} {:10} {:9} {:8}",
            name,
            report.ipc(),
            stats.miss_ratio(),
            report.bus_utilization(),
            stats.cache_transfers,
            stats.snarfs,
            stats.squash_retained,
        );
    }
    println!("\nExpected shape: IPC rises (and miss ratio falls) down the table —");
    println!("each §3 design point exists to fix a measurable problem of the last.");
}
