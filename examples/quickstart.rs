//! Quickstart: drive the SVC directly through the `VersionedMemory` API.
//!
//! Re-enacts the paper's running example (Figure 7): four speculative
//! tasks issue loads and stores to the same address out of order; the SVC
//! supplies each load with the closest previous version, detects the
//! memory-dependence violation of Figure 9, and commits versions in
//! program order.
//!
//! Run with: `cargo run --release --example quickstart`

use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = Addr(64);
    // Four PUs, the paper's final design. PUs are named W, X, Y, Z in the
    // paper; here they are PU0..PU3.
    let mut svc = SvcSystem::new(SvcConfig::final_design(4));

    // Tasks 0..3 run speculatively in parallel (paper Figure 7):
    //   task 0: store 0, A      task 2: load A
    //   task 1: store 1, A      task 3: store 3, A
    svc.assign(PuId(0), TaskId(0));
    svc.assign(PuId(2), TaskId(1));
    svc.assign(PuId(3), TaskId(2));
    svc.assign(PuId(1), TaskId(3));

    // Out-of-order execution: task 0 and task 3 store first.
    svc.store(PuId(0), a, Word(0), Cycle(0))?;
    svc.store(PuId(1), a, Word(3), Cycle(2))?;

    // Task 2 loads *before* task 1's store — speculation at work. The
    // closest previous version right now is task 0's.
    let out = svc.load(PuId(3), a, Cycle(4))?;
    println!("task 2 speculatively loads A = {} (from task 0)", out.value);

    // Task 1's store arrives late and exposes the mis-speculation: the
    // SVC walks the Version Ordering List and squashes task 2 onward.
    let st = svc.store(PuId(2), a, Word(1), Cycle(6))?;
    let violation = st.violation.expect("task 2 read a stale version");
    println!("violation detected: {violation}");

    // The execution engine's job: squash the victim and younger tasks,
    // then replay them.
    svc.squash(PuId(3)); // task 2
    svc.squash(PuId(1)); // task 3
    svc.assign(PuId(3), TaskId(2));
    svc.assign(PuId(1), TaskId(3));

    let out = svc.load(PuId(3), a, Cycle(10))?;
    println!("task 2 replays its load:  A = {} (from task 1)", out.value);
    svc.store(PuId(1), a, Word(3), Cycle(12))?;

    // Commit head-first; each commit is a single cycle (the C-bit flash).
    for (pu, task) in [(0, 0u64), (2, 1), (3, 2), (1, 3)] {
        let done = svc.commit(PuId(pu), Cycle(20 + task));
        println!("task {task} commits at {done}");
    }
    svc.drain();
    println!(
        "architectural A = {} (task 3's version)",
        svc.architectural(a)
    );
    assert_eq!(svc.architectural(a), Word(3));
    Ok(())
}
