//! Run one SPEC95 benchmark model end-to-end on the multiscalar engine,
//! with the SVC and the ARB side by side, and print the paper's metrics.
//!
//! Usage: `cargo run --release --example spec95 [benchmark] [budget]`
//! where `benchmark` is one of compress, gcc, vortex, perl, ijpeg, mgrid,
//! apsi (default: gcc) and `budget` is the committed-instruction budget
//! (default: 200000).

use svc_repro::bench::{run_spec95_with, MemoryKind};
use svc_repro::workloads::Spec95;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gcc");
    let budget: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let bench = Spec95::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}; use one of:");
            for b in Spec95::ALL {
                eprintln!("  {b}");
            }
            std::process::exit(2);
        });

    println!("benchmark {bench}, {budget} committed instructions\n");
    for memory in [
        MemoryKind::Svc { kb_per_cache: 8 },
        MemoryKind::Arb {
            hit_cycles: 1,
            cache_kb: 32,
        },
        MemoryKind::Arb {
            hit_cycles: 2,
            cache_kb: 32,
        },
    ] {
        let r = run_spec95_with(bench, memory, budget, 42);
        println!("{}:", r.memory);
        println!("  IPC              {:.2}", r.ipc);
        println!("  miss ratio       {:.3}", r.miss_ratio);
        if r.bus_utilization > 0.0 {
            println!("  bus utilization  {:.3}", r.bus_utilization);
        }
        println!(
            "  tasks committed  {} ({} squashes, {} mispredictions)",
            r.report.committed_tasks, r.report.squashes, r.report.mispredictions
        );
        println!(
            "  memory events    {} loads, {} stores, {} fills, {} transfers, {} writebacks\n",
            r.report.mem.loads,
            r.report.mem.stores,
            r.report.mem.next_level_fills,
            r.report.mem.cache_transfers,
            r.report.mem.writebacks
        );
    }
}
