//! Watch speculation fail and recover: a producer→consumer chain where
//! every consumer loads *before* its producer has stored, on the full
//! engine. Shows violations, squash-and-replay, and that the final
//! memory image still matches sequential semantics.
//!
//! Run with: `cargo run --release --example violation_replay`

use svc_repro::multiscalar::{Engine, EngineConfig};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::{Addr, VersionedMemory, Word};
use svc_repro::workloads::kernels;

fn main() {
    let n = 200;
    // Each task i loads cell i-1 first and stores cell i last: with four
    // PUs running eagerly, the load almost always beats the store.
    let program = kernels::producer_consumer(n, 6);

    let mut engine = Engine::new(
        EngineConfig::default(),
        SvcSystem::new(SvcConfig::final_design(4)),
    );
    let report = engine.run(&program);

    println!("tasks committed     {}", report.committed_tasks);
    println!("violations detected {}", report.mem.violations);
    println!("tasks squashed      {}", report.squashes);
    println!("cycles              {}", report.cycles);
    println!("IPC                 {:.2}", report.ipc());
    assert!(
        report.mem.violations > 0,
        "the eager consumer loads must mis-speculate"
    );

    // Sequential semantics survived all of it.
    let mut mem = engine.into_memory();
    mem.drain();
    for i in 0..n {
        assert_eq!(mem.architectural(Addr(i)), Word(i + 1), "cell {i}");
    }
    println!("\nfinal memory matches sequential execution for all {n} cells ✓");
    println!(
        "(speculation broke {} times and recovery replayed every one)",
        report.mem.violations
    );
}
