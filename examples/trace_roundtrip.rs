//! Export a generated workload as a text trace, re-import it, and run
//! both through the simulator — external traces are first-class inputs.
//!
//! Run with: `cargo run --release --example trace_roundtrip`

use svc_repro::bench::{run_source, MemoryKind};
use svc_repro::multiscalar::{EngineConfig, TaskSource};
use svc_repro::types::TaskId;
use svc_repro::workloads::{kernels, parse_trace, render_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any TaskSource can be exported; here, the false-sharing kernel.
    let original = kernels::false_sharing(400, 2);
    let text = render_trace(&original);
    println!(
        "rendered {} tasks to a {}-line trace; first lines:\n",
        400,
        text.lines().count()
    );
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // Parse it back and verify the round trip.
    let imported = parse_trace(&text)?;
    for i in 0..400 {
        assert_eq!(original.task(TaskId(i)), imported.task(TaskId(i)));
    }
    println!("\nround trip verified for all tasks ✓");

    // Run both; the simulation is deterministic, so results must match.
    let cfg = EngineConfig::default();
    let a = run_source(&original, MemoryKind::Svc { kb_per_cache: 8 }, cfg);
    let b = run_source(&imported, MemoryKind::Svc { kb_per_cache: 8 }, cfg);
    println!("original IPC {:.3}, imported IPC {:.3}", a.ipc, b.ipc);
    assert_eq!(a.report, b.report);
    println!("identical runs ✓ (use `svc-sim run --trace FILE` for your own traces)");
    Ok(())
}
