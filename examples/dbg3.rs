fn main() {
    use svc_repro::svc::conformance::Workload;
    use svc_repro::svc::{SvcConfig, SvcSystem};
    use svc_repro::types::*;
    use svc_repro::sim::rng::Xoshiro256;
    // find failing seed
    for seed in 1100..1115u64 {
        let wl = Workload::random(seed, 28, 40, 4);
        let mut cfg = SvcConfig::final_design(4);
        cfg.geometry = svc_repro::mem::CacheGeometry::new(8, 2, 4, 2);
        let r = std::panic::catch_unwind(|| {
            svc_repro::svc::conformance::run_lockstep_coarse(&wl, SvcSystem::new(cfg), seed)
        });
        if r.is_err() {
            println!("failing seed {seed}");
            // rerun manually with logging of ops touching line 7 (addr 28..32)
            let mut dut = SvcSystem::new(cfg);
            let mut oracle = svc_repro::svc::IdealMemory::new(4, 1);
            let mut rng = Xoshiro256::seed_from(seed ^ 0xD1F);
            let mut running: Vec<Option<(usize, usize)>> = vec![None; 4];
            let mut next_task = 0usize;
            let mut committed = 0usize;
            let mut now = Cycle(0);
            for pu in 0..4 { if next_task < wl.tasks.len() {
                running[pu] = Some((next_task, 0));
                dut.assign(PuId(pu), TaskId(next_task as u64));
                oracle.assign(PuId(pu), TaskId(next_task as u64));
                next_task += 1; } }
            let watch = |a: Addr| (28..32).contains(&a.0);
            let mut guard = 0;
            while committed < wl.tasks.len() {
                guard += 1; if guard > 500000 { println!("livelock"); break; }
                now += 1;
                let busy: Vec<usize> = (0..4).filter(|&p| running[p].is_some()).collect();
                if busy.is_empty() { break; }
                let pu = busy[rng.gen_index(0..busy.len())];
                let (task, op_idx) = running[pu].unwrap();
                let ops = &wl.tasks[task];
                if op_idx >= ops.len() {
                    let oldest = running.iter().flatten().map(|&(t, _)| t).min().unwrap();
                    if task == oldest {
                        dut.commit(PuId(pu), now); oracle.commit(PuId(pu), now);
                        committed += 1; running[pu] = None;
                        if next_task < wl.tasks.len() {
                            running[pu] = Some((next_task, 0));
                            dut.assign(PuId(pu), TaskId(next_task as u64));
                            oracle.assign(PuId(pu), TaskId(next_task as u64));
                            next_task += 1; } }
                    continue;
                }
                use svc_repro::svc::conformance::Op;
                match ops[op_idx] {
                    Op::Load(a) => {
                        let s = match dut.load(PuId(pu), a, now) { Ok(o) => o, Err(_) => continue };
                        let o = oracle.load(PuId(pu), a, now).unwrap();
                        if watch(a) { println!("T{task} load {a} dut={} oracle={}", s.value, o.value); }
                        if s.value != o.value {
                            println!("DIVERGE T{task} load {a}: dut {} oracle {}", s.value, o.value);
                            println!("{}", dut.dump_line(a));
                            return;
                        }
                        now = now.max(s.done_at); running[pu] = Some((task, op_idx + 1));
                    }
                    Op::Store(a, v) => {
                        let s = match dut.store(PuId(pu), a, v, now) { Ok(o) => o, Err(_) => continue };
                        let o = oracle.store(PuId(pu), a, v, now).unwrap();
                        if watch(a) { println!("T{task} store {a}={v} dutviol={:?} oviol={:?}", s.violation.map(|x|x.victim), o.violation.map(|x|x.victim)); }
                        now = now.max(s.done_at); running[pu] = Some((task, op_idx + 1));
                        let viol = s.violation.or(o.violation);
                        if let Some(v) = viol {
                            let victim = v.victim.0 as usize;
                            let mut hit: Vec<(usize, usize)> = running.iter().enumerate()
                                .filter_map(|(p, s)| s.map(|(t, _)| (p, t)))
                                .filter(|&(_, t)| t >= victim).collect();
                            hit.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
                            for &(p, _) in &hit { dut.squash(PuId(p)); oracle.squash(PuId(p)); running[p] = None; }
                            let mut ts: Vec<usize> = hit.iter().map(|&(_, t)| t).collect();
                            ts.sort_unstable();
                            let pus: Vec<usize> = hit.iter().map(|&(p, _)| p).collect();
                            for (i, t) in ts.into_iter().enumerate() {
                                running[pus[i]] = Some((t, 0));
                                dut.assign(PuId(pus[i]), TaskId(t as u64));
                                oracle.assign(PuId(pus[i]), TaskId(t as u64));
                            }
                        }
                    }
                }
            }
            println!("no divergence on manual rerun?");
            return;
        }
    }
    println!("no failure found");
}
