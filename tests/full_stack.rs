//! Cross-crate integration: the full stack (workload model → multiscalar
//! engine → memory system) must preserve sequential semantics on every
//! memory system, and the three memory systems must agree with each
//! other.

use svc_repro::arb::{ArbConfig, ArbSystem};
use svc_repro::multiscalar::{Engine, EngineConfig, TaskSource};
use svc_repro::svc::conformance::{run_lockstep, Workload};
use svc_repro::svc::{IdealMemory, SvcConfig, SvcSystem};
use svc_repro::types::{Addr, TaskId, VersionedMemory, Word};
use svc_repro::workloads::{kernels, Spec95, SyntheticWorkload, WorkloadProfile};

/// Runs a full engine execution and returns the drained memory system.
fn run_engine<M: VersionedMemory>(mem: M, src: &dyn TaskSource, seed: u64) -> M {
    let profile = WorkloadProfile::demo();
    let cfg = EngineConfig {
        num_pus: mem.num_pus(),
        predictor: profile.predictor(seed),
        seed,
        garbage_addr_space: 128,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(cfg, mem);
    let report = engine.run(src);
    assert!(!report.hit_cycle_limit, "engine converged");
    let mut mem = engine.into_memory();
    mem.drain();
    mem
}

/// The set of addresses a workload's tasks can touch (collected from the
/// task descriptions themselves).
fn touched(src: &dyn TaskSource) -> Vec<Addr> {
    use svc_repro::multiscalar::Instr;
    let mut addrs = Vec::new();
    let mut id = 0;
    while let Some(task) = src.task(TaskId(id)) {
        for ins in task {
            match ins {
                Instr::Load(a) | Instr::Store(a, _) => {
                    if !addrs.contains(&a) {
                        addrs.push(a);
                    }
                }
                Instr::Compute(_) => {}
            }
        }
        id += 1;
    }
    addrs
}

#[test]
fn all_memory_systems_commit_identical_state_on_synthetic_workload() {
    let mut profile = WorkloadProfile::demo();
    profile.num_tasks = 400;
    profile.mispredict_rate = 0.03;
    let wl = SyntheticWorkload::new(profile, 11);

    let ideal = run_engine(IdealMemory::new(4, 1), &wl, 11);
    let svc = run_engine(SvcSystem::new(SvcConfig::final_design(4)), &wl, 11);
    let base = run_engine(SvcSystem::new(SvcConfig::base(4)), &wl, 11);
    let arb = run_engine(ArbSystem::new(ArbConfig::paper(4, 2, 32)), &wl, 11);

    for a in touched(&wl) {
        let want = ideal.architectural(a);
        assert_eq!(svc.architectural(a), want, "svc-final at {a}");
        assert_eq!(base.architectural(a), want, "svc-base at {a}");
        assert_eq!(arb.architectural(a), want, "arb at {a}");
    }
}

#[test]
fn spec95_models_run_on_both_memory_systems() {
    // A quick run of each benchmark model on both systems: no panics, all
    // metrics in range. (The full-budget runs are the fig19/fig20 bins.)
    use svc_repro::bench::{run_spec95_with, MemoryKind};
    for b in Spec95::ALL {
        let svc = run_spec95_with(b, MemoryKind::Svc { kb_per_cache: 8 }, 8_000, 3);
        let arb = run_spec95_with(
            b,
            MemoryKind::Arb {
                hit_cycles: 2,
                cache_kb: 32,
            },
            8_000,
            3,
        );
        for r in [&svc, &arb] {
            assert!(r.ipc > 0.1 && r.ipc < 8.0, "{b}: ipc {}", r.ipc);
            assert!(r.miss_ratio < 0.5, "{b}: miss {}", r.miss_ratio);
            assert!(!r.report.hit_cycle_limit, "{b} converged");
        }
        assert!(svc.bus_utilization > 0.0 && svc.bus_utilization < 1.0);
    }
}

#[test]
fn kernels_preserve_sequential_semantics_under_heavy_speculation() {
    for (name, src) in [
        ("producer_consumer", kernels::producer_consumer(120, 4)),
        ("reduction", kernels::reduction(120, 2)),
        ("false_sharing", kernels::false_sharing(120, 2)),
    ] {
        let ideal = run_engine(IdealMemory::new(4, 1), &src, 5);
        let svc = run_engine(SvcSystem::new(SvcConfig::final_design(4)), &src, 5);
        for a in touched(&src) {
            assert_eq!(
                svc.architectural(a),
                ideal.architectural(a),
                "{name} at {a}"
            );
        }
    }
}

#[test]
fn coherence_baseline_agrees_with_flat_memory_under_engine_free_use() {
    // The MRSW substrate is not speculative, but it must agree with a
    // flat-memory model when driven sequentially (see svc-coherence's own
    // suite for concurrent cases).
    use svc_repro::coherence::{SmpConfig, SmpSystem};
    use svc_repro::types::{Cycle, PuId};
    let mut smp = SmpSystem::new(SmpConfig::small_for_tests());
    let mut model = std::collections::HashMap::new();
    let mut now = Cycle(0);
    for i in 0..500u64 {
        let a = Addr(i % 64);
        if i % 3 == 0 {
            now = smp.store(PuId((i % 4) as usize), a, Word(i), now);
            model.insert(a, Word(i));
        } else {
            let out = smp.load(PuId((i % 4) as usize), a, now);
            now = out.done_at;
            assert_eq!(out.value, model.get(&a).copied().unwrap_or(Word::ZERO));
        }
    }
    smp.assert_coherent();
}

#[test]
fn arb_and_svc_conform_on_the_same_random_workloads() {
    for seed in 0..6 {
        let wl = Workload::random(seed, 20, 24, 4);
        run_lockstep(&wl, SvcSystem::new(SvcConfig::final_design(4)), seed);
        run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(4, 1, 32)), seed);
    }
}

#[test]
fn smp_versioned_shim_stays_coherent_under_concurrent_interleavings() {
    // Concurrent complement to the sequential test above: all four PUs
    // hold live tasks at once and their loads/stores interleave. The MRSW
    // substrate is non-speculative, so every store is immediately part of
    // the coherent image — a flat map is the exact oracle (the same one
    // the model checker pins for the `smp` design). The snooped caches
    // must agree with it at every load AND stay mutually coherent.
    use svc_repro::coherence::{SmpConfig, SmpVersioned};
    use svc_repro::types::{Cycle, PuId};
    let mut smp = SmpVersioned::new(SmpConfig::small_for_tests());
    let pus = smp.num_pus();
    let mut model = std::collections::HashMap::new();
    let mut now = Cycle(0);
    let mut next_task = 0u64;
    for pu in 0..pus {
        smp.assign(PuId(pu), TaskId(next_task));
        next_task += 1;
    }
    // Deterministic xorshift mix so consecutive ops hop PUs and addresses
    // (sharing, invalidation, and write-back traffic all occur).
    let mut rng = 0x5EED_u64;
    for _ in 0..2_000 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let pu = PuId((rng % pus as u64) as usize);
        let a = Addr((rng >> 8) % 16);
        now += 1;
        match (rng >> 16) % 8 {
            0..=2 => {
                let st = smp.store(pu, a, Word(rng >> 24), now).unwrap();
                assert!(st.violation.is_none(), "MRSW never detects violations");
                model.insert(a, Word(rng >> 24));
            }
            3 => {
                // Retire and redispatch, so task ids keep advancing.
                smp.commit(pu, now);
                smp.assign(pu, TaskId(next_task));
                next_task += 1;
            }
            _ => {
                let out = smp.load(pu, a, now).unwrap();
                assert_eq!(
                    out.value,
                    model.get(&a).copied().unwrap_or(Word::ZERO),
                    "stale copy readable at {a} on {pu:?}"
                );
            }
        }
        smp.system().assert_coherent();
    }
    for a in (0..16).map(Addr) {
        assert_eq!(
            smp.architectural(a),
            model.get(&a).copied().unwrap_or(Word::ZERO),
            "final image diverged at {a}"
        );
    }
    assert!(smp.check_invariants(now).is_empty());

    // Deep random walks through the model checker's bounded alphabet must
    // replay clean too (the checker's flat oracle makes the same claim
    // exhaustively for short runs; the walks probe far past its horizon).
    use svc_repro::check::{random_walk, replay_design, DesignId};
    for seed in 0..8 {
        let script = random_walk(DesignId::Smp, seed, 64);
        let out = replay_design(DesignId::Smp, &script.actions).unwrap();
        assert!(
            out.failure.is_none(),
            "{:?}\n{}",
            out.failure,
            script.render()
        );
    }
}

#[test]
fn lsq_baseline_conforms_to_the_ideal_oracle() {
    use svc_repro::lsq::{LsqConfig, LsqMemory};
    // Lockstep conformance: loads, violation victims and squash recovery
    // must match IdealMemory step for step.
    for seed in 0..4 {
        let wl = Workload::random(seed, 16, 24, 4);
        run_lockstep(&wl, LsqMemory::new(LsqConfig::default()), seed);
    }
    // And a full engine run (dispatch, mispredicts, violations, squashes)
    // must commit exactly the ideal architectural state.
    let mut profile = WorkloadProfile::demo();
    profile.num_tasks = 200;
    profile.mispredict_rate = 0.03;
    let wl = SyntheticWorkload::new(profile, 23);
    let ideal = run_engine(IdealMemory::new(4, 1), &wl, 23);
    let lsq = run_engine(LsqMemory::new(LsqConfig::default()), &wl, 23);
    for a in touched(&wl) {
        assert_eq!(lsq.architectural(a), ideal.architectural(a), "lsq at {a}");
    }
}
