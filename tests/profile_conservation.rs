//! The profiler's conservation invariant, as a property: on any
//! generated program, on every memory system the engine can drive — SVC
//! base and final designs, the ARB, and the SMP timing shim — every
//! PU-cycle of the run is attributed to exactly one bucket, so the
//! per-PU bucket totals sum to `cycles × num_pus`.

use proptest::prelude::*;
use svc_repro::arb::{ArbConfig, ArbSystem};
use svc_repro::coherence::{SmpConfig, SmpVersioned};
use svc_repro::multiscalar::{
    Engine, EngineConfig, Instr, PredictorModel, TaskSource, VecTaskSource,
};
use svc_repro::sim::profile::{Bucket, Profiler};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::{Addr, VersionedMemory, Word};

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                (0u64..48).prop_map(|a| Instr::Load(Addr(a))),
                (0u64..48, 1u64..1000).prop_map(|(a, v)| Instr::Store(Addr(a), Word(v))),
                (0u8..3).prop_map(Instr::Compute),
            ],
            1..8,
        ),
        1..24,
    )
}

/// Runs `program` on `mem` (with `profiler` already attached to the
/// memory side) and asserts the conservation invariant on the profile.
fn check_conservation<M: VersionedMemory>(
    label: &str,
    program: &[Vec<Instr>],
    cfg: &EngineConfig,
    mem: M,
    profiler: Profiler,
) {
    let src = VecTaskSource::new(program.to_vec());
    let mut engine = Engine::new(*cfg, mem);
    engine.set_profiler(profiler.clone());
    let report = engine.run(&src as &dyn TaskSource);
    let p = profiler.report().expect("active profiler yields a report");
    assert_eq!(p.cycles, report.cycles, "{label}: profile spans the run");
    assert!(
        p.conservation_ok(),
        "{label}: attributed {} PU-cycles, expected {} ({} cycles x {} PUs); totals {:?}",
        p.attributed(),
        p.expected(),
        p.cycles,
        p.num_pus,
        p.totals(),
    );
    if report.committed_instrs > 0 {
        assert!(
            p.totals()[Bucket::Commit as usize] > 0,
            "{label}: instructions committed but no cycles in the commit bucket"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_pu_cycle_lands_in_exactly_one_bucket(
        program in program_strategy(),
        accuracy in 0.6f64..1.0,
        seed in 0u64..100_000,
        pus in 2usize..5,
    ) {
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: PredictorModel {
                accuracy,
                detect_cycles: 8,
                seed,
            },
            seed,
            garbage_addr_space: 48,
            ..EngineConfig::default()
        };
        let epoch = 512; // small, so sampling is exercised too

        for (label, svc_cfg) in [
            ("svc-base", SvcConfig::base(pus)),
            ("svc-final", SvcConfig::final_design(pus)),
        ] {
            let profiler = Profiler::new(pus, epoch);
            let mut mem = SvcSystem::new(svc_cfg);
            mem.set_profiler(profiler.clone());
            check_conservation(label, &program, &cfg, mem, profiler);
        }

        let profiler = Profiler::new(pus, epoch);
        let mut arb = ArbSystem::new(ArbConfig::paper(pus, 1, 32));
        arb.set_profiler(profiler.clone());
        check_conservation("arb", &program, &cfg, arb, profiler);

        let profiler = Profiler::new(pus, epoch);
        let mut smp_cfg = SmpConfig::small_for_tests();
        smp_cfg.num_pus = pus;
        let mut smp = SmpVersioned::new(smp_cfg);
        smp.system_mut().set_profiler(profiler.clone());
        check_conservation("smp", &program, &cfg, smp, profiler);
    }
}
