//! Reduced-budget versions of the experiment shape checks that the
//! `table2`/`table3`/`fig19`/`fig20` binaries assert at full budget —
//! the robust subset that holds even at a small instruction budget, so
//! `cargo test` exercises the evaluation pipeline end to end.

use svc_repro::bench::report::{self, Json};
use svc_repro::bench::{cross, run_paper_grid, run_spec95_with, MemoryKind, PAPER_SEED};
use svc_repro::workloads::Spec95;

const BUDGET: u64 = 60_000;

/// Budget for the harness-driven grids: `SVC_EXPERIMENT_BUDGET` if set,
/// else a reduced default that still shows the Table 2/3 shapes.
fn grid_budget(default: u64) -> u64 {
    std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arb(bench: Spec95, hit: u64, kb: usize) -> svc_repro::bench::ExperimentResult {
    run_spec95_with(
        bench,
        MemoryKind::Arb {
            hit_cycles: hit,
            cache_kb: kb,
        },
        BUDGET,
        42,
    )
}

fn svc(bench: Spec95, kb: usize) -> svc_repro::bench::ExperimentResult {
    run_spec95_with(bench, MemoryKind::Svc { kb_per_cache: kb }, BUDGET, 42)
}

#[test]
fn arb_ipc_degrades_with_hit_latency_everywhere() {
    for b in Spec95::ALL {
        let a1 = arb(b, 1, 32).ipc;
        let a4 = arb(b, 4, 32).ipc;
        assert!(
            a1 > a4 * 1.05,
            "{b}: ARB-1c ({a1:.2}) should clearly beat ARB-4c ({a4:.2})"
        );
    }
}

#[test]
fn svc_beats_slow_arb_everywhere() {
    for b in Spec95::ALL {
        let s = svc(b, 8).ipc;
        let a3 = arb(b, 3, 32).ipc;
        assert!(
            s > a3,
            "{b}: SVC ({s:.2}) should beat contention-free ARB-3c ({a3:.2})"
        );
    }
}

#[test]
fn svc_beats_arb2_on_the_papers_three() {
    for b in [Spec95::Gcc, Spec95::Apsi] {
        let s = svc(b, 8).ipc;
        let a2 = arb(b, 2, 32).ipc;
        assert!(
            s > a2,
            "{b}: SVC ({s:.2}) should beat ARB-2c ({a2:.2}) per §4.4"
        );
    }
    // mgrid's margin over ARB-2c is ~1% at full budget — too thin to
    // assert at this reduced budget, so require "within noise" instead.
    let s = svc(Spec95::Mgrid, 8).ipc;
    let a2 = arb(Spec95::Mgrid, 2, 32).ipc;
    assert!(
        s > a2 * 0.95,
        "mgrid: SVC ({s:.2}) should at least match ARB-2c ({a2:.2})"
    );
}

#[test]
fn miss_ratio_gap_directions_match_table2_through_the_harness() {
    // Table 2's grid, driven by the parallel harness exactly as the
    // `table2` binary drives it. The gap direction needs warm caches to
    // show (cold compulsory misses hit the ARB's direct-mapped cache
    // harder), hence the larger default budget.
    let jobs = cross(
        &Spec95::ALL,
        &[
            MemoryKind::Arb {
                hit_cycles: 1,
                cache_kb: 32,
            },
            MemoryKind::Svc { kb_per_cache: 8 },
        ],
    );
    let outcome = run_paper_grid(&jobs, grid_budget(300_000));
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let a = outcome.results[i * 2].miss_ratio;
        let s = outcome.results[i * 2 + 1].miss_ratio;
        if b == Spec95::Perl {
            assert!(s < a, "perl inverts: SVC {s:.3} < ARB {a:.3}");
        } else {
            assert!(s > a, "{b}: SVC {s:.3} > ARB {a:.3} (reference spreading)");
        }
    }
}

#[test]
fn bus_utilization_shape_matches_table3_through_the_harness() {
    // Table 3's grid through the harness: mgrid has the highest bus
    // utilization; doubling the caches never needs more bus.
    let jobs = cross(
        &Spec95::ALL,
        &[
            MemoryKind::Svc { kb_per_cache: 8 },
            MemoryKind::Svc { kb_per_cache: 16 },
        ],
    );
    let outcome = run_paper_grid(&jobs, grid_budget(BUDGET));
    let util8 = |i: usize| outcome.results[i * 2].bus_utilization;
    let util16 = |i: usize| outcome.results[i * 2 + 1].bus_utilization;
    let mgrid_idx = Spec95::ALL
        .into_iter()
        .position(|b| b == Spec95::Mgrid)
        .expect("mgrid in ALL");
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        if b == Spec95::Mgrid || b == Spec95::Compress {
            continue; // compress trails mgrid only at full budget
        }
        assert!(
            util8(mgrid_idx) > util8(i),
            "mgrid ({:.3}) has the highest bus utilization (vs {b}: {:.3})",
            util8(mgrid_idx),
            util8(i)
        );
    }
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        assert!(
            util16(i) <= util8(i) + 0.02,
            "{b}: bigger caches don't need more bus ({:.3} vs {:.3})",
            util16(i),
            util8(i)
        );
    }
}

#[test]
fn experiment_json_documents_roundtrip() {
    // A small harness run serialized to the schema-versioned document
    // must parse back to the same value, with the metrics intact.
    let jobs = cross(&[Spec95::Ijpeg], &[MemoryKind::Svc { kb_per_cache: 8 }]);
    let budget = 10_000;
    let outcome = run_paper_grid(&jobs, budget);
    let runs: Vec<Json> = outcome
        .results
        .iter()
        .map(|r| report::experiment_result_json(r, PAPER_SEED))
        .collect();
    let doc = report::experiment_doc("shapes-test", budget, PAPER_SEED, runs);
    let text = doc.render();
    let back = report::parse(&text).expect("rendered JSON parses");
    assert_eq!(back, doc, "render/parse round-trip");
    assert_eq!(
        back.get("schema").and_then(Json::as_str),
        Some(report::SCHEMA_EXPERIMENT)
    );
    let runs = back.get("runs").and_then(Json::as_arr).expect("runs");
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    assert_eq!(run.get("workload").and_then(Json::as_str), Some("ijpeg"));
    assert_eq!(
        run.get("ipc").and_then(Json::as_f64),
        Some(outcome.results[0].ipc)
    );
    let mem = run.get("report").and_then(|r| r.get("mem")).expect("mem");
    assert_eq!(
        mem.get("loads").and_then(Json::as_f64),
        Some(outcome.results[0].report.mem.loads as f64)
    );
}

#[test]
fn bigger_caches_never_hurt_miss_ratio() {
    for b in Spec95::ALL {
        let m8 = svc(b, 8).miss_ratio;
        let m16 = svc(b, 16).miss_ratio;
        assert!(
            m16 <= m8 + 0.003,
            "{b}: 4x16KB miss ({m16:.3}) <= 4x8KB miss ({m8:.3})"
        );
    }
}
