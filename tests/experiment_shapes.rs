//! Reduced-budget versions of the experiment shape checks that the
//! `table2`/`table3`/`fig19`/`fig20` binaries assert at full budget —
//! the robust subset that holds even at a small instruction budget, so
//! `cargo test` exercises the evaluation pipeline end to end.

use svc_repro::bench::{run_spec95_with, MemoryKind};
use svc_repro::workloads::Spec95;

const BUDGET: u64 = 60_000;

fn arb(bench: Spec95, hit: u64, kb: usize) -> svc_repro::bench::ExperimentResult {
    run_spec95_with(
        bench,
        MemoryKind::Arb {
            hit_cycles: hit,
            cache_kb: kb,
        },
        BUDGET,
        42,
    )
}

fn svc(bench: Spec95, kb: usize) -> svc_repro::bench::ExperimentResult {
    run_spec95_with(bench, MemoryKind::Svc { kb_per_cache: kb }, BUDGET, 42)
}

#[test]
fn arb_ipc_degrades_with_hit_latency_everywhere() {
    for b in Spec95::ALL {
        let a1 = arb(b, 1, 32).ipc;
        let a4 = arb(b, 4, 32).ipc;
        assert!(
            a1 > a4 * 1.05,
            "{b}: ARB-1c ({a1:.2}) should clearly beat ARB-4c ({a4:.2})"
        );
    }
}

#[test]
fn svc_beats_slow_arb_everywhere() {
    for b in Spec95::ALL {
        let s = svc(b, 8).ipc;
        let a3 = arb(b, 3, 32).ipc;
        assert!(
            s > a3,
            "{b}: SVC ({s:.2}) should beat contention-free ARB-3c ({a3:.2})"
        );
    }
}

#[test]
fn svc_beats_arb2_on_the_papers_three() {
    for b in [Spec95::Gcc, Spec95::Apsi] {
        let s = svc(b, 8).ipc;
        let a2 = arb(b, 2, 32).ipc;
        assert!(
            s > a2,
            "{b}: SVC ({s:.2}) should beat ARB-2c ({a2:.2}) per §4.4"
        );
    }
    // mgrid's margin over ARB-2c is ~1% at full budget — too thin to
    // assert at this reduced budget, so require "within noise" instead.
    let s = svc(Spec95::Mgrid, 8).ipc;
    let a2 = arb(Spec95::Mgrid, 2, 32).ipc;
    assert!(
        s > a2 * 0.95,
        "mgrid: SVC ({s:.2}) should at least match ARB-2c ({a2:.2})"
    );
}

#[test]
fn miss_ratio_gap_directions_match_table2() {
    for b in Spec95::ALL {
        // The gap direction needs warm caches to show (cold compulsory
        // misses hit the ARB's direct-mapped cache harder): full budget.
        let budget = 300_000;
        let s = run_spec95_with(b, MemoryKind::Svc { kb_per_cache: 8 }, budget, 42).miss_ratio;
        let a = run_spec95_with(
            b,
            MemoryKind::Arb { hit_cycles: 1, cache_kb: 32 },
            budget,
            42,
        )
        .miss_ratio;
        if b == Spec95::Perl {
            assert!(s < a, "perl inverts: SVC {s:.3} < ARB {a:.3}");
        } else {
            assert!(s > a, "{b}: SVC {s:.3} > ARB {a:.3} (reference spreading)");
        }
    }
}

#[test]
fn bus_utilization_shape_matches_table3() {
    let mgrid = svc(Spec95::Mgrid, 8).bus_utilization;
    for b in [Spec95::Gcc, Spec95::Vortex, Spec95::Perl, Spec95::Ijpeg, Spec95::Apsi] {
        let u = svc(b, 8).bus_utilization;
        assert!(
            mgrid > u,
            "mgrid ({mgrid:.3}) has the highest bus utilization (vs {b}: {u:.3})"
        );
    }
    for b in Spec95::ALL {
        let u8kb = svc(b, 8).bus_utilization;
        let u16kb = svc(b, 16).bus_utilization;
        assert!(
            u16kb <= u8kb + 0.02,
            "{b}: bigger caches don't need more bus ({u16kb:.3} vs {u8kb:.3})"
        );
    }
}

#[test]
fn bigger_caches_never_hurt_miss_ratio() {
    for b in Spec95::ALL {
        let m8 = svc(b, 8).miss_ratio;
        let m16 = svc(b, 16).miss_ratio;
        assert!(
            m16 <= m8 + 0.003,
            "{b}: 4x16KB miss ({m16:.3}) <= 4x8KB miss ({m8:.3})"
        );
    }
}
