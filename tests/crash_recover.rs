//! Kill-and-recover campaign against the real binary: SIGKILL a
//! checkpointing soak (and a checkpointing `run`) at varied points —
//! including during a fault storm and immediately after a ring write,
//! when a torn tmp file may still be in flight — then resume from the
//! newest valid checkpoint and assert the finished artifact is
//! byte-identical to a never-killed reference. Torn/truncated
//! checkpoints must be detected by checksum and skipped, and the
//! recovery must be invariant under `SVC_EXPERIMENT_THREADS`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use svc_repro::bench::report::parse;

const BIN: &str = env!("CARGO_BIN_EXE_svc-sim");

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGKILL: i32 = 9;

/// Shared soak shape: storms run ticks 4-5 and 8-9, so a kill after the
/// 4th checkpoint lands inside a fault storm.
const TICKS: &str = "10";
const SEED: &str = "11";
const SLICE: &str = "4000";
const STORM: &str = "period=4,duration=2,rate=0.05";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-crash-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Runs the uninterrupted 10-tick reference soak and returns the
/// snapshot bytes.
fn reference_soak(out: &Path) -> Vec<u8> {
    let status = Command::new(BIN)
        .args([
            "serve",
            "--ticks",
            TICKS,
            "--seed",
            SEED,
            "--slice-budget",
            SLICE,
            "--storm",
            STORM,
            "--out",
        ])
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run reference soak");
    assert!(status.success(), "reference soak exited nonzero");
    std::fs::read(out).expect("reference snapshot")
}

/// Number of checkpoints written so far = highest sequence number + 1.
/// (Counting files would cap out at the ring's keep limit.)
fn count_checkpoints(ring: &Path) -> usize {
    std::fs::read_dir(ring)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter_map(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy().into_owned();
                    n.strip_prefix("ckpt-")?
                        .strip_suffix(".svc")?
                        .parse::<usize>()
                        .ok()
                })
                .max()
                .map_or(0, |seq| seq + 1)
        })
        .unwrap_or(0)
}

/// Spawns an *unbounded* checkpointing soak, waits until the ring holds
/// at least `kill_after` checkpoints, then SIGKILLs it mid-flight.
fn killed_soak(ring: &Path, out: &Path, kill_after: usize) {
    let _ = std::fs::remove_dir_all(ring);
    std::fs::create_dir_all(ring).expect("ring dir");
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--ticks",
            "0",
            "--seed",
            SEED,
            "--slice-budget",
            SLICE,
            "--storm",
            STORM,
        ])
        .arg("--checkpoint-dir")
        .arg(ring)
        .arg("--out")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim soak");
    let start = Instant::now();
    while count_checkpoints(ring) < kill_after {
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "victim never wrote {kill_after} checkpoints"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // No grace, no flush: the process dies wherever it happens to be,
    // possibly halfway through the next ring write.
    unsafe {
        assert_eq!(kill(child.id() as i32, SIGKILL), 0, "kill(SIGKILL)");
    }
    child.wait().expect("reap victim");
}

/// Resumes the ring to the bounded tick count and returns the finished
/// snapshot bytes.
fn resume_soak(ring: &Path, out: &Path, threads: &str) -> Vec<u8> {
    let _ = std::fs::remove_file(out);
    let status = Command::new(BIN)
        .args(["resume"])
        .arg(ring)
        .args(["--ticks", TICKS, "--out"])
        .arg(out)
        .env("SVC_EXPERIMENT_THREADS", threads)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("resume soak");
    assert!(status.success(), "resume exited nonzero");
    std::fs::read(out).expect("resumed snapshot")
}

#[test]
fn sigkilled_soaks_resume_byte_identical_at_varied_kill_points() {
    let reference = reference_soak(&scratch("ref.json"));

    // Kill after 2 checkpoints (quiet phase), after 5 (inside the first
    // fault storm), and after 8 (post-storm) — the resumed snapshot
    // must match the never-killed reference bit-for-bit every time.
    for (i, kill_after) in [2usize, 5, 8].into_iter().enumerate() {
        let ring = scratch(&format!("ring-{i}"));
        killed_soak(&ring, &scratch(&format!("killed-{i}.json")), kill_after);
        let resumed = resume_soak(&ring, &scratch(&format!("resumed-{i}.json")), "1");
        assert_eq!(
            resumed, reference,
            "kill after {kill_after} checkpoints: resumed snapshot diverged"
        );
    }
}

#[test]
fn resume_is_invariant_under_harness_thread_count() {
    let reference = reference_soak(&scratch("t-ref.json"));
    let ring = scratch("t-ring");
    killed_soak(&ring, &scratch("t-killed.json"), 3);
    for threads in ["1", "2", "8"] {
        let resumed = resume_soak(&ring, &scratch("t-resumed.json"), threads);
        assert_eq!(
            resumed, reference,
            "resume with SVC_EXPERIMENT_THREADS={threads} diverged"
        );
    }
}

#[test]
fn torn_newest_checkpoint_is_skipped_for_the_previous_one() {
    let reference = reference_soak(&scratch("torn-ref.json"));
    let ring = scratch("torn-ring");
    killed_soak(&ring, &scratch("torn-killed.json"), 4);

    // Tear the newest checkpoint mid-"write": keep the magic so it
    // looks like a checkpoint, but cut the payload so the trailing
    // checksum can't match.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&ring)
        .expect("ring dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "svc"))
        .collect();
    files.sort();
    let newest = files.last().expect("at least one checkpoint").clone();
    let bytes = std::fs::read(&newest).expect("read newest");
    assert!(bytes.len() > 24, "checkpoint implausibly small");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate newest");

    let resumed = resume_soak(&ring, &scratch("torn-resumed.json"), "1");
    assert_eq!(
        resumed, reference,
        "resume after torn newest checkpoint diverged"
    );
}

#[test]
fn every_checkpoint_is_garbage_fails_typed() {
    let ring = scratch("garbage-ring");
    let _ = std::fs::remove_dir_all(&ring);
    std::fs::create_dir_all(&ring).expect("ring dir");
    for i in 0..3 {
        std::fs::write(ring.join(format!("ckpt-{i:06}.svc")), b"not a checkpoint")
            .expect("write garbage");
    }
    let output = Command::new(BIN)
        .args(["resume"])
        .arg(&ring)
        .output()
        .expect("resume garbage ring");
    assert_eq!(
        output.status.code(),
        Some(4),
        "all-torn ring should fail with the invariant exit code"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no valid checkpoint"),
        "unexpected diagnostic: {stderr}"
    );
}

#[test]
fn unwritable_destinations_fail_typed_at_startup() {
    // A plain file where a directory is needed: both `--out` and
    // `--checkpoint-dir` must be probed *before* the soak starts and
    // fail with the typed I/O exit code, not a mid-soak panic.
    let blocker = scratch("blocker-file");
    std::fs::write(&blocker, b"x").expect("write blocker");

    let out = Command::new(BIN)
        .args(["serve", "--ticks", "1", "--out"])
        .arg(blocker.join("soak.json"))
        .output()
        .expect("serve with unwritable --out");
    assert_eq!(out.status.code(), Some(3), "unwritable --out should exit 3");

    let out = Command::new(BIN)
        .args(["serve", "--ticks", "1", "--checkpoint-dir"])
        .arg(blocker.join("ring"))
        .output()
        .expect("serve with unwritable --checkpoint-dir");
    assert_eq!(
        out.status.code(),
        Some(3),
        "unwritable --checkpoint-dir should exit 3"
    );
}

#[test]
fn healthz_reports_checkpoint_freshness() {
    use std::io::{Read, Write};
    let addr_file = scratch("hz.addr");
    let ring = scratch("hz-ring");
    let _ = std::fs::remove_file(&addr_file);
    let _ = std::fs::remove_dir_all(&ring);
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--ticks",
            "0",
            "--seed",
            "3",
            "--slice-budget",
            SLICE,
        ])
        .arg("--checkpoint-dir")
        .arg(&ring)
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--out")
        .arg(scratch("hz.json"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");

    let start = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "addr file never appeared"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let healthz = loop {
        let mut stream = std::net::TcpStream::connect(addr.trim()).expect("connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        if body.contains("\"checkpoint\"") {
            break body;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "healthz never reported checkpoint status: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(healthz.contains("\"seq\""), "{healthz}");
    assert!(healthz.contains("\"age_ticks\""), "{healthz}");
    assert!(healthz.contains("\"valid\""), "{healthz}");

    unsafe {
        assert_eq!(kill(child.id() as i32, SIGKILL), 0, "kill(SIGKILL)");
    }
    child.wait().expect("reap serve");
}

/// Normalizes a `run --json` document: wall-clock self-measurement is
/// never stable, and the `artifacts` map (the checkpointed side
/// advertises its `--checkpoint-out` path; the reference has none) is
/// checked separately — everything else must be byte-stable.
fn normalized(text: &[u8]) -> String {
    let doc = parse(std::str::from_utf8(text).expect("utf8")).expect("json parses");
    let doc = match doc
        .set("wall_s", 0.0.into())
        .set("sim_cycles_per_sec", 0.0.into())
    {
        svc_repro::bench::report::Json::Obj(fields) => svc_repro::bench::report::Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "artifacts")
                .collect(),
        ),
        other => other,
    };
    doc.render()
}

#[test]
fn sigkilled_run_resumes_byte_identical() {
    let args = [
        "run", "--bench", "gcc", "--budget", "400000", "--seed", "7", "--json",
    ];
    let reference = Command::new(BIN)
        .args(args)
        .stderr(Stdio::null())
        .output()
        .expect("reference run");
    assert!(reference.status.success(), "reference run exited nonzero");

    let ckpt = scratch("run.svc");
    let _ = std::fs::remove_file(&ckpt);
    let mut child = Command::new(BIN)
        .args(args)
        .arg("--checkpoint-out")
        .arg(&ckpt)
        .args(["--checkpoint-every", "20000"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim run");
    // Kill as soon as the first checkpoint lands. If the run finishes
    // first (fast machine), that's fine — the checkpoint file still
    // holds a mid-run state to resume from.
    let start = Instant::now();
    while !ckpt.exists() {
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "victim never wrote a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    if child.try_wait().expect("try_wait").is_none() {
        unsafe {
            assert_eq!(kill(child.id() as i32, SIGKILL), 0, "kill(SIGKILL)");
        }
    }
    child.wait().expect("reap victim");
    assert!(ckpt.exists(), "no checkpoint to resume from");

    let resumed = Command::new(BIN)
        .args(["resume"])
        .arg(&ckpt)
        .args(["--json"])
        .stderr(Stdio::null())
        .output()
        .expect("resume run");
    assert!(resumed.status.success(), "resume exited nonzero");
    // The resumed run keeps checkpointing into the same file and
    // advertises it; the uninterrupted reference ran without
    // checkpoint flags and must advertise nothing.
    let resumed_doc =
        parse(std::str::from_utf8(&resumed.stdout).expect("utf8")).expect("json parses");
    assert_eq!(
        resumed_doc
            .get("artifacts")
            .and_then(|a| a.get("checkpoint"))
            .and_then(svc_repro::bench::report::Json::as_str),
        Some(ckpt.display().to_string().as_str()),
        "resumed run must advertise its checkpoint artifact"
    );
    let reference_doc =
        parse(std::str::from_utf8(&reference.stdout).expect("utf8")).expect("json parses");
    assert!(reference_doc.get("artifacts").is_none());
    assert_eq!(
        normalized(&resumed.stdout),
        normalized(&reference.stdout),
        "resumed run diverged from the uninterrupted reference"
    );
}
