//! Property tests for checkpoint round-trips: for *any* reachable
//! memory-system state — SVC base/ECS/final, the ARB baseline, and the
//! MRSW SMP system — `restore(checkpoint(s))` into a freshly
//! constructed system reproduces the state exactly. Equality is checked
//! two ways: the model checker's functional fingerprint
//! ([`svc_types::StateHasher`]) and byte-identity of a second
//! checkpoint taken from the restored system (which also covers pure
//! timing state the fingerprint deliberately excludes).

use proptest::prelude::*;
use svc_repro::arb::{ArbConfig, ArbSystem};
use svc_repro::coherence::{SmpConfig, SmpSystem};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::{
    Addr, Checkpointable, CkptReader, CkptWriter, Cycle, ModelCheckable, PuId, StateHasher, TaskId,
    VersionedMemory, Word,
};

const PUS: usize = 4;

fn save_bytes<T: Checkpointable>(t: &T) -> Vec<u8> {
    let mut w = CkptWriter::new();
    t.save_state(&mut w);
    w.into_bytes()
}

fn restore_from<T: Checkpointable>(t: &mut T, bytes: &[u8]) {
    let mut r = CkptReader::new(bytes);
    t.restore_state(&mut r).expect("restore");
    r.finish().expect("trailing bytes after restore");
}

/// Drives a versioned memory through a randomized mix of stores, loads,
/// head commits and violation-triggered squash recoveries, mirroring
/// the engine's dispatch discipline (only the head commits; a violation
/// squashes the victim and everything younger, youngest first).
fn drive<M: VersionedMemory>(m: &mut M, ops: &[(u64, usize, u8)]) {
    let n = m.num_pus();
    let mut running: Vec<Option<TaskId>> = (0..n).map(|i| Some(TaskId(i as u64))).collect();
    for i in 0..n {
        m.assign(PuId(i), TaskId(i as u64));
    }
    let mut next = n as u64;
    let mut now = Cycle(0);
    for &(addr, pu, kind) in ops {
        let pu = PuId(pu % n);
        if running[pu.0].is_none() {
            continue;
        }
        let a = Addr(addr);
        match kind % 4 {
            // Stores dominate: they are what create versioning state.
            // Replacement stalls / structural rejections (`Err`) leave
            // the request unexecuted; the state stays valid.
            0 | 1 => {
                if let Ok(out) = m.store(pu, a, Word(addr + now.0 + 1), now) {
                    now = out.done_at;
                    if let Some(v) = out.violation {
                        let mut hit: Vec<(PuId, TaskId)> = running
                            .iter()
                            .enumerate()
                            .filter_map(|(i, t)| t.filter(|t| *t >= v.victim).map(|t| (PuId(i), t)))
                            .collect();
                        hit.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
                        for &(p, _) in &hit {
                            m.squash(p);
                            running[p.0] = None;
                        }
                        for (i, slot) in running.iter_mut().enumerate() {
                            if slot.is_none() {
                                let t = TaskId(next);
                                next += 1;
                                *slot = Some(t);
                                m.assign(PuId(i), t);
                            }
                        }
                    }
                }
            }
            2 => {
                if let Ok(out) = m.load(pu, a, now) {
                    now = out.done_at;
                }
            }
            _ => {
                let head = running.iter().flatten().min().copied();
                if running[pu.0] == head {
                    now = m.commit(pu, now);
                    let t = TaskId(next);
                    next += 1;
                    running[pu.0] = Some(t);
                    m.assign(pu, t);
                }
            }
        }
    }
}

/// checkpoint → restore-into-fresh → fingerprints equal AND a second
/// checkpoint is byte-identical to the first.
fn assert_round_trip<M>(driven: &M, fresh: &mut M)
where
    M: ModelCheckable + Checkpointable,
{
    let bytes = save_bytes(driven);
    restore_from(fresh, &bytes);

    let addrs: Vec<Addr> = (0..96).map(Addr).collect();
    let mut ha = StateHasher::new();
    driven.fingerprint(&addrs, &mut ha);
    let mut hb = StateHasher::new();
    fresh.fingerprint(&addrs, &mut hb);
    assert_eq!(ha.finish(), hb.finish(), "functional fingerprint diverged");

    assert_eq!(save_bytes(fresh), bytes, "re-checkpoint not byte-identical");
}

fn svc_round_trip(cfg: fn(usize) -> SvcConfig, ops: &[(u64, usize, u8)]) {
    let mut sys = SvcSystem::new(cfg(PUS));
    drive(&mut sys, ops);
    assert_round_trip(&sys, &mut SvcSystem::new(cfg(PUS)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svc_base_state_round_trips(
        ops in proptest::collection::vec((0u64..96, 0usize..PUS, any::<u8>()), 1..250),
    ) {
        svc_round_trip(SvcConfig::base, &ops);
    }

    #[test]
    fn svc_ecs_state_round_trips(
        ops in proptest::collection::vec((0u64..96, 0usize..PUS, any::<u8>()), 1..250),
    ) {
        svc_round_trip(SvcConfig::ecs, &ops);
    }

    #[test]
    fn svc_final_state_round_trips(
        ops in proptest::collection::vec((0u64..96, 0usize..PUS, any::<u8>()), 1..250),
    ) {
        svc_round_trip(SvcConfig::final_design, &ops);
    }

    #[test]
    fn arb_state_round_trips(
        ops in proptest::collection::vec((0u64..96, 0usize..PUS, any::<u8>()), 1..250),
    ) {
        let mut sys = ArbSystem::new(ArbConfig::paper(PUS, 2, 32));
        drive(&mut sys, &ops);
        assert_round_trip(&sys, &mut ArbSystem::new(ArbConfig::paper(PUS, 2, 32)));
    }

    /// The SMP system is not a `VersionedMemory`, so it gets its own
    /// driver (plain coherent loads/stores) and its own equality check:
    /// byte-identical re-checkpoint plus the coherent memory image over
    /// the address alphabet.
    #[test]
    fn smp_state_round_trips(
        ops in proptest::collection::vec((0u64..96, 0usize..PUS, any::<bool>()), 1..250),
    ) {
        let mut smp = SmpSystem::new(SmpConfig::small_for_tests());
        let mut now = Cycle(0);
        for (i, &(addr, pu, is_store)) in ops.iter().enumerate() {
            let a = Addr(addr);
            if is_store {
                now = smp.store(PuId(pu), a, Word(i as u64 + 1), now);
            } else {
                now = smp.load(PuId(pu), a, now).done_at;
            }
        }
        let bytes = save_bytes(&smp);
        let mut fresh = SmpSystem::new(SmpConfig::small_for_tests());
        restore_from(&mut fresh, &bytes);
        prop_assert_eq!(save_bytes(&fresh), bytes.clone(), "re-checkpoint not byte-identical");
        for a in 0..96u64 {
            prop_assert_eq!(fresh.coherent_peek(Addr(a)), smp.coherent_peek(Addr(a)));
        }
    }
}
