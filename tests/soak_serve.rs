//! Full-stack `svc-sim serve` checks against the real binary: bounded
//! soaks are byte-identical across invocations and harness-thread
//! settings, the snapshot parses as `svc-soak/v1`, and an unbounded
//! serve answers HTTP on all three endpoints then shuts down cleanly
//! on SIGTERM with a valid final snapshot.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use svc_repro::bench::report::{parse, SCHEMA_SOAK};

const BIN: &str = env!("CARGO_BIN_EXE_svc-sim");

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-soak-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Runs a bounded soak and returns (stdout, snapshot bytes).
fn bounded_soak(out: &PathBuf, threads: &str) -> (Vec<u8>, Vec<u8>) {
    let output = Command::new(BIN)
        .args([
            "serve",
            "--ticks",
            "8",
            "--seed",
            "5",
            "--slice-budget",
            "4000",
            "--storm",
            "period=4,duration=1,rate=0.05",
            "--out",
        ])
        .arg(out)
        .env("SVC_EXPERIMENT_THREADS", threads)
        .stderr(Stdio::null())
        .output()
        .expect("run svc-sim serve");
    assert!(output.status.success(), "serve exited nonzero");
    let snapshot = std::fs::read(out).expect("snapshot written");
    (output.stdout, snapshot)
}

#[test]
fn bounded_serve_is_byte_identical_across_invocations_and_threads() {
    let out = scratch("bounded.json");
    let (stdout_a, snap_a) = bounded_soak(&out, "1");
    let (stdout_b, snap_b) = bounded_soak(&out, "2");
    let (stdout_c, snap_c) = bounded_soak(&out, "8");
    assert_eq!(stdout_a, stdout_b, "stdout diverged across invocations");
    assert_eq!(stdout_b, stdout_c, "stdout diverged across thread counts");
    assert_eq!(snap_a, snap_b, "snapshot diverged across invocations");
    assert_eq!(snap_b, snap_c, "snapshot diverged across thread counts");

    let doc = parse(&String::from_utf8(snap_a).expect("utf8")).expect("snapshot parses");
    assert_eq!(
        doc.get("schema").and_then(|j| j.as_str()),
        Some(SCHEMA_SOAK)
    );
    assert_eq!(doc.get("ticks").and_then(|j| j.as_f64()), Some(8.0));
}

/// Polls `path` until it is non-empty or the deadline passes.
fn wait_for_file(path: &PathBuf, deadline: Duration) -> String {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(text) = std::fs::read_to_string(path) {
            if !text.is_empty() {
                return text;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("{} never appeared", path.display());
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

/// SIGTERMs `child` and waits for it, panicking on a dirty exit.
fn terminate(mut child: Child) {
    unsafe {
        assert_eq!(kill(child.id() as i32, SIGTERM), 0, "kill(SIGTERM)");
    }
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "serve did not exit cleanly: {status:?}");
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "serve ignored SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn unbounded_serve_answers_http_and_dies_cleanly_on_sigterm() {
    let addr_file = scratch("serve.addr");
    let out = scratch("unbounded.json");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(BIN)
        .args([
            "serve",
            "--ticks",
            "0",
            "--seed",
            "1",
            "--slice-budget",
            "4000",
        ])
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn svc-sim serve");

    let addr = wait_for_file(&addr_file, Duration::from_secs(30));

    // The first tick's telemetry may not be published the instant the
    // socket opens — poll until the metrics body appears.
    let start = Instant::now();
    while !http_get(&addr, "/metrics").contains("soak_ticks") {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "first tick never published telemetry"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let healthz = http_get(&addr, "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
    assert!(healthz.contains("\"status\""), "{healthz}");

    let metrics = http_get(&addr, "/metrics");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "exposition content type: {metrics}"
    );
    assert!(metrics.contains("soak_ticks"), "{metrics}");

    let profile = http_get(&addr, "/profile");
    assert!(profile.contains("application/json"), "{profile}");
    assert!(profile.contains("svc-profile/v1"), "{profile}");

    terminate(child);

    let snapshot = std::fs::read_to_string(&out).expect("final snapshot flushed");
    let doc = parse(&snapshot).expect("snapshot parses");
    assert_eq!(
        doc.get("schema").and_then(|j| j.as_str()),
        Some(SCHEMA_SOAK)
    );
    assert!(doc.get("ticks").and_then(|j| j.as_f64()).unwrap_or(0.0) > 0.0);
}
