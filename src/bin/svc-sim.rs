//! `svc-sim` — command-line front end for the simulator.
//!
//! ```text
//! svc-sim run   [--bench NAME|--kernel NAME|--replay FILE]
//!               [--memory svc|arb] [--kb N] [--hit N] [--budget N]
//!               [--seed N] [--pus N] [--json]
//!               [--trace] [--trace-filter CATS] [--trace-out PREFIX]
//!               [--profile] [--profile-out FILE]
//!               [--analyze] [--analyze-out FILE]
//! svc-sim trace [--addr N] [workload/memory flags as for run]
//! svc-sim profile [--json] [workload/memory flags as for run]
//! svc-sim designs [--bench NAME] [--budget N] [--seed N]
//! svc-sim faults [--seed N] [--budget N] [--rate R] [--pus N]
//! svc-sim serve [--port N] [--ticks N] [--seed N] [--pus N] [--kb N]
//!               [--slice-budget N] [--storm SPEC] [--addr-file FILE]
//!               [--out FILE]
//! svc-sim list
//! ```
//!
//! `run` executes one workload on one memory system and prints the
//! report (`--json` emits the machine-readable `svc-experiments/v1`
//! run object instead; when `--trace-out`, `--profile-out`,
//! `--checkpoint-out` or `--analyze-out` wrote artifacts, the object
//! carries an `artifacts` map with their paths). With `--analyze` the
//! captured trace is fed through the offline analyzer (squash-cascade
//! attribution, version lifetimes, bus contention — see `svc-analyze`)
//! and the `svc-analysis/v1` tables follow the report, or the document
//! goes to `--analyze-out FILE`.
//! With `--trace` it records cycle-stamped events (`--trace-filter`
//! takes `all` or a comma list like `bus,task`) and either prints the
//! text log or, with `--trace-out PREFIX`, writes `PREFIX.log`,
//! `PREFIX.jsonl` and `PREFIX.trace.json` (Perfetto). With `--profile`
//! it attaches the cycle-accounting profiler and appends the per-PU
//! bucket table to the report; `--profile-out FILE` also writes the
//! `svc-profile/v1` document. `trace` runs a traced cell and prints
//! the squash-forensics report — a line's version history plus the
//! violation→squash causal chains — for the line containing `--addr`.
//! `profile` runs a profiled cell and prints the per-PU cycle
//! attribution table plus the top wasted-work addresses (`--json`
//! emits the `svc-profile/v1` document instead). `designs` walks the
//! §3 design progression on one benchmark; `faults` runs the
//! deterministic fault-injection campaign (see EXPERIMENTS.md);
//! `serve` runs the soak loop — a seeded rotation of workload mixes
//! with periodic fault storms — while a local HTTP endpoint exports
//! `/metrics` (Prometheus text format), `/profile` (rolling
//! `svc-profile/v1` windows) and `/healthz`; `--ticks 0` (the
//! default) runs until SIGINT/SIGTERM, and shutdown flushes a
//! `svc-soak/v1` snapshot to `results/soak.json` (or `--out`). The
//! bound address goes to stderr and, with `--addr-file`, to a file,
//! so stdout stays byte-deterministic for a given seed and tick
//! budget. `list` shows the available workloads.
//!
//! Exit codes: 0 success, 2 usage error, 3 I/O error, 4 invariant
//! violation / silent corruption ([`svc_repro::bench::cli`]).

use std::process::ExitCode;

use svc_repro::bench::cli::CliError;
use svc_repro::bench::report::Json;
use svc_repro::bench::{
    prepare_engine, report, run_source, run_source_with, soak, ExperimentResult, MemoryKind,
    Prepared, PreparedEngine, NUM_PUS,
};
use svc_repro::multiscalar::{Engine, EngineConfig, TaskSource, VecTaskSource};
use svc_repro::sim::checkpoint::{self, CheckpointRing};
use svc_repro::sim::fault::{FaultConfig, Faults, StormSchedule};
use svc_repro::sim::forensics;
use svc_repro::sim::profile::{Bucket, ProfileReport};
use svc_repro::sim::rng::SplitMix64;
use svc_repro::sim::telemetry::{shared_snapshot, TelemetryServer};
use svc_repro::sim::trace::{self, Tracer};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::{
    Addr, Checkpointable, CkptError, CkptReader, CkptWriter, Cycle, PuId, VersionedMemory,
};
use svc_repro::workloads::{kernels, Spec95, SyntheticWorkload};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: String,
    bench: Option<String>,
    kernel: Option<String>,
    replay: Option<String>,
    memory: String,
    kb: usize,
    hit: u64,
    budget: u64,
    seed: u64,
    pus: usize,
    /// Intra-run parallel planning lanes (0 = resolve from
    /// `SVC_ENGINE_THREADS`, defaulting to sequential). Artifacts are
    /// byte-identical at any value, so this is never checkpointed.
    engine_threads: usize,
    json: bool,
    trace: bool,
    trace_filter: String,
    trace_out: Option<String>,
    profile: bool,
    profile_out: Option<String>,
    /// `run`: feed the captured trace through the offline analyzer.
    analyze: bool,
    /// `run`: write the `svc-analysis/v1` document here (implies
    /// `--analyze`).
    analyze_out: Option<String>,
    addr: Option<u64>,
    rate: f64,
    port: u16,
    ticks: u64,
    slice_budget: u64,
    storm: Option<String>,
    addr_file: Option<String>,
    out: Option<String>,
    /// Checkpoint cadence: simulated cycles for `run`, ticks for
    /// `serve`/`resume` (0 = off / command default).
    checkpoint_every: u64,
    /// `run`: the single checkpoint file, atomically overwritten.
    checkpoint_out: Option<String>,
    /// `serve`: directory holding a ring of checkpoints.
    checkpoint_dir: Option<String>,
    /// Ring retention for `--checkpoint-dir`.
    checkpoint_keep: usize,
    /// `resume`: the checkpoint file (or ring directory) to restart from.
    resume_path: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            command: String::new(),
            bench: None,
            kernel: None,
            replay: None,
            memory: "svc".to_string(),
            kb: 8,
            hit: 1,
            budget: 200_000,
            seed: 42,
            pus: NUM_PUS,
            engine_threads: 0,
            json: false,
            trace: false,
            trace_filter: "all".to_string(),
            trace_out: None,
            profile: false,
            profile_out: None,
            analyze: false,
            analyze_out: None,
            addr: None,
            rate: 0.02,
            port: 0,
            ticks: 0,
            slice_budget: 20_000,
            storm: None,
            addr_file: None,
            out: None,
            checkpoint_every: 0,
            checkpoint_out: None,
            checkpoint_dir: None,
            checkpoint_keep: 4,
            resume_path: None,
        }
    }
}

/// Parses `args` (without the program name). Pure, for testability.
fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    o.command = it.next().cloned().ok_or("missing command")?;
    if !matches!(
        o.command.as_str(),
        "run" | "designs" | "list" | "trace" | "faults" | "profile" | "serve" | "resume"
    ) {
        return Err(format!("unknown command {:?}", o.command));
    }
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" | "-b" => o.bench = Some(value()?),
            "--kernel" | "-k" => o.kernel = Some(value()?),
            "--replay" | "-r" => o.replay = Some(value()?),
            "--memory" | "-m" => o.memory = value()?,
            "--kb" => o.kb = value()?.parse().map_err(|e| format!("--kb: {e}"))?,
            "--hit" => o.hit = value()?.parse().map_err(|e| format!("--hit: {e}"))?,
            "--budget" => o.budget = value()?.parse().map_err(|e| format!("--budget: {e}"))?,
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--pus" => o.pus = value()?.parse().map_err(|e| format!("--pus: {e}"))?,
            "--engine-threads" => {
                o.engine_threads = value()?
                    .parse()
                    .map_err(|e| format!("--engine-threads: {e}"))?;
            }
            "--json" => o.json = true,
            "--trace" | "-t" => o.trace = true,
            "--trace-filter" => o.trace_filter = value()?,
            "--trace-out" => o.trace_out = Some(value()?),
            "--profile" | "-p" => o.profile = true,
            "--profile-out" => o.profile_out = Some(value()?),
            "--analyze" => o.analyze = true,
            "--analyze-out" => o.analyze_out = Some(value()?),
            "--addr" => o.addr = Some(value()?.parse().map_err(|e| format!("--addr: {e}"))?),
            "--rate" => o.rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--port" => o.port = value()?.parse().map_err(|e| format!("--port: {e}"))?,
            "--ticks" => o.ticks = value()?.parse().map_err(|e| format!("--ticks: {e}"))?,
            "--slice-budget" => {
                o.slice_budget = value()?
                    .parse()
                    .map_err(|e| format!("--slice-budget: {e}"))?;
            }
            "--storm" => o.storm = Some(value()?),
            "--addr-file" => o.addr_file = Some(value()?),
            "--out" => o.out = Some(value()?),
            "--checkpoint-every" => {
                o.checkpoint_every = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--checkpoint-out" => o.checkpoint_out = Some(value()?),
            "--checkpoint-dir" => o.checkpoint_dir = Some(value()?),
            "--checkpoint-keep" => {
                o.checkpoint_keep = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-keep: {e}"))?;
            }
            other
                if o.command == "resume" && o.resume_path.is_none() && !other.starts_with('-') =>
            {
                o.resume_path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !(0.0..=1.0).contains(&o.rate) || o.rate == 0.0 {
        return Err(format!("--rate must be in (0, 1], got {}", o.rate));
    }
    if [o.bench.is_some(), o.kernel.is_some(), o.replay.is_some()]
        .into_iter()
        .filter(|&b| b)
        .count()
        > 1
    {
        return Err("--bench, --kernel and --replay are mutually exclusive".to_string());
    }
    if !matches!(o.memory.as_str(), "svc" | "arb") {
        return Err(format!("--memory must be svc or arb, got {:?}", o.memory));
    }
    // Validate the filter up front so a typo fails before a long run.
    if o.trace || o.command == "trace" {
        trace::parse_filter(&o.trace_filter).map_err(|e| format!("--trace-filter: {e}"))?;
    }
    if o.command == "trace" && o.addr.is_none() {
        return Err("`svc-sim trace` needs --addr".to_string());
    }
    // Validate the storm spec up front too — `serve` may run for hours.
    if let Some(spec) = &o.storm {
        StormSchedule::parse(spec).map_err(|e| format!("--storm: {e}"))?;
    }
    if o.command == "serve" && o.slice_budget == 0 {
        return Err("--slice-budget must be positive".to_string());
    }
    // `--profile-out` implies profiling, and the `profile` subcommand
    // is always profiled.
    if o.profile_out.is_some() || o.command == "profile" {
        o.profile = true;
    }
    if o.checkpoint_keep == 0 {
        return Err("--checkpoint-keep must be at least 1".to_string());
    }
    // `--analyze-out` implies analysis; analysis needs a captured trace.
    if o.analyze_out.is_some() {
        o.analyze = true;
    }
    if o.analyze {
        if o.command != "run" {
            return Err("--analyze only applies to `run`".to_string());
        }
        if !o.trace {
            return Err("--analyze needs --trace (it analyzes the captured trace)".to_string());
        }
        if o.json && o.analyze_out.is_none() {
            // `--json` keeps stdout a single document; the analysis
            // must go to a file of its own.
            return Err("--analyze with --json needs --analyze-out".to_string());
        }
    }
    if o.command == "run" {
        if o.checkpoint_every > 0 && o.checkpoint_out.is_none() {
            return Err("--checkpoint-every needs --checkpoint-out for `run`".to_string());
        }
        if o.checkpoint_out.is_some() {
            if o.trace || o.trace_out.is_some() {
                // The trace ring is an observer, not simulation state;
                // it is not part of a checkpoint, so a resumed run
                // could not reproduce it.
                return Err("--trace cannot be combined with checkpointing".to_string());
            }
            if o.checkpoint_every == 0 {
                o.checkpoint_every = 250_000;
            }
        }
    }
    if o.command == "serve" && o.checkpoint_dir.is_some() && o.checkpoint_every == 0 {
        o.checkpoint_every = 1;
    }
    if o.command == "resume" && o.resume_path.is_none() {
        return Err("`svc-sim resume` needs a checkpoint file or ring directory".to_string());
    }
    Ok(o)
}

fn lookup_bench(name: &str) -> Result<Spec95, String> {
    Spec95::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?} (try `svc-sim list`)"))
}

fn lookup_kernel(name: &str, seed: u64) -> Result<VecTaskSource, String> {
    Ok(match name {
        "streaming" => kernels::streaming(2_000, 8),
        "readonly" => kernels::readonly_sharing(2_000, 32),
        "producer-consumer" => kernels::producer_consumer(2_000, 6),
        "reduction" => kernels::reduction(2_000, 3),
        "false-sharing" => kernels::false_sharing(2_000, 2),
        "pointer-chase" => kernels::pointer_chase(2_000, 6, 4096, seed),
        other => return Err(format!("unknown kernel {other:?} (try `svc-sim list`)")),
    })
}

fn cmd_list() {
    println!("benchmarks (SPEC95 models):");
    for b in Spec95::ALL {
        println!("  {b}");
    }
    println!("kernels:");
    for k in [
        "streaming",
        "readonly",
        "producer-consumer",
        "reduction",
        "false-sharing",
        "pointer-chase",
    ] {
        println!("  {k}");
    }
}

fn engine_config(o: &Options, wl: Option<&SyntheticWorkload>) -> EngineConfig {
    let mut cfg = EngineConfig {
        num_pus: o.pus,
        max_instructions: o.budget,
        seed: o.seed,
        engine_threads: o.engine_threads,
        ..EngineConfig::default()
    };
    if let Some(wl) = wl {
        cfg.predictor = wl.profile().predictor(o.seed);
        cfg.garbage_addr_space = wl.profile().hot_set.max(64);
        cfg.load_dep_frac = wl.profile().load_dep_frac;
    }
    cfg
}

fn memory_kind(o: &Options) -> MemoryKind {
    match o.memory.as_str() {
        "svc" => MemoryKind::Svc { kb_per_cache: o.kb },
        _ => MemoryKind::Arb {
            hit_cycles: o.hit,
            cache_kb: o.kb.max(32),
        },
    }
}

/// Builds the tracer the options ask for (`Tracer::disabled()` when
/// tracing is off; ring capacity from `SVC_TRACE_CAP` as usual).
fn cli_tracer(o: &Options, force: bool) -> Result<Tracer, CliError> {
    if !o.trace && !force {
        return Ok(Tracer::disabled());
    }
    let mask = trace::parse_filter(&o.trace_filter)
        .map_err(|e| CliError::Usage(format!("--trace-filter: {e}")))?;
    let capacity = std::env::var("SVC_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(trace::DEFAULT_CAPACITY);
    Ok(Tracer::new(mask, capacity))
}

/// Builds the selected workload (bench/kernel/replay), its display
/// name, and the engine configuration it implies. Pure construction —
/// shared by the direct runner and the checkpoint/resume drivers, which
/// must rebuild the exact same source from a checkpoint header.
fn select_source(o: &Options) -> Result<(Box<dyn TaskSource>, String, EngineConfig), CliError> {
    Ok(if let Some(path) = &o.replay {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
        let src = svc_repro::workloads::parse_trace(&text)
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let cfg = engine_config(o, None);
        (Box::new(src), path.clone(), cfg)
    } else if let Some(k) = &o.kernel {
        let src = lookup_kernel(k, o.seed).map_err(CliError::Usage)?;
        let cfg = engine_config(o, None);
        (Box::new(src), k.clone(), cfg)
    } else {
        let bench = lookup_bench(o.bench.as_deref().unwrap_or("gcc")).map_err(CliError::Usage)?;
        let wl = bench.workload(o.seed);
        let cfg = engine_config(o, Some(&wl));
        (Box::new(wl), bench.name().to_string(), cfg)
    })
}

/// Runs the selected workload (bench/kernel/replay) on the selected
/// memory system. An active `tracer` is attached explicitly; a disabled
/// one falls back to [`run_source`], which keeps the `SVC_TRACE` /
/// `SVC_TRACE_OUT` environment knobs working. Returns the result and
/// the workload's display name.
fn run_selected(
    o: &Options,
    tracer: Tracer,
) -> Result<(svc_repro::bench::ExperimentResult, String), CliError> {
    let memory = memory_kind(o);
    let (src, name, cfg) = select_source(o)?;
    let result = if tracer.is_active() {
        run_source_with(src.as_ref(), memory, cfg, tracer)
    } else {
        run_source(src.as_ref(), memory, cfg)
    };
    Ok((result, name))
}

// ---------------------------------------------------------------------
// Checkpointed runs and resume
// ---------------------------------------------------------------------

/// Kind tag of a `run` checkpoint (header + engine state).
const RUN_CKPT_KIND: &str = "svc-run/v1";

/// Environment knobs that shape the engine's attachments
/// (profiler/watchdog/faults). They are part of a run checkpoint's
/// header so `resume` rebuilds identical attachments no matter what the
/// resuming shell exported.
const HEADER_ENV: [&str; 5] = [
    "SVC_PROFILE",
    "SVC_PROFILE_EPOCH",
    "SVC_PROFILE_WINDOW",
    "SVC_WATCHDOG",
    "SVC_FAULTS",
];

/// Serializes everything `resume` needs to rebuild the workload, the
/// memory system, and the engine attachments before restoring state.
fn save_run_header(o: &Options, w: &mut CkptWriter) {
    if let Some(path) = &o.replay {
        w.put_u8(2);
        w.put_str(path);
    } else if let Some(k) = &o.kernel {
        w.put_u8(1);
        w.put_str(k);
    } else {
        w.put_u8(0);
        w.put_str(o.bench.as_deref().unwrap_or("gcc"));
    }
    w.put_str(&o.memory);
    w.put_usize(o.kb);
    w.put_u64(o.hit);
    w.put_u64(o.budget);
    w.put_u64(o.seed);
    w.put_usize(o.pus);
    for key in HEADER_ENV {
        match std::env::var(key) {
            Ok(v) => {
                w.put_bool(true);
                w.put_str(&v);
            }
            Err(_) => w.put_bool(false),
        }
    }
}

/// Rebuilds the run options a checkpoint header describes and restores
/// the attachment env knobs into this process.
fn restore_run_header(r: &mut CkptReader<'_>) -> Result<Options, CkptError> {
    let mut o = Options {
        command: "run".to_string(),
        ..Options::default()
    };
    let tag = r.take_u8()?;
    let name = r.take_str()?;
    match tag {
        0 => o.bench = Some(name),
        1 => o.kernel = Some(name),
        2 => o.replay = Some(name),
        t => return Err(CkptError::corrupt(format!("unknown workload tag {t}"))),
    }
    o.memory = r.take_str()?;
    if !matches!(o.memory.as_str(), "svc" | "arb") {
        return Err(CkptError::corrupt(format!(
            "unknown memory kind {:?}",
            o.memory
        )));
    }
    o.kb = r.take_usize()?;
    o.hit = r.take_u64()?;
    o.budget = r.take_u64()?;
    o.seed = r.take_u64()?;
    o.pus = r.take_usize()?;
    if o.pus == 0 {
        return Err(CkptError::corrupt("checkpoint with 0 PUs"));
    }
    for key in HEADER_ENV {
        if r.take_bool()? {
            std::env::set_var(key, r.take_str()?);
        } else {
            std::env::remove_var(key);
        }
    }
    Ok(o)
}

/// Startup probe: `path`'s parent directory must exist (created if
/// needed) and accept an atomic write, so an unwritable destination is
/// a typed I/O failure (exit 3) *before* hours of simulation, not a
/// panic at the first flush.
fn probe_writable(path: &std::path::Path) -> Result<(), CliError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir).map_err(|e| CliError::io(dir.display(), e))?;
    let probe = dir.join(".svc-write-probe");
    checkpoint::write_atomic(&probe, b"probe")
        .and_then(|()| std::fs::remove_file(&probe))
        .map_err(|e| CliError::io(dir.display(), e))
}

/// Drives a prepared engine to completion, atomically rewriting the
/// checkpoint file at every `--checkpoint-every` cycle boundary.
fn drive_checkpointed<M>(
    p: &mut Prepared<M>,
    source: &dyn TaskSource,
    name: &str,
    o: &Options,
    out: &std::path::Path,
) -> Result<ExperimentResult, CliError>
where
    M: VersionedMemory + Checkpointable,
{
    let every = o.checkpoint_every;
    loop {
        let stop = match every {
            0 => None,
            n => Some(p.engine.cycle() + n),
        };
        if p.engine.run_until(source, stop) {
            break;
        }
        let mut w = CkptWriter::new();
        save_run_header(o, &mut w);
        p.engine.save_state(&mut w);
        let blob = checkpoint::encode(RUN_CKPT_KIND, &w.into_bytes());
        checkpoint::write_atomic(out, &blob).map_err(|e| CliError::io(out.display(), e))?;
    }
    let report = p.engine.finish();
    Ok(p.finish(name, report))
}

/// The checkpointing variant of [`run_selected`]: same workload, same
/// memory system, same attachments, but driven in `--checkpoint-every`
/// slices with the engine state flushed between them.
fn run_checkpointed(o: &Options) -> Result<(ExperimentResult, String), CliError> {
    let (src, name, cfg) = select_source(o)?;
    let out = std::path::PathBuf::from(o.checkpoint_out.as_deref().expect("caller checked"));
    probe_writable(&out)?;
    let result = match prepare_engine(memory_kind(o), cfg, Tracer::disabled()) {
        PreparedEngine::Svc(mut p) => drive_checkpointed(&mut p, src.as_ref(), &name, o, &out)?,
        PreparedEngine::Arb(mut p) => drive_checkpointed(&mut p, src.as_ref(), &name, o, &out)?,
    };
    Ok((result, name))
}

/// Loads a checkpoint from a file, or the newest valid one from a ring
/// directory (skipping torn/corrupt files by checksum).
fn load_checkpoint(
    path: &std::path::Path,
    keep: usize,
) -> Result<(std::path::PathBuf, String, Vec<u8>), CliError> {
    if path.is_dir() {
        let ring = CheckpointRing::open(path, keep).map_err(|e| CliError::io(path.display(), e))?;
        let ckpt = ring
            .newest_valid()
            .map_err(|e| CliError::io(path.display(), e))?
            .ok_or_else(|| {
                CliError::Invariant(format!(
                    "{}: no valid checkpoint in ring (all torn or empty)",
                    path.display()
                ))
            })?;
        eprintln!(
            "resume: ring {} -> checkpoint #{} ({})",
            path.display(),
            ckpt.seq,
            ckpt.kind
        );
        Ok((ckpt.path, ckpt.kind, ckpt.payload))
    } else {
        let bytes = std::fs::read(path).map_err(|e| CliError::io(path.display(), e))?;
        let (kind, payload) = checkpoint::decode(&bytes)
            .map_err(|e| CliError::Invariant(format!("{}: {e}", path.display())))?;
        Ok((path.to_path_buf(), kind, payload))
    }
}

/// `svc-sim resume <ckpt>`: restart a checkpointed `run` or soak from
/// its saved state and carry it to completion.
fn cmd_resume(o: &Options) -> Result<(), CliError> {
    let given = std::path::PathBuf::from(o.resume_path.as_deref().expect("parse checked"));
    let (ckpt_path, kind, payload) = load_checkpoint(&given, o.checkpoint_keep)?;
    match kind.as_str() {
        RUN_CKPT_KIND => resume_run(o, &ckpt_path, &payload),
        soak::SOAK_CKPT_KIND => resume_soak(o, &given, &payload),
        other => Err(CliError::Invariant(format!(
            "{}: unknown checkpoint kind {other:?}",
            ckpt_path.display()
        ))),
    }
}

/// Resumes a `run` checkpoint: rebuild workload + engine from the
/// header, restore the engine state, continue (checkpointing onward to
/// the same file when `--checkpoint-every` is given), and print the
/// report exactly as `run` would.
fn resume_run(o: &Options, ckpt_path: &std::path::Path, payload: &[u8]) -> Result<(), CliError> {
    let corrupt = |e: CkptError| CliError::Invariant(format!("{}: {e}", ckpt_path.display()));
    let mut r = CkptReader::new(payload);
    let mut o2 = restore_run_header(&mut r).map_err(corrupt)?;
    o2.json = o.json;
    o2.checkpoint_every = o.checkpoint_every;
    o2.checkpoint_out = Some(ckpt_path.display().to_string());
    o2.profile_out = o.profile_out.clone();
    // Thread count is a host detail, never part of the header: a resume
    // may shard the same run differently and still match byte-for-byte.
    o2.engine_threads = o.engine_threads;

    let (src, name, cfg) = select_source(&o2)?;
    let started = std::time::Instant::now();
    let result = match prepare_engine(memory_kind(&o2), cfg, Tracer::disabled()) {
        PreparedEngine::Svc(mut p) => {
            p.engine
                .restore_state(&mut r)
                .and_then(|()| r.finish())
                .map_err(corrupt)?;
            eprintln!("resume: {} at cycle {}", name, p.engine.cycle());
            drive_checkpointed(&mut p, src.as_ref(), &name, &o2, ckpt_path)?
        }
        PreparedEngine::Arb(mut p) => {
            p.engine
                .restore_state(&mut r)
                .and_then(|()| r.finish())
                .map_err(corrupt)?;
            eprintln!("resume: {} at cycle {}", name, p.engine.cycle());
            drive_checkpointed(&mut p, src.as_ref(), &name, &o2, ckpt_path)?
        }
    };
    let wall_s = started.elapsed().as_secs_f64();
    print_run_result(&o2, &name, &result, wall_s, None, None)
}

/// Resumes a soak checkpoint: restore config + cumulative state and
/// re-enter the serve loop (telemetry server, ring checkpointing, final
/// snapshot flush) from the saved tick.
fn resume_soak(o: &Options, given: &std::path::Path, payload: &[u8]) -> Result<(), CliError> {
    let (mut cfg, state) = soak::soak_ckpt_restore(payload)
        .map_err(|e| CliError::Invariant(format!("{}: {e}", given.display())))?;
    if o.ticks > 0 {
        cfg.ticks = o.ticks;
    }
    // Checkpoints never carry the planning thread count; re-apply the
    // resuming invocation's choice (0 falls back to SVC_ENGINE_THREADS).
    cfg.engine_threads = o.engine_threads;
    // Keep checkpointing into the ring we resumed from (or an explicit
    // --checkpoint-dir override).
    let mut o2 = o.clone();
    if o2.checkpoint_dir.is_none() && given.is_dir() {
        o2.checkpoint_dir = Some(given.display().to_string());
    }
    if o2.checkpoint_dir.is_some() && o2.checkpoint_every == 0 {
        o2.checkpoint_every = 1;
    }
    eprintln!("resume: soak at tick {}", state.ticks);
    serve_soak(&o2, cfg, Some(state))
}

/// Writes (with `--trace-out PREFIX`) or prints the recorded trace.
fn emit_trace(o: &Options, tracer: &Tracer, title: &str) -> Result<(), CliError> {
    let records = tracer.records();
    if let Some(prefix) = &o.trace_out {
        for (ext, text) in [
            ("log", trace::render_text(&records)),
            ("jsonl", trace::render_jsonl(&records)),
            ("trace.json", trace::render_chrome(&records, title)),
        ] {
            let path = format!("{prefix}.{ext}");
            report::write_atomic(std::path::Path::new(&path), text.as_bytes())
                .map_err(|e| CliError::io(&path, e))?;
        }
        eprintln!(
            "trace: {} events ({} dropped) -> {}.{{log,jsonl,trace.json}}",
            records.len(),
            tracer.dropped(),
            o.trace_out.as_deref().unwrap_or("")
        );
    } else {
        print!("{}", trace::render_text(&records));
        if tracer.dropped() > 0 {
            eprintln!(
                "trace: ring wrapped, {} oldest events dropped (raise SVC_TRACE_CAP)",
                tracer.dropped()
            );
        }
    }
    Ok(())
}

/// The line geometry of the memory system the options select, for
/// mapping word addresses to cache lines in forensics / profile output.
fn words_per_line(o: &Options) -> u64 {
    match o.memory.as_str() {
        "svc" => SvcConfig::paper_geometry(o.kb).words_per_line() as u64,
        _ => svc_repro::arb::ArbConfig::paper(o.pus, o.hit, o.kb.max(32))
            .cache_geometry
            .words_per_line() as u64,
    }
}

/// Wraps one run's profile in the `svc-profile/v1` document shape the
/// experiment binaries publish, so `svc-sim` output parses with the
/// same tooling.
fn profile_doc_for(o: &Options, name: &str, result: &ExperimentResult) -> Json {
    let p = result.profile.as_ref().expect("caller checked profile");
    let run = Json::obj()
        .set("workload", name.into())
        .set("memory", result.memory.as_str().into())
        .set("seed", o.seed.into())
        .set("profile", report::profile_report_json(p));
    report::profile_doc(name, o.budget, o.seed, vec![run])
}

/// Writes the `svc-profile/v1` document to `--profile-out` (if set and
/// a profile was recorded) and returns the path written.
fn write_profile_out(
    o: &Options,
    name: &str,
    result: &ExperimentResult,
) -> Result<Option<String>, CliError> {
    let Some(path) = &o.profile_out else {
        return Ok(None);
    };
    if result.profile.is_none() {
        return Ok(None);
    }
    let doc = profile_doc_for(o, name, result);
    report::write_atomic(std::path::Path::new(path), doc.render().as_bytes())
        .map_err(|e| CliError::io(path, e))?;
    Ok(Some(path.clone()))
}

/// Renders the per-PU cycle-attribution table, the conservation line,
/// and the top wasted-work addresses (with their cache lines, via the
/// forensics address→line mapping).
fn render_profile(p: &ProfileReport, wpl: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:6}", "pu");
    for b in Bucket::EVERY {
        let _ = write!(out, " {:>15}", b.name());
    }
    out.push('\n');
    for (i, set) in p.per_pu.iter().enumerate() {
        let _ = write!(out, "pu{i:<4}");
        for v in set {
            let _ = write!(out, " {v:>15}");
        }
        out.push('\n');
    }
    let totals = p.totals();
    let _ = write!(out, "{:6}", "total");
    for v in totals {
        let _ = write!(out, " {v:>15}");
    }
    out.push('\n');
    let attributed = p.attributed().max(1);
    let _ = write!(out, "{:6}", "%");
    for v in totals {
        let _ = write!(out, " {:>14.1}%", 100.0 * v as f64 / attributed as f64);
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "conservation: attributed {} of {} PU-cycles ({} cycles x {} PUs) -- {}",
        p.attributed(),
        p.expected(),
        p.cycles,
        p.num_pus,
        if p.conservation_ok() {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    if !p.wasted_addrs.is_empty() {
        let _ = writeln!(out, "top wasted-work addresses (squashed accesses):");
        for &(addr, count) in &p.wasted_addrs {
            let line = forensics::line_of(Addr(addr), wpl);
            let _ = writeln!(
                out,
                "  addr {addr:>8}  line {:>6}  squashed {count}",
                line.0
            );
        }
    }
    out
}

fn cmd_run(o: &Options) -> Result<(), CliError> {
    if o.profile {
        // The harness builds its profiler with `Profiler::from_env`, so
        // the flag is exactly `SVC_PROFILE=1` for this process.
        std::env::set_var("SVC_PROFILE", "1");
    }
    if o.checkpoint_out.is_some() {
        // Checkpointed runs drive the engine in slices; tracing is
        // rejected at parse time, so the plain path below never races
        // a tracer against the checkpoint cadence.
        let started = std::time::Instant::now();
        let (result, name) = run_checkpointed(o)?;
        let wall_s = started.elapsed().as_secs_f64();
        return print_run_result(o, &name, &result, wall_s, None, None);
    }
    let tracer = cli_tracer(o, false)?;
    let started = std::time::Instant::now();
    let (result, name) = run_selected(o, tracer.clone())?;
    let wall_s = started.elapsed().as_secs_f64();
    if tracer.is_active() {
        emit_trace(o, &tracer, &name)?;
    }
    let trace_prefix = if tracer.is_active() {
        o.trace_out.as_deref()
    } else {
        None
    };
    // Offline analysis of the trace we just captured, in-process (no
    // JSONL round trip). With `--analyze-out` the document is written
    // and advertised under `artifacts.analysis`; without it the text
    // tables follow the human-readable report.
    let analysis = if o.analyze {
        let cfg = svc_repro::analyze::analysis::AnalyzeConfig {
            words_per_line: words_per_line(o),
            ..Default::default()
        };
        Some(svc_repro::analyze::analyze_records(
            &tracer.records(),
            0,
            result.profile.as_ref(),
            &cfg,
        ))
    } else {
        None
    };
    let analysis_path = match (&analysis, &o.analyze_out) {
        (Some(doc), Some(path)) => {
            report::write_atomic(std::path::Path::new(path), doc.render().as_bytes())
                .map_err(|e| CliError::io(path, e))?;
            eprintln!("analysis: -> {path}");
            Some(path.clone())
        }
        _ => None,
    };
    print_run_result(
        o,
        &name,
        &result,
        wall_s,
        trace_prefix,
        analysis_path.as_deref(),
    )?;
    if let (Some(doc), None) = (&analysis, &o.analyze_out) {
        print!("{}", svc_repro::analyze::analysis::render_text(doc));
    }
    Ok(())
}

/// The shared tail of `run` and `resume`: profile artifact, `--json`
/// document or the human-readable report.
fn print_run_result(
    o: &Options,
    name: &str,
    result: &ExperimentResult,
    wall_s: f64,
    trace_prefix: Option<&str>,
    analysis_path: Option<&str>,
) -> Result<(), CliError> {
    let profile_path = write_profile_out(o, name, result)?;
    let cycles_per_sec = if wall_s > 0.0 {
        result.report.cycles as f64 / wall_s
    } else {
        0.0
    };
    if o.json {
        // Self-measurement rides along after the deterministic metrics:
        // tooling diffing `--json` output across runs should strip
        // `wall_s` / `sim_cycles_per_sec` first (as the regress-style
        // identity checks do), since wall-clock data is never stable.
        let mut doc = report::experiment_result_json(result, o.seed)
            .set("wall_s", wall_s.into())
            .set("sim_cycles_per_sec", cycles_per_sec.into());
        // Artifact paths, so tooling reading `--json` output can locate
        // the trace sinks and profile document written alongside it.
        let mut artifacts = Json::obj();
        if let Some(prefix) = trace_prefix {
            artifacts = artifacts
                .set("trace_log", format!("{prefix}.log").into())
                .set("trace_jsonl", format!("{prefix}.jsonl").into())
                .set("trace_chrome", format!("{prefix}.trace.json").into());
        }
        if let Some(path) = &profile_path {
            artifacts = artifacts.set("profile", path.as_str().into());
        }
        if let Some(path) = &o.checkpoint_out {
            artifacts = artifacts.set("checkpoint", path.as_str().into());
        }
        if let Some(path) = analysis_path {
            artifacts = artifacts.set("analysis", path.into());
        }
        if artifacts.as_obj().is_some_and(|m| !m.is_empty()) {
            doc = doc.set("artifacts", artifacts);
        }
        println!("{}", doc.render());
        return Ok(());
    }
    println!("workload   {name}");
    println!("memory     {}", result.memory);
    println!("IPC        {:.3}", result.ipc);
    println!("miss ratio {:.4}", result.miss_ratio);
    if result.bus_utilization > 0.0 {
        println!("bus util   {:.3}", result.bus_utilization);
    }
    let r = &result.report;
    println!(
        "tasks      {} committed (avg {:.1} instrs), {} squashes ({} violation, {} resource), {} mispredictions",
        r.committed_tasks,
        r.avg_task_len(),
        r.squashes,
        r.violation_squashes,
        r.resource_squashes,
        r.mispredictions
    );
    println!(
        "memory     {} loads, {} stores, {} fills, {} transfers, {} writebacks, {} snarfs",
        r.mem.loads,
        r.mem.stores,
        r.mem.next_level_fills,
        r.mem.cache_transfers,
        r.mem.writebacks,
        r.mem.snarfs
    );
    println!(
        "throughput {cycles_per_sec:.0} sim cycles/s ({} cycles in {wall_s:.3}s wall)",
        r.cycles
    );
    if let Some(p) = &result.profile {
        print!("{}", render_profile(p, words_per_line(o)));
    }
    if let Some(path) = &profile_path {
        eprintln!("profile: -> {path}");
    }
    Ok(())
}

/// `svc-sim profile`: run one profiled cell and print the per-PU cycle
/// attribution table plus the top wasted-work addresses (`--json`
/// emits the `svc-profile/v1` document instead).
fn cmd_profile(o: &Options) -> Result<(), CliError> {
    std::env::set_var("SVC_PROFILE", "1");
    let tracer = cli_tracer(o, false)?;
    let (result, name) = run_selected(o, tracer.clone())?;
    if tracer.is_active() {
        emit_trace(o, &tracer, &name)?;
    }
    let profile_path = write_profile_out(o, &name, &result)?;
    let Some(p) = &result.profile else {
        return Err(CliError::Invariant(
            "profiled run produced no profile report".to_string(),
        ));
    };
    if o.json {
        println!("{}", profile_doc_for(o, &name, &result).render());
        return Ok(());
    }
    println!(
        "workload   {name} on {} ({} cycles, {} PUs, epoch {}, {} samples)",
        result.memory,
        p.cycles,
        p.num_pus,
        p.epoch,
        p.samples.len()
    );
    println!("IPC        {:.3}", result.ipc);
    print!("{}", render_profile(p, words_per_line(o)));
    if let Some(path) = &profile_path {
        eprintln!("profile: -> {path}");
    }
    Ok(())
}

/// `svc-sim trace`: run a fully traced cell and print the forensics
/// report for the line containing `--addr`.
fn cmd_trace(o: &Options) -> Result<(), CliError> {
    let addr = o.addr.expect("parse() enforces --addr for `trace`");
    let tracer = cli_tracer(o, true)?;
    let (_, name) = run_selected(o, tracer.clone())?;
    let records = tracer.records();
    let wpl = words_per_line(o);
    let line = forensics::line_of(svc_repro::types::Addr(addr), wpl);
    println!(
        "workload {name}: {} traced events ({} dropped), line {} (addr {addr}, {wpl} words/line)",
        records.len(),
        tracer.dropped(),
        line.0
    );
    print!("{}", forensics::render_line_report(&records, line, wpl));
    Ok(())
}

fn cmd_designs(o: &Options) -> Result<(), CliError> {
    let bench = lookup_bench(o.bench.as_deref().unwrap_or("gcc")).map_err(CliError::Usage)?;
    let wl = bench.workload(o.seed);
    println!(
        "design progression on {bench} ({} instructions):\n",
        o.budget
    );
    println!(
        "{:8} {:>6} {:>9} {:>8}",
        "design", "IPC", "missrate", "busutil"
    );
    for (name, cfg) in [
        ("base", SvcConfig::base(o.pus)),
        ("EC", SvcConfig::ec(o.pus)),
        ("ECS", SvcConfig::ecs(o.pus)),
        ("HR", SvcConfig::hr(o.pus)),
        ("RL", SvcConfig::rl(o.pus)),
        ("final", SvcConfig::final_design(o.pus)),
    ] {
        let mut engine = Engine::new(engine_config(o, Some(&wl)), SvcSystem::new(cfg));
        let report = engine.run(&wl as &dyn TaskSource);
        let stats = engine.memory().stats();
        println!(
            "{:8} {:6.2} {:9.4} {:8.3}",
            name,
            report.ipc(),
            stats.miss_ratio(),
            report.bus_utilization()
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `svc-sim faults`: the deterministic fault-injection campaign
// ---------------------------------------------------------------------

/// Kernels × SVC designs swept by the recovery campaign.
const CAMPAIGN_KERNELS: [&str; 4] = [
    "streaming",
    "producer-consumer",
    "reduction",
    "false-sharing",
];

fn campaign_designs(pus: usize) -> [(&'static str, SvcConfig); 3] {
    [
        ("base", SvcConfig::base(pus)),
        ("ecs", SvcConfig::ecs(pus)),
        ("final", SvcConfig::final_design(pus)),
    ]
}

/// Architectural words probed after draining — wide enough to cover
/// every campaign kernel's address space.
const PROBE_SPAN: u64 = 16 * 1024;

/// What one campaign run left behind: the drained architectural image,
/// the watchdog verdict, and the injection counters.
struct CellOutcome {
    probes: Vec<svc_repro::types::Word>,
    violations: usize,
    injected: u64,
    counts: Vec<(&'static str, u64)>,
}

/// Runs `kernel` on `cfg` with the given injector (watchdog always on),
/// drains, and probes the architectural state.
fn run_fault_cell(
    kernel: &str,
    cfg: SvcConfig,
    o: &Options,
    seed: u64,
    faults: Faults,
) -> Result<CellOutcome, CliError> {
    let src = lookup_kernel(kernel, seed).map_err(CliError::Usage)?;
    let mut system = SvcSystem::new(cfg);
    system.set_faults(faults.clone());
    let engine_cfg = EngineConfig {
        num_pus: o.pus,
        max_instructions: o.budget,
        seed,
        engine_threads: o.engine_threads,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg, system);
    engine.set_faults(faults.clone());
    engine.set_watchdog(64);
    engine.run(&src as &dyn TaskSource);
    let violations = engine.violations().len();
    let mut mem = engine.into_memory();
    mem.drain();
    let probes = (0..PROBE_SPAN)
        .map(|a| mem.architectural(Addr(a)))
        .collect();
    Ok(CellOutcome {
        probes,
        violations,
        injected: faults.total_injected(),
        counts: faults.counts(),
    })
}

/// Corrupts a drilled system and asserts the watchdog catches it,
/// printing the violations and the forensics causal chain for the
/// corrupted line. `drill` is `state_bit` or `splice_vol`.
fn run_drill(o: &Options, seed: u64, drill: &str) -> Result<(), CliError> {
    let mask = trace::parse_filter("all").expect("'all' is a valid filter");
    let tracer = Tracer::new(mask, 65_536);
    let src = lookup_kernel("producer-consumer", seed).map_err(CliError::Usage)?;
    let mut system = SvcSystem::new(SvcConfig::final_design(o.pus));
    system.set_tracer(tracer.clone());
    let engine_cfg = EngineConfig {
        num_pus: o.pus,
        max_instructions: o.budget.min(20_000),
        seed,
        engine_threads: o.engine_threads,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg, system);
    engine.set_tracer(tracer.clone());
    let report = engine.run(&src as &dyn TaskSource);
    let now = Cycle(report.cycles);
    let mut mem = engine.into_memory();

    let pre = mem.check_invariants(now);
    if !pre.is_empty() {
        return Err(CliError::Invariant(format!(
            "drill {drill}: system dirty before corruption: {}",
            pre[0]
        )));
    }
    let corrupted = (0..PROBE_SPAN).map(Addr).find(|&a| match drill {
        "state_bit" => mem.fault_flip_state_bit(PuId(0), a),
        _ => mem.fault_splice_vol(a),
    });
    let Some(addr) = corrupted else {
        return Err(CliError::Invariant(format!(
            "drill {drill}: no resident line to corrupt (seed {seed:#x})"
        )));
    };
    let found = mem.check_invariants(now);
    if found.is_empty() {
        return Err(CliError::Invariant(format!(
            "drill {drill}: corruption at addr {} NOT caught by the watchdog",
            addr.0
        )));
    }
    println!(
        "detected   drill={drill} addr={} violations={}",
        addr.0,
        found.len()
    );
    for v in found.iter().take(4) {
        println!("           {v}");
    }
    // The forensics causal chain for the corrupted line: its version
    // history as recorded by the tracer up to the corruption.
    let wpl = SvcConfig::final_design(o.pus).geometry.words_per_line() as u64;
    let line = forensics::line_of(addr, wpl);
    let chain = forensics::render_line_report(&tracer.records(), line, wpl);
    for l in chain.lines().take(12) {
        println!("           | {l}");
    }
    Ok(())
}

/// `svc-sim faults`: sweep kernels × designs with every fault site
/// firing at `--rate`, asserting each cell either recovers (drained
/// architectural state identical to the fault-free reference) or is
/// flagged by the watchdog; then run the corruption drills, which the
/// watchdog must catch. Output is byte-identical for a given seed.
fn cmd_faults(o: &Options) -> Result<(), CliError> {
    let spec = format!("all={}", o.rate);
    let fault_cfg = FaultConfig::parse(&spec).map_err(CliError::Usage)?;
    println!(
        "fault campaign: seed {:#x}, rate {}, budget {}",
        o.seed, o.rate, o.budget
    );

    let mut cell_seeds = SplitMix64::new(o.seed);
    let mut cells = 0u64;
    let mut total_injected = 0u64;
    for kernel in CAMPAIGN_KERNELS {
        for (design, cfg) in campaign_designs(o.pus) {
            let seed = cell_seeds.next_u64();
            let reference = run_fault_cell(kernel, cfg, o, seed, Faults::disabled())?;
            let faulted = run_fault_cell(kernel, cfg, o, seed, Faults::new(&fault_cfg, seed))?;
            cells += 1;
            total_injected += faulted.injected;
            if reference.violations > 0 {
                return Err(CliError::Invariant(format!(
                    "{kernel}/{design}: fault-free reference tripped the watchdog"
                )));
            }
            let verdict = if faulted.probes == reference.probes && faulted.violations == 0 {
                "recovered"
            } else if faulted.violations > 0 {
                "detected"
            } else {
                let diverged = faulted
                    .probes
                    .iter()
                    .zip(&reference.probes)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                return Err(CliError::Invariant(format!(
                    "{kernel}/{design}: SILENT CORRUPTION — architectural state diverges \
                     at addr {diverged} with no watchdog violation (seed {seed:#x})"
                )));
            };
            let fired: Vec<String> = faulted
                .counts
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(name, n)| format!("{name}={n}"))
                .collect();
            println!(
                "{verdict}  kernel={kernel} design={design} seed={seed:#x} injected={} ({})",
                faulted.injected,
                fired.join(", "),
            );
        }
    }
    if total_injected == 0 {
        return Err(CliError::Invariant(format!(
            "campaign injected no faults across {cells} cells — rate {} too low",
            o.rate
        )));
    }

    let mut drill_seeds = SplitMix64::new(o.seed ^ 0xD2_11);
    for drill in ["state_bit", "splice_vol"] {
        run_drill(o, drill_seeds.next_u64(), drill)?;
    }
    println!(
        "campaign: {cells} cells, {total_injected} faults injected, 100% recovered or detected; \
         2/2 corruption drills caught"
    );
    Ok(())
}

// ---------------------------------------------------------------------
// `svc-sim serve`: the long-running soak server
// ---------------------------------------------------------------------

/// SIGINT/SIGTERM handling for `serve`. A handler may only do
/// async-signal-safe work, so it just raises an atomic flag that the
/// soak observer polls between ticks — the shutdown path then runs on
/// the main thread (final snapshot flush, HTTP server join).
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the flag-raising handler for SIGINT and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// The `svc-profile/v1` document served at `/profile`: the soak-wide
/// rolling interval window wrapped in the same envelope the experiment
/// binaries publish, so existing tooling parses it unchanged.
fn serve_profile_doc(cfg: &soak::SoakConfig, state: &soak::SoakState) -> Json {
    let run = Json::obj()
        .set("workload", "soak".into())
        .set("memory", "svc".into())
        .set("seed", cfg.seed.into())
        .set(
            "profile",
            report::profile_report_json(&state.profile_report(cfg)),
        );
    report::profile_doc("soak", cfg.slice_budget, cfg.seed, vec![run])
}

/// One deterministic stdout line per tick, so bounded soaks are
/// byte-identical across invocations for a given seed.
fn serve_tick_line(s: &soak::SoakState) -> String {
    format!(
        "tick {:>6} mix={:<18} cycles={} instrs={} squashes={} faults={} storm={}",
        s.ticks,
        s.last_mix,
        s.cycles,
        s.committed_instrs,
        s.squashes,
        s.faults_injected,
        if s.storm_active { "yes" } else { "no" }
    )
}

/// `svc-sim serve`: run the soak loop (unbounded unless `--ticks N`)
/// while exporting `/metrics`, `/profile` and `/healthz` over HTTP,
/// then flush the `svc-soak/v1` snapshot on exit.
fn cmd_serve(o: &Options) -> Result<(), CliError> {
    let storm = match &o.storm {
        Some(spec) => StormSchedule::parse(spec).map_err(CliError::Usage)?,
        None => StormSchedule::default(),
    };
    let cfg = soak::SoakConfig {
        seed: o.seed,
        ticks: o.ticks,
        slice_budget: o.slice_budget,
        kb: o.kb,
        pus: o.pus,
        storm,
        engine_threads: o.engine_threads,
        ..soak::SoakConfig::default()
    };
    serve_soak(o, cfg, None)
}

/// The serve loop proper, shared by `serve` (fresh state) and `resume`
/// (state restored from a soak checkpoint). Destinations are probed at
/// startup so an unwritable `--out` or `--checkpoint-dir` is a typed
/// I/O failure (exit 3) before the soak starts, not a panic hours in.
fn serve_soak(
    o: &Options,
    cfg: soak::SoakConfig,
    resume: Option<soak::SoakState>,
) -> Result<(), CliError> {
    let out_path = match &o.out {
        Some(p) => std::path::PathBuf::from(p),
        None => report::results_dir().join("soak.json"),
    };
    probe_writable(&out_path)?;
    let mut ring = match &o.checkpoint_dir {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(|e| CliError::io(dir.display(), e))?;
            probe_writable(&dir.join("ckpt"))?;
            let ring = CheckpointRing::open(&dir, o.checkpoint_keep)
                .map_err(|e| CliError::io(dir.display(), e))?;
            eprintln!(
                "serve: checkpointing to {} (every {} tick(s), keep {})",
                dir.display(),
                o.checkpoint_every.max(1),
                o.checkpoint_keep
            );
            Some(ring)
        }
        None => None,
    };
    let every = o.checkpoint_every.max(1);

    shutdown::install();
    let shared = shared_snapshot();
    let server = TelemetryServer::bind(&format!("127.0.0.1:{}", o.port), shared.clone())
        .map_err(|e| CliError::io("telemetry bind", e))?;
    // The ephemeral port goes to stderr (and optionally a file), never
    // stdout: stdout is the byte-deterministic soak log.
    eprintln!("serve: listening on http://{}", server.local_addr());
    eprintln!("serve: endpoints /metrics /profile /healthz");
    if let Some(path) = &o.addr_file {
        report::write_atomic(
            std::path::Path::new(path),
            server.local_addr().to_string().as_bytes(),
        )
        .map_err(|e| CliError::io(path, e))?;
    }
    // Seed `/healthz` before the first tick so early scrapes see a
    // well-formed body rather than an empty one.
    if let Ok(mut snap) = shared.lock() {
        snap.healthz_json = Json::obj().set("status", "starting".into()).render();
    }
    // (seq, tick) of the last checkpoint this process wrote; surfaced
    // in `/healthz` so operators can watch checkpoint freshness. The
    // observer lives in its own scope so its `ring` borrow ends before
    // the final checkpoint below.
    let state = {
        let mut last_ckpt: Option<(u64, u64)> = None;
        // Checkpoint write telemetry (count, last/total wall latency).
        // Wall-clock data stays in this process's exporter copy of the
        // registry and never enters SoakState, so `results/soak.json`
        // remains a pure function of (seed, ticks).
        let mut ckpt_writes = 0u64;
        let mut ckpt_last_micros = 0u64;
        let mut ckpt_total_micros = 0u64;
        let mut observer = |s: &soak::SoakState| {
            println!("{}", serve_tick_line(s));
            if let Some(ring) = ring.as_mut() {
                if s.ticks.is_multiple_of(every) {
                    let payload = soak::soak_ckpt_payload(&cfg, s);
                    let write_started = std::time::Instant::now();
                    match ring.write(soak::SOAK_CKPT_KIND, &payload) {
                        Ok(_) => {
                            last_ckpt = Some((ring.next_seq().saturating_sub(1), s.ticks));
                            ckpt_writes += 1;
                            ckpt_last_micros = write_started.elapsed().as_micros() as u64;
                            ckpt_total_micros += ckpt_last_micros;
                        }
                        // A full disk mid-soak degrades checkpointing,
                        // not the soak itself.
                        Err(e) => eprintln!("serve: checkpoint write failed (continuing): {e}"),
                    }
                }
            }
            if let Ok(mut snap) = shared.lock() {
                let mut reg = s.metrics();
                // Engine-parallelism telemetry is injected here (like
                // the checkpoint gauges below) so it lives only in this
                // process's exporter copy of the registry — never in
                // SoakState checkpoints or `results/soak.json`.
                reg.gauge_with(
                    "soak.engine",
                    &[("field", "threads")],
                    s.engine_threads as f64,
                );
                reg.gauge_with(
                    "soak.engine",
                    &[("field", "epoch_barriers")],
                    s.engine_epoch_barriers as f64,
                );
                reg.gauge_with(
                    "soak.engine",
                    &[("field", "merge_micros")],
                    (s.engine_plan_nanos / 1_000) as f64,
                );
                if let Some((seq, tick)) = last_ckpt {
                    reg.counter("soak.checkpoint_writes", ckpt_writes);
                    reg.gauge_with("soak.checkpoint", &[("field", "seq")], seq as f64);
                    reg.gauge_with(
                        "soak.checkpoint",
                        &[("field", "age_ticks")],
                        s.ticks.saturating_sub(tick) as f64,
                    );
                    reg.gauge_with(
                        "soak.checkpoint_write_micros",
                        &[("stat", "last")],
                        ckpt_last_micros as f64,
                    );
                    reg.gauge_with(
                        "soak.checkpoint_write_micros",
                        &[("stat", "total")],
                        ckpt_total_micros as f64,
                    );
                }
                snap.metrics_text = reg.render_prometheus();
                snap.profile_json = serve_profile_doc(&cfg, s).render();
                let mut hz = soak::healthz_json(s);
                if let Some((seq, tick)) = last_ckpt {
                    hz = hz.set(
                        "checkpoint",
                        Json::obj()
                            .set("seq", seq.into())
                            .set("age_ticks", s.ticks.saturating_sub(tick).into())
                            .set("valid", true.into()),
                    );
                }
                snap.healthz_json = hz.render();
            }
            !shutdown::requested()
        };
        match resume {
            Some(s) => soak::run_soak_from(&cfg, s, &mut observer),
            None => soak::run_soak(&cfg, &mut observer),
        }
    };
    // Final checkpoint at the stopping tick, so a `resume` after a clean
    // shutdown continues from exactly where the soak stopped.
    if let Some(ring) = ring.as_mut() {
        let payload = soak::soak_ckpt_payload(&cfg, &state);
        if let Err(e) = ring.write(soak::SOAK_CKPT_KIND, &payload) {
            eprintln!("serve: final checkpoint write failed: {e}");
        }
    }
    server.shutdown();
    let doc = soak::soak_doc(&cfg, &state);
    let path = out_path;
    report::write_atomic(&path, doc.render().as_bytes())
        .map_err(|e| CliError::io(path.display(), e))?;
    eprintln!("serve: snapshot -> {}", path.display());
    println!(
        "soak: {} ticks, {} cycles, {} instrs, {} tasks, {} squashes, {} faults, {} storms, {} watchdog violations",
        state.ticks,
        state.cycles,
        state.committed_instrs,
        state.committed_tasks,
        state.squashes,
        state.faults_injected,
        state.storms_started,
        state.watchdog_violations
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: svc-sim run|trace|profile|designs|faults|serve|resume|list [flags] (see `cargo doc`)"
            );
            return ExitCode::from(svc_repro::bench::cli::EXIT_USAGE);
        }
    };
    let result = match opts.command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&opts),
        "trace" => cmd_trace(&opts),
        "profile" => cmd_profile(&opts),
        "faults" => cmd_faults(&opts),
        "serve" => cmd_serve(&opts),
        "resume" => cmd_resume(&opts),
        _ => cmd_designs(&opts),
    };
    svc_repro::bench::cli::exit_report(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse(&argv("run")).unwrap();
        assert_eq!(o.command, "run");
        assert_eq!(o.memory, "svc");
        assert_eq!(o.kb, 8);
        assert_eq!(o.budget, 200_000);
    }

    #[test]
    fn parse_flags() {
        let o = parse(&argv(
            "run --bench mgrid --memory arb --hit 3 --kb 64 --budget 5000 --seed 9 --pus 8",
        ))
        .unwrap();
        assert_eq!(o.bench.as_deref(), Some("mgrid"));
        assert_eq!(o.memory, "arb");
        assert_eq!(o.hit, 3);
        assert_eq!(o.kb, 64);
        assert_eq!(o.budget, 5000);
        assert_eq!(o.seed, 9);
        assert_eq!(o.pus, 8);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --bench gcc --kernel reduction")).is_err());
        assert!(parse(&argv("run --memory weird")).is_err());
        assert!(parse(&argv("run --budget notanumber")).is_err());
        assert!(parse(&argv("run --budget")).is_err());
    }

    #[test]
    fn parse_engine_threads_flag() {
        // Default 0: resolve from SVC_ENGINE_THREADS at engine build.
        assert_eq!(parse(&argv("run")).unwrap().engine_threads, 0);
        let o = parse(&argv("run --bench gcc --engine-threads 8")).unwrap();
        assert_eq!(o.engine_threads, 8);
        let o = parse(&argv("serve --engine-threads 2")).unwrap();
        assert_eq!(o.engine_threads, 2);
        assert!(parse(&argv("run --engine-threads lots")).is_err());
        assert!(parse(&argv("run --engine-threads")).is_err());
    }

    #[test]
    fn parse_json_flag() {
        assert!(!parse(&argv("run")).unwrap().json);
        assert!(parse(&argv("run --json --bench gcc")).unwrap().json);
    }

    #[test]
    fn parse_replay_flag() {
        let o = parse(&argv("run --replay foo.trace")).unwrap();
        assert_eq!(o.replay.as_deref(), Some("foo.trace"));
        assert!(parse(&argv("run --replay f --kernel reduction")).is_err());
    }

    #[test]
    fn parse_trace_flags() {
        let o = parse(&argv("run --trace")).unwrap();
        assert!(o.trace);
        assert_eq!(o.trace_filter, "all");
        let o = parse(&argv(
            "run --trace --trace-filter bus,task --trace-out /tmp/t",
        ))
        .unwrap();
        assert_eq!(o.trace_filter, "bus,task");
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t"));
        // A bad filter fails at parse time, not after the run.
        assert!(parse(&argv("run --trace --trace-filter nonsense")).is_err());
        // --trace-filter without --trace is accepted but unvalidated
        // only when tracing is off for a plain run.
        assert!(parse(&argv("run --trace-filter bus")).is_ok());
    }

    #[test]
    fn parse_trace_subcommand() {
        let o = parse(&argv("trace --addr 128 --bench gcc")).unwrap();
        assert_eq!(o.command, "trace");
        assert_eq!(o.addr, Some(128));
        assert!(
            parse(&argv("trace --bench gcc")).is_err(),
            "--addr required"
        );
        assert!(parse(&argv("trace --addr 1 --trace-filter bogus")).is_err());
    }

    #[test]
    fn parse_profile_flags() {
        assert!(!parse(&argv("run")).unwrap().profile);
        assert!(parse(&argv("run --profile --bench gcc")).unwrap().profile);
        // --profile-out implies --profile.
        let o = parse(&argv("run --profile-out /tmp/p.json")).unwrap();
        assert!(o.profile);
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/p.json"));
        assert!(parse(&argv("run --profile-out")).is_err());
    }

    #[test]
    fn parse_analyze_flags() {
        // --analyze rides on a captured trace.
        assert!(parse(&argv("run --analyze")).is_err());
        assert!(parse(&argv("run --trace --analyze")).unwrap().analyze);
        // --analyze-out implies --analyze.
        let o = parse(&argv("run --trace --analyze-out /tmp/a.json")).unwrap();
        assert!(o.analyze);
        assert_eq!(o.analyze_out.as_deref(), Some("/tmp/a.json"));
        // --json keeps stdout a single document, so the analysis needs
        // its own sink.
        assert!(parse(&argv("run --trace --json --analyze")).is_err());
        assert!(parse(&argv("run --trace --json --analyze-out /tmp/a.json")).is_ok());
        // Only `run` analyzes.
        assert!(parse(&argv("serve --analyze")).is_err());
    }

    #[test]
    fn parse_profile_subcommand() {
        let o = parse(&argv("profile --kernel reduction --json")).unwrap();
        assert_eq!(o.command, "profile");
        assert!(o.profile, "profile subcommand is always profiled");
        assert!(o.json);
    }

    #[test]
    fn parse_serve_defaults() {
        let o = parse(&argv("serve")).unwrap();
        assert_eq!(o.command, "serve");
        assert_eq!(o.port, 0, "ephemeral port by default");
        assert_eq!(o.ticks, 0, "unbounded by default");
        assert_eq!(o.slice_budget, 20_000);
        assert!(o.storm.is_none());
        assert!(o.addr_file.is_none());
        assert!(o.out.is_none());
    }

    #[test]
    fn parse_serve_flags() {
        let o = parse(&argv(
            "serve --port 9100 --ticks 24 --seed 7 --slice-budget 5000 \
             --storm period=6,duration=2,rate=0.1 --addr-file /tmp/a --out /tmp/s.json",
        ))
        .unwrap();
        assert_eq!(o.port, 9100);
        assert_eq!(o.ticks, 24);
        assert_eq!(o.seed, 7);
        assert_eq!(o.slice_budget, 5000);
        assert_eq!(o.storm.as_deref(), Some("period=6,duration=2,rate=0.1"));
        assert_eq!(o.addr_file.as_deref(), Some("/tmp/a"));
        assert_eq!(o.out.as_deref(), Some("/tmp/s.json"));
    }

    #[test]
    fn parse_serve_rejects_bad_input() {
        assert!(parse(&argv("serve --port notaport")).is_err());
        assert!(parse(&argv("serve --slice-budget 0")).is_err());
        // Bad storm specs fail at parse time, not hours into a soak.
        assert!(parse(&argv("serve --storm period=0")).is_err());
        assert!(parse(&argv("serve --storm bogus=1")).is_err());
    }

    #[test]
    fn lookups() {
        assert!(lookup_bench("gcc").is_ok());
        assert!(lookup_bench("nope").is_err());
        assert!(lookup_kernel("reduction", 1).is_ok());
        assert!(lookup_kernel("nope", 1).is_err());
    }

    #[test]
    fn parse_checkpoint_flags() {
        let o = parse(&argv(
            "run --bench gcc --checkpoint-out /tmp/c.svc --checkpoint-every 5000",
        ))
        .unwrap();
        assert_eq!(o.checkpoint_out.as_deref(), Some("/tmp/c.svc"));
        assert_eq!(o.checkpoint_every, 5000);

        // --checkpoint-out alone gets the default cadence.
        let o = parse(&argv("run --checkpoint-out /tmp/c.svc")).unwrap();
        assert_eq!(o.checkpoint_every, 250_000);

        let o = parse(&argv(
            "serve --checkpoint-dir /tmp/ring --checkpoint-keep 2",
        ))
        .unwrap();
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/ring"));
        assert_eq!(o.checkpoint_keep, 2);
        // serve checkpoints every tick unless told otherwise.
        assert_eq!(o.checkpoint_every, 1);
    }

    #[test]
    fn parse_checkpoint_rejects_bad_combinations() {
        // A cadence with nowhere to write.
        assert!(parse(&argv("run --checkpoint-every 1000")).is_err());
        // Tracing and checkpointing are mutually exclusive.
        assert!(parse(&argv("run --trace --checkpoint-out /tmp/c.svc")).is_err());
        // The ring must keep at least one checkpoint.
        assert!(parse(&argv("serve --checkpoint-dir /tmp/r --checkpoint-keep 0")).is_err());
    }

    #[test]
    fn parse_resume_subcommand() {
        let o = parse(&argv("resume /tmp/ring --ticks 50 --json")).unwrap();
        assert_eq!(o.command, "resume");
        assert_eq!(o.resume_path.as_deref(), Some("/tmp/ring"));
        assert_eq!(o.ticks, 50);
        assert!(o.json);
        // The checkpoint (file or ring directory) is mandatory.
        assert!(parse(&argv("resume")).is_err());
    }
}
