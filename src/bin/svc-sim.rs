//! `svc-sim` — command-line front end for the simulator.
//!
//! ```text
//! svc-sim run   [--bench NAME|--kernel NAME|--trace FILE]
//!               [--memory svc|arb] [--kb N] [--hit N] [--budget N]
//!               [--seed N] [--pus N] [--json]
//! svc-sim designs [--bench NAME] [--budget N] [--seed N]
//! svc-sim list
//! ```
//!
//! `run` executes one workload on one memory system and prints the
//! report (`--json` emits the machine-readable `svc-experiments/v1`
//! run object instead); `designs` walks the §3 design progression on
//! one benchmark; `list` shows the available workloads.

use std::process::ExitCode;

use svc_repro::bench::{report, run_source, MemoryKind, NUM_PUS};
use svc_repro::multiscalar::{Engine, EngineConfig, TaskSource, VecTaskSource};
use svc_repro::svc::{SvcConfig, SvcSystem};
use svc_repro::types::VersionedMemory;
use svc_repro::workloads::{kernels, Spec95, SyntheticWorkload};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: String,
    bench: Option<String>,
    kernel: Option<String>,
    trace: Option<String>,
    memory: String,
    kb: usize,
    hit: u64,
    budget: u64,
    seed: u64,
    pus: usize,
    json: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            command: String::new(),
            bench: None,
            kernel: None,
            trace: None,
            memory: "svc".to_string(),
            kb: 8,
            hit: 1,
            budget: 200_000,
            seed: 42,
            pus: NUM_PUS,
            json: false,
        }
    }
}

/// Parses `args` (without the program name). Pure, for testability.
fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    o.command = it.next().cloned().ok_or("missing command")?;
    if !matches!(o.command.as_str(), "run" | "designs" | "list") {
        return Err(format!("unknown command {:?}", o.command));
    }
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" | "-b" => o.bench = Some(value()?),
            "--kernel" | "-k" => o.kernel = Some(value()?),
            "--trace" | "-t" => o.trace = Some(value()?),
            "--memory" | "-m" => o.memory = value()?,
            "--kb" => o.kb = value()?.parse().map_err(|e| format!("--kb: {e}"))?,
            "--hit" => o.hit = value()?.parse().map_err(|e| format!("--hit: {e}"))?,
            "--budget" => o.budget = value()?.parse().map_err(|e| format!("--budget: {e}"))?,
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--pus" => o.pus = value()?.parse().map_err(|e| format!("--pus: {e}"))?,
            "--json" => o.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if [o.bench.is_some(), o.kernel.is_some(), o.trace.is_some()]
        .into_iter()
        .filter(|&b| b)
        .count()
        > 1
    {
        return Err("--bench, --kernel and --trace are mutually exclusive".to_string());
    }
    if !matches!(o.memory.as_str(), "svc" | "arb") {
        return Err(format!("--memory must be svc or arb, got {:?}", o.memory));
    }
    Ok(o)
}

fn lookup_bench(name: &str) -> Result<Spec95, String> {
    Spec95::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?} (try `svc-sim list`)"))
}

fn lookup_kernel(name: &str, seed: u64) -> Result<VecTaskSource, String> {
    Ok(match name {
        "streaming" => kernels::streaming(2_000, 8),
        "readonly" => kernels::readonly_sharing(2_000, 32),
        "producer-consumer" => kernels::producer_consumer(2_000, 6),
        "reduction" => kernels::reduction(2_000, 3),
        "false-sharing" => kernels::false_sharing(2_000, 2),
        "pointer-chase" => kernels::pointer_chase(2_000, 6, 4096, seed),
        other => return Err(format!("unknown kernel {other:?} (try `svc-sim list`)")),
    })
}

fn cmd_list() {
    println!("benchmarks (SPEC95 models):");
    for b in Spec95::ALL {
        println!("  {b}");
    }
    println!("kernels:");
    for k in [
        "streaming",
        "readonly",
        "producer-consumer",
        "reduction",
        "false-sharing",
        "pointer-chase",
    ] {
        println!("  {k}");
    }
}

fn engine_config(o: &Options, wl: Option<&SyntheticWorkload>) -> EngineConfig {
    let mut cfg = EngineConfig {
        num_pus: o.pus,
        max_instructions: o.budget,
        seed: o.seed,
        ..EngineConfig::default()
    };
    if let Some(wl) = wl {
        cfg.predictor = wl.profile().predictor(o.seed);
        cfg.garbage_addr_space = wl.profile().hot_set.max(64);
        cfg.load_dep_frac = wl.profile().load_dep_frac;
    }
    cfg
}

fn cmd_run(o: &Options) -> Result<(), String> {
    let memory = match o.memory.as_str() {
        "svc" => MemoryKind::Svc { kb_per_cache: o.kb },
        _ => MemoryKind::Arb {
            hit_cycles: o.hit,
            cache_kb: o.kb.max(32),
        },
    };
    let (result, name) = if let Some(path) = &o.trace {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let src = svc_repro::workloads::parse_trace(&text).map_err(|e| e.to_string())?;
        (
            run_source(&src, memory, engine_config(o, None)),
            path.clone(),
        )
    } else if let Some(k) = &o.kernel {
        let src = lookup_kernel(k, o.seed)?;
        (run_source(&src, memory, engine_config(o, None)), k.clone())
    } else {
        let bench = lookup_bench(o.bench.as_deref().unwrap_or("gcc"))?;
        let wl = bench.workload(o.seed);
        (
            run_source(&wl, memory, engine_config(o, Some(&wl))),
            bench.name().to_string(),
        )
    };
    if o.json {
        println!(
            "{}",
            report::experiment_result_json(&result, o.seed).render()
        );
        return Ok(());
    }
    println!("workload   {name}");
    println!("memory     {}", result.memory);
    println!("IPC        {:.3}", result.ipc);
    println!("miss ratio {:.4}", result.miss_ratio);
    if result.bus_utilization > 0.0 {
        println!("bus util   {:.3}", result.bus_utilization);
    }
    let r = &result.report;
    println!(
        "tasks      {} committed (avg {:.1} instrs), {} squashes ({} violation, {} resource), {} mispredictions",
        r.committed_tasks,
        r.avg_task_len(),
        r.squashes,
        r.violation_squashes,
        r.resource_squashes,
        r.mispredictions
    );
    println!(
        "memory     {} loads, {} stores, {} fills, {} transfers, {} writebacks, {} snarfs",
        r.mem.loads,
        r.mem.stores,
        r.mem.next_level_fills,
        r.mem.cache_transfers,
        r.mem.writebacks,
        r.mem.snarfs
    );
    Ok(())
}

fn cmd_designs(o: &Options) -> Result<(), String> {
    let bench = lookup_bench(o.bench.as_deref().unwrap_or("gcc"))?;
    let wl = bench.workload(o.seed);
    println!(
        "design progression on {bench} ({} instructions):\n",
        o.budget
    );
    println!(
        "{:8} {:>6} {:>9} {:>8}",
        "design", "IPC", "missrate", "busutil"
    );
    for (name, cfg) in [
        ("base", SvcConfig::base(o.pus)),
        ("EC", SvcConfig::ec(o.pus)),
        ("ECS", SvcConfig::ecs(o.pus)),
        ("HR", SvcConfig::hr(o.pus)),
        ("RL", SvcConfig::rl(o.pus)),
        ("final", SvcConfig::final_design(o.pus)),
    ] {
        let mut engine = Engine::new(engine_config(o, Some(&wl)), SvcSystem::new(cfg));
        let report = engine.run(&wl as &dyn TaskSource);
        let stats = engine.memory().stats();
        println!(
            "{:8} {:6.2} {:9.4} {:8.3}",
            name,
            report.ipc(),
            stats.miss_ratio(),
            report.bus_utilization()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: svc-sim run|designs|list [flags] (see `cargo doc`)");
            return ExitCode::from(2);
        }
    };
    let result = match opts.command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&opts),
        _ => cmd_designs(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse(&argv("run")).unwrap();
        assert_eq!(o.command, "run");
        assert_eq!(o.memory, "svc");
        assert_eq!(o.kb, 8);
        assert_eq!(o.budget, 200_000);
    }

    #[test]
    fn parse_flags() {
        let o = parse(&argv(
            "run --bench mgrid --memory arb --hit 3 --kb 64 --budget 5000 --seed 9 --pus 8",
        ))
        .unwrap();
        assert_eq!(o.bench.as_deref(), Some("mgrid"));
        assert_eq!(o.memory, "arb");
        assert_eq!(o.hit, 3);
        assert_eq!(o.kb, 64);
        assert_eq!(o.budget, 5000);
        assert_eq!(o.seed, 9);
        assert_eq!(o.pus, 8);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --bench gcc --kernel reduction")).is_err());
        assert!(parse(&argv("run --memory weird")).is_err());
        assert!(parse(&argv("run --budget notanumber")).is_err());
        assert!(parse(&argv("run --budget")).is_err());
    }

    #[test]
    fn parse_json_flag() {
        assert!(!parse(&argv("run")).unwrap().json);
        assert!(parse(&argv("run --json --bench gcc")).unwrap().json);
    }

    #[test]
    fn parse_trace_flag() {
        let o = parse(&argv("run --trace foo.trace")).unwrap();
        assert_eq!(o.trace.as_deref(), Some("foo.trace"));
        assert!(parse(&argv("run --trace f --kernel reduction")).is_err());
    }

    #[test]
    fn lookups() {
        assert!(lookup_bench("gcc").is_ok());
        assert!(lookup_bench("nope").is_err());
        assert!(lookup_kernel("reduction", 1).is_ok());
        assert!(lookup_kernel("nope", 1).is_err());
    }
}
