//! `svc-check` — the explicit-state model checker's command line.
//!
//! Subcommands:
//!
//! * `explore [--design NAME ...] [--max-states N] [--expect-violation]
//!   [--write-counterexample FILE]` — exhaustively explore the bounded
//!   state space of one or more designs (default: all). Exits
//!   [`EXIT_INVARIANT`] on a property violation or a truncated run;
//!   `--expect-violation` inverts that (used by the mutation campaign).
//! * `replay FILE [--emit-test FILE] [--provenance NAME]` — replay a
//!   counterexample script; optionally render it as a standalone
//!   regression `#[test]`.
//! * `mutations [--emit-tests DIR]` — for every seeded mutation site,
//!   re-run the checker in a child process with `SVC_MUTATE=<site>` and
//!   verify the mutation is caught; the minimized counterexample must
//!   then replay cleanly against the unmutated implementation.
//! * `report` — run all designs and write `results/check.json`
//!   (`svc-check/v1`), the document the `regress` gate pins.
//!
//! Exit codes follow the repo convention: 0 success, 2 usage, 3 I/O,
//! 4 property violation / uncaught mutation.

use std::process::ExitCode;

use svc_bench::cli::CliError;
use svc_bench::report;
use svc_check::{
    design_for_mutation, explore_design, replay_design, DesignId, Limits, Script, ALL_DESIGNS,
};
use svc_types::Mutation;

const USAGE: &str = "usage: svc-check <explore|replay|mutations|report> [options]
  explore [--design NAME ...] [--max-states N] [--expect-violation] [--write-counterexample FILE]
  replay FILE [--emit-test FILE] [--provenance NAME]
  mutations [--emit-tests DIR]
  report";

fn parse_designs(args: &mut Vec<String>) -> Result<Vec<DesignId>, CliError> {
    let mut designs = Vec::new();
    while let Some(i) = args.iter().position(|a| a == "--design") {
        if i + 1 >= args.len() {
            return Err(CliError::Usage("--design needs a value".into()));
        }
        let name = args.remove(i + 1);
        args.remove(i);
        designs.push(
            DesignId::from_name(&name)
                .ok_or_else(|| CliError::Usage(format!("unknown design {name:?}")))?,
        );
    }
    if designs.is_empty() {
        designs.extend(ALL_DESIGNS);
    }
    Ok(designs)
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn reject_leftovers(args: &[String]) -> Result<(), CliError> {
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(format!(
            "unknown argument {extra:?}\n{USAGE}"
        )));
    }
    Ok(())
}

fn cmd_explore(mut args: Vec<String>) -> Result<(), CliError> {
    let designs = parse_designs(&mut args)?;
    let max_states = take_value(&mut args, "--max-states")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("bad --max-states {v:?}")))
        })
        .transpose()?;
    let expect_violation = take_flag(&mut args, "--expect-violation");
    let ce_path = take_value(&mut args, "--write-counterexample")?;
    reject_leftovers(&args)?;

    let mut limits = Limits::default();
    if let Some(n) = max_states {
        limits.max_states = n;
    }
    let mut bad = 0;
    for design in designs {
        let out = explore_design(design, &limits);
        println!(
            "{:10} states={} transitions={} max_depth={} truncated={} violation={}",
            design.name(),
            out.states,
            out.transitions,
            out.max_depth,
            out.truncated,
            out.violation.is_some(),
        );
        match &out.violation {
            Some(cx) => {
                println!("{}: {}", design.name(), cx.failure);
                print!("{}", cx.script.render());
                if let Some(path) = &ce_path {
                    std::fs::write(path, cx.script.render()).map_err(|e| CliError::io(path, e))?;
                    println!("counterexample written: {path}");
                }
                if !expect_violation {
                    bad += 1;
                }
            }
            None => {
                if out.truncated {
                    println!(
                        "{}: truncated at {} states — not an exhaustive result",
                        design.name(),
                        out.states
                    );
                    bad += 1;
                } else if expect_violation {
                    println!("{}: expected a violation, found none", design.name());
                    bad += 1;
                }
            }
        }
    }
    if bad > 0 {
        return Err(CliError::Invariant(format!("{bad} design(s) failed")));
    }
    Ok(())
}

fn cmd_replay(mut args: Vec<String>) -> Result<(), CliError> {
    let emit_test = take_value(&mut args, "--emit-test")?;
    let provenance = take_value(&mut args, "--provenance")?;
    if args.len() != 1 {
        return Err(CliError::Usage(format!(
            "replay takes one script file\n{USAGE}"
        )));
    }
    let path = args.remove(0);
    let text = std::fs::read_to_string(&path).map_err(|e| CliError::io(&path, e))?;
    let script = Script::parse(&text).map_err(CliError::Usage)?;
    let outcome = replay_design(script.design, &script.actions).map_err(CliError::Usage)?;
    match &outcome.failure {
        Some(failure) => println!(
            "replay: {} failed at action {} of {}: {}",
            script.design.name(),
            outcome.executed,
            script.actions.len(),
            failure
        ),
        None => println!(
            "replay: {} clean ({} actions)",
            script.design.name(),
            outcome.executed
        ),
    }
    if let Some(test_path) = emit_test {
        let provenance = provenance.unwrap_or_else(|| "manual".to_string());
        let src = svc_check::emit::emit_test(&script, &provenance);
        std::fs::write(&test_path, src).map_err(|e| CliError::io(&test_path, e))?;
        println!("test written: {test_path}");
    }
    if outcome.failure.is_some() {
        return Err(CliError::Invariant("replay failed".into()));
    }
    Ok(())
}

fn cmd_mutations(mut args: Vec<String>) -> Result<(), CliError> {
    let emit_dir = take_value(&mut args, "--emit-tests")?;
    reject_leftovers(&args)?;
    if Mutation::active().is_some() {
        return Err(CliError::Usage(
            "run `svc-check mutations` without SVC_MUTATE set; it spawns mutated children itself"
                .into(),
        ));
    }
    let exe = std::env::current_exe().map_err(|e| CliError::io("current_exe", e))?;
    let mut uncaught = Vec::new();
    for site in Mutation::ALL {
        let design = design_for_mutation(site);
        let ce_path = std::env::temp_dir().join(format!(
            "svc-check-ce-{}-{}.trace",
            std::process::id(),
            site.key()
        ));
        let status = std::process::Command::new(&exe)
            .args([
                "explore",
                "--design",
                design.name(),
                "--expect-violation",
                "--write-counterexample",
            ])
            .arg(&ce_path)
            .env("SVC_MUTATE", site.key())
            .status()
            .map_err(|e| CliError::io("spawning mutated child", e))?;
        if !status.success() {
            println!("UNCAUGHT {} (design {})", site.key(), design.name());
            uncaught.push(site.key());
            continue;
        }
        // The minimized counterexample must replay cleanly unmutated:
        // that is exactly the regression test it becomes.
        let text =
            std::fs::read_to_string(&ce_path).map_err(|e| CliError::io(ce_path.display(), e))?;
        let script = Script::parse(&text).map_err(CliError::Usage)?;
        let clean = replay_design(script.design, &script.actions).map_err(CliError::Usage)?;
        if let Some(failure) = clean.failure {
            return Err(CliError::Invariant(format!(
                "{}: counterexample also fails unmutated ({failure}) — real bug, not a kill",
                site.key()
            )));
        }
        println!(
            "KILLED {} (design {}, {} actions)",
            site.key(),
            design.name(),
            script.actions.len()
        );
        if let Some(dir) = &emit_dir {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir.display(), e))?;
            let path = dir.join(format!("{}.rs", site.key().replace('-', "_")));
            let src = svc_check::emit::emit_test(&script, site.key());
            std::fs::write(&path, src).map_err(|e| CliError::io(path.display(), e))?;
            println!("test written: {}", path.display());
        }
        let _ = std::fs::remove_file(&ce_path);
    }
    if !uncaught.is_empty() {
        return Err(CliError::Invariant(format!(
            "{} mutation site(s) not caught: {}",
            uncaught.len(),
            uncaught.join(", ")
        )));
    }
    println!("mutations: all {} sites killed", Mutation::ALL.len());
    Ok(())
}

fn cmd_report(args: Vec<String>) -> Result<(), CliError> {
    reject_leftovers(&args)?;
    let doc = svc_bench::checkgate::fresh_check_doc().map_err(CliError::Invariant)?;
    let path = report::write_experiment("check", &doc)
        .map_err(|e| CliError::io("results/check.json", e))?;
    println!("check document written: {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(svc_bench::cli::EXIT_USAGE);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "explore" => cmd_explore(args),
        "replay" => cmd_replay(args),
        "mutations" => cmd_mutations(args),
        "report" => cmd_report(args),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
