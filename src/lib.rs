//! # svc-repro — a reproduction of the Speculative Versioning Cache
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *"Speculative Versioning Cache"* (Gopal, Vijaykumar, Smith, Sohi; HPCA
//! 1998). It re-exports the public API of every subsystem so examples and
//! downstream users need a single dependency:
//!
//! * [`svc`] — the SVC itself (private caches + Version Control Logic),
//!   its design progression Base → EC → ECS → HR → RL → Final, the
//!   [`svc::IdealMemory`] oracle and the [`svc::conformance`] harness;
//! * [`arb`] — the Address Resolution Buffer baseline;
//! * [`lsq`] — the centralized load/store-queue baseline of §1;
//! * [`coherence`] — the non-speculative MRSW snooping
//!   protocol the SVC builds on;
//! * [`multiscalar`] — the hierarchical task execution
//!   engine;
//! * [`workloads`] — SPEC95-like synthetic workload models
//!   and kernels;
//! * [`bench`](mod@bench) — the experiment harness regenerating every
//!   table and figure of the paper;
//! * [`check`] — the exhaustive explicit-state model checker driving
//!   the real implementations through every bounded interleaving
//!   (see the `svc-check` binary);
//! * [`analyze`] — offline trace/profile analytics: squash-cascade
//!   attribution, version lifetimes, bus-contention heatmaps and
//!   cross-run regression forensics (see the `svc-analyze` binary);
//! * [`types`], [`mem`], [`sim`] — shared
//!   vocabulary, the memory substrate, and simulation utilities.
//!
//! See `README.md` for a tour, `DESIGN.md` for the paper-to-code map, and
//! `EXPERIMENTS.md` for paper-vs-measured results. Runnable examples live
//! in `examples/`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example spec95
//! cargo run --release --example design_progression
//! cargo run --release --example violation_replay
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use svc;
pub use svc_analyze as analyze;
pub use svc_arb as arb;
pub use svc_bench as bench;
pub use svc_check as check;
pub use svc_coherence as coherence;
pub use svc_lsq as lsq;
pub use svc_mem as mem;
pub use svc_multiscalar as multiscalar;
pub use svc_sim as sim;
pub use svc_types as types;
pub use svc_workloads as workloads;
