//! Property-based checks of [`svc_sim::stats::Histogram`]: the bucket
//! bookkeeping that backs the Prometheus `/metrics` exposition must
//! conserve samples exactly and report monotone quantiles, for any
//! geometry and any sample stream.

use proptest::prelude::*;
use svc_sim::rng::SplitMix64;
use svc_sim::stats::Histogram;

/// Records `n` samples from a seeded stream bounded to `span`.
fn filled(width: u64, buckets: usize, seed: u64, n: usize, span: u64) -> Histogram {
    let mut h = Histogram::new(width, buckets);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..n {
        h.record(rng.next_u64() % span.max(1));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Σ bucket counts + overflow == number of recorded samples: no
    /// sample is ever lost or double-counted, whatever the geometry.
    #[test]
    fn bucket_counts_conserve_samples(
        width in 1u64..512,
        buckets in 1usize..48,
        seed in 0u64..1_000_000,
        n in 0usize..400,
        span in 1u64..100_000,
    ) {
        let h = filled(width, buckets, seed, n, span);
        let in_buckets: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(in_buckets + h.overflow(), n as u64);
        prop_assert_eq!(h.total(), n as u64);
        // The cumulative view agrees: its last entry covers everything
        // below the overflow region.
        let cum = h.cumulative_counts();
        prop_assert_eq!(*cum.last().unwrap() + h.overflow(), n as u64);
        // And it is non-decreasing, as `le`-style cumulative counts
        // must be.
        for w in cum.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Quantiles are monotone in q: a higher quantile never reports a
    /// smaller upper bound.
    #[test]
    fn quantiles_are_monotone(
        width in 1u64..256,
        buckets in 1usize..32,
        seed in 0u64..1_000_000,
        n in 1usize..300,
        span in 1u64..50_000,
    ) {
        let h = filled(width, buckets, seed, n, span);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev: Option<u64> = None;
        for &q in &qs {
            // With n >= 1 every quantile is defined.
            let v = h.quantile(q);
            prop_assert!(v.is_some(), "quantile({}) on non-empty histogram", q);
            if let (Some(p), Some(v)) = (prev, v) {
                prop_assert!(p <= v, "quantile must be monotone: q={} gave {} < {}", q, v, p);
            }
            prev = v;
        }
    }

    /// Bucket boundaries are strictly increasing multiples of the
    /// width, and every cumulative count at bound `i` counts exactly
    /// the samples `< bound(i)` recorded below the overflow region.
    #[test]
    fn bounds_and_cumulative_agree(
        width in 1u64..128,
        buckets in 1usize..24,
        seed in 0u64..1_000_000,
        n in 0usize..200,
    ) {
        let span = width.saturating_mul(buckets as u64 + 4).max(1);
        let h = filled(width, buckets, seed, n, span);
        // Replay the same stream to count expectations independently.
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<u64> = (0..n).map(|_| rng.next_u64() % span).collect();
        for (i, &c) in h.cumulative_counts().iter().enumerate() {
            let bound = h.bucket_bound(i);
            prop_assert_eq!(bound, width * (i as u64 + 1));
            let expected = samples.iter().filter(|&&s| s < bound).count() as u64;
            prop_assert_eq!(c, expected, "cumulative at bound {}", bound);
        }
    }

    /// Merging two histograms of the same geometry adds every counter:
    /// totals, per-bucket counts, overflow and sums.
    #[test]
    fn merge_adds_everything(
        width in 1u64..128,
        buckets in 1usize..24,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        n_a in 0usize..200,
        n_b in 0usize..200,
    ) {
        let span = width.saturating_mul(buckets as u64 + 4).max(1);
        let a = filled(width, buckets, seed_a, n_a, span);
        let b = filled(width, buckets, seed_b, n_b, span);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total(), a.total() + b.total());
        prop_assert_eq!(merged.overflow(), a.overflow() + b.overflow());
        prop_assert_eq!(merged.sum(), a.sum() + b.sum());
        for i in 0..merged.num_buckets() {
            prop_assert_eq!(merged.bucket(i), a.bucket(i) + b.bucket(i));
        }
    }
}
