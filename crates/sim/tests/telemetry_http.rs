//! End-to-end exercise of the telemetry HTTP server over real sockets:
//! routing, content types, live snapshot updates, malformed requests,
//! and clean shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;

use svc_sim::telemetry::{shared_snapshot, TelemetryServer};

/// Sends one raw HTTP request and returns the full response text.
fn request(addr: &std::net::SocketAddr, req: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(req.as_bytes()).expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

fn get(addr: &std::net::SocketAddr, path: &str) -> String {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn serves_all_endpoints_with_correct_types() {
    let shared = shared_snapshot();
    {
        let mut snap = shared.lock().unwrap();
        snap.metrics_text = "# TYPE soak_ticks counter\nsoak_ticks 3\n".to_string();
        snap.profile_json = "{\n  \"schema\": \"svc-profile/v1\"\n}".to_string();
        snap.healthz_json = "{\n  \"status\": \"ok\"\n}".to_string();
    }
    let server = TelemetryServer::bind("127.0.0.1:0", shared.clone()).expect("bind");
    let addr = server.local_addr();

    let metrics = get(&addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "Prometheus exposition content type: {metrics}"
    );
    assert!(metrics.contains("soak_ticks 3"));

    let profile = get(&addr, "/profile");
    assert!(
        profile.contains("Content-Type: application/json"),
        "{profile}"
    );
    assert!(profile.contains("svc-profile/v1"));

    let healthz = get(&addr, "/healthz");
    assert!(
        healthz.contains("Content-Type: application/json"),
        "{healthz}"
    );
    assert!(healthz.contains("\"status\": \"ok\""));

    server.shutdown();
}

#[test]
fn reflects_snapshot_updates_live() {
    let shared = shared_snapshot();
    let server = TelemetryServer::bind("127.0.0.1:0", shared.clone()).expect("bind");
    let addr = server.local_addr();

    let before = get(&addr, "/healthz");
    assert!(before.contains("HTTP/1.1 200 OK"), "{before}");

    shared.lock().unwrap().healthz_json = "{\"status\": \"degraded\"}".to_string();
    let after = get(&addr, "/healthz");
    assert!(after.contains("degraded"), "update visible: {after}");

    server.shutdown();
}

#[test]
fn rejects_unknown_paths_and_methods() {
    let shared = shared_snapshot();
    let server = TelemetryServer::bind("127.0.0.1:0", shared).expect("bind");
    let addr = server.local_addr();

    let missing = get(&addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    let post = request(
        &addr,
        "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(post.starts_with("HTTP/1.1 405"), "{post}");

    server.shutdown();
}

#[test]
fn content_length_matches_body() {
    let shared = shared_snapshot();
    shared.lock().unwrap().metrics_text = "abc 1\n".to_string();
    let server = TelemetryServer::bind("127.0.0.1:0", shared).expect("bind");
    let addr = server.local_addr();

    let resp = get(&addr, "/metrics");
    let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric length");
    assert_eq!(len, body.len(), "advertised length matches body bytes");

    server.shutdown();
}
