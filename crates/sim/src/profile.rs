//! Cycle-accounting profiler: per-PU stall attribution, wasted-work
//! metering, and interval time-series.
//!
//! The tracer (PR 2) records *what happened*; this module records *where
//! the cycles went*. Every PU-cycle of a run is attributed to exactly one
//! [`Bucket`], so the per-PU bucket vectors always satisfy the
//! conservation invariant
//!
//! ```text
//! sum(buckets over all PUs) == cycles × num_pus
//! ```
//!
//! which is what lets an IPC gap between two designs be decomposed into
//! named causes (bus-arbitration wait vs. memory latency vs. squash
//! re-execution, the analysis of the paper's Figures 19/20).
//!
//! # Accounting model
//!
//! Attribution is lazy and window-based, which is what makes the
//! invariant hold *by construction*:
//!
//! * Each PU has a **cursor**: every cycle below it has been attributed.
//!   The cursor only ever advances to points in the simulation's past, so
//!   it can never overshoot the end of the run.
//! * Known future blocking (a load's memory window, commit serialization,
//!   post-squash blackout, dispatch overhead) is queued as a **window**
//!   `[start, end)` carrying an [`AccessProfile`] — the per-component
//!   decomposition the memory system reported for that access — plus a
//!   fill bucket for any remainder. Windows drain as the cursor sweeps
//!   over them, clipped to however far the simulation actually got.
//! * Plain execution cycles accumulate as **pending** and are resolved by
//!   task fate: [`Bucket::Commit`] when the task commits,
//!   [`Bucket::WastedExec`] when it is squashed (or still in flight when
//!   the run's budget expires).
//!
//! Like [`Tracer`](crate::trace::Tracer) and
//! [`Faults`](crate::fault::Faults), the handle is a cheap `Rc` clone
//! shared by the engine and the memory system, and a disabled profiler
//! costs a single branch per hook — payloads are never built when off.
//!
//! # Example
//!
//! ```
//! use svc_sim::profile::{Bucket, Profiler};
//! use svc_types::{Cycle, PuId};
//!
//! let p = Profiler::new(1, 0);
//! p.on_dispatch(PuId(0), Cycle(0), Cycle(1)); // 1 cycle of sequencer overhead
//! p.on_commit(PuId(0), Cycle(5), Cycle(6));   // exec [1,5), commit [5,6)
//! p.finish(Cycle(6), &[false]);
//! let report = p.report().unwrap();
//! assert!(report.conservation_ok());
//! assert_eq!(report.totals()[Bucket::Commit as usize], 5);
//! assert_eq!(report.totals()[Bucket::Idle as usize], 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use svc_types::{Addr, Cycle, MemGauges, PuId};

/// Number of attribution buckets.
pub const NUM_BUCKETS: usize = 8;

/// Default sampling epoch (cycles between time-series rows).
pub const DEFAULT_EPOCH: u64 = 8_192;

/// How many distinct wasted-work addresses a [`ProfileReport`] keeps
/// (the top-N by squashed-access count).
pub const WASTED_TOP_N: usize = 32;

/// Where a PU-cycle went. Every simulated cycle of every PU lands in
/// exactly one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Useful work: executing and waiting on behalf of a task that went
    /// on to commit, plus the commit operation itself.
    Commit = 0,
    /// Executing (or waiting) on behalf of a task that was later
    /// squashed, or still speculative when the run's budget expired.
    WastedExec = 1,
    /// Waiting for the bus arbiter: request issued, grant pending.
    BusWait = 2,
    /// Occupying the bus (the granted transaction's transfer time).
    BusTransfer = 3,
    /// Waiting on memory beyond the bus: next-level fill latency,
    /// eviction writebacks, VCL lookups, jitter.
    MemLatency = 4,
    /// Structural stalls: MSHR-full waits and replacement-stall retries.
    MshrStall = 5,
    /// No task assigned, plus dispatch/sequencer overhead.
    Idle = 6,
    /// Post-squash blackout: the PU is torn down but still blocked on
    /// the latency of the access it was squashed under.
    SquashRecovery = 7,
}

impl Bucket {
    /// All buckets, in stable serialization order.
    pub const EVERY: [Bucket; NUM_BUCKETS] = [
        Bucket::Commit,
        Bucket::WastedExec,
        Bucket::BusWait,
        Bucket::BusTransfer,
        Bucket::MemLatency,
        Bucket::MshrStall,
        Bucket::Idle,
        Bucket::SquashRecovery,
    ];

    /// The stable snake_case name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Commit => "commit",
            Bucket::WastedExec => "wasted_exec",
            Bucket::BusWait => "bus_wait",
            Bucket::BusTransfer => "bus_transfer",
            Bucket::MemLatency => "mem_latency",
            Bucket::MshrStall => "mshr_stall",
            Bucket::Idle => "idle",
            Bucket::SquashRecovery => "squash_recovery",
        }
    }
}

/// Per-PU bucket totals, indexed by `Bucket as usize`.
pub type BucketSet = [u64; NUM_BUCKETS];

/// The component decomposition of one memory access, composed by the
/// memory system at miss time and consumed (in declaration order) when
/// the access's window drains. Components that exceed the window are
/// clipped; window cycles beyond the components go to the window's fill
/// bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessProfile {
    /// Cycles stalled for a free MSHR (or equivalent structural slot).
    pub mshr_stall: u64,
    /// Cycles between the bus request and its grant.
    pub bus_wait: u64,
    /// Cycles the granted transaction occupied the bus.
    pub bus_transfer: u64,
    /// Cycles of latency beyond the bus (next-level fill, jitter).
    pub mem_latency: u64,
}

impl AccessProfile {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.mshr_stall + self.bus_wait + self.bus_transfer + self.mem_latency
    }

    /// Consumes up to `budget` cycles of components in declaration
    /// order, returning how much each bucket received.
    fn consume(&mut self, budget: u64) -> [(Bucket, u64); 4] {
        let mut left = budget;
        let mut take = |c: &mut u64| {
            let n = (*c).min(left);
            *c -= n;
            left -= n;
            n
        };
        [
            (Bucket::MshrStall, take(&mut self.mshr_stall)),
            (Bucket::BusWait, take(&mut self.bus_wait)),
            (Bucket::BusTransfer, take(&mut self.bus_transfer)),
            (Bucket::MemLatency, take(&mut self.mem_latency)),
        ]
    }
}

/// One row of the interval time series: raw cumulative counters at a
/// sample point. Derived rates (IPC, bus utilization, squash rate) are
/// computed from consecutive rows at render time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed_instrs: u64,
    /// Task squashes so far.
    pub squashes: u64,
    /// Cumulative bus-occupancy cycles so far.
    pub bus_busy_cycles: u64,
    /// Fills outstanding across all MSHR files at the sample point.
    pub outstanding_misses: u64,
    /// Live speculative versions (VOL entries / speculative lines).
    pub live_versions: u64,
}

/// The finished profile of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Number of PUs profiled.
    pub num_pus: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Sampling epoch in cycles (0 = sampling was off).
    pub epoch: u64,
    /// Per-PU bucket totals.
    pub per_pu: Vec<BucketSet>,
    /// The interval time series, in cycle order.
    pub samples: Vec<Sample>,
    /// Top wasted-work addresses `(word address, squashed accesses)`,
    /// most-squashed first.
    pub wasted_addrs: Vec<(u64, u64)>,
    /// Interval rows evicted by the rolling sample window (0 when the
    /// window was never exceeded, keeping artifacts byte-identical to
    /// unbounded runs).
    pub intervals_dropped: u64,
}

impl ProfileReport {
    /// Bucket totals summed over all PUs.
    pub fn totals(&self) -> BucketSet {
        let mut t = [0u64; NUM_BUCKETS];
        for pu in &self.per_pu {
            for (slot, v) in t.iter_mut().zip(pu) {
                *slot += v;
            }
        }
        t
    }

    /// Total attributed PU-cycles (sum of every bucket of every PU).
    pub fn attributed(&self) -> u64 {
        self.totals().iter().sum()
    }

    /// What the attribution must sum to: `cycles × num_pus`.
    pub fn expected(&self) -> u64 {
        self.cycles * self.num_pus as u64
    }

    /// The conservation invariant: every PU-cycle attributed exactly
    /// once.
    pub fn conservation_ok(&self) -> bool {
        self.attributed() == self.expected()
    }

    /// One bucket's total over all PUs.
    pub fn bucket_total(&self, bucket: Bucket) -> u64 {
        self.totals()[bucket as usize]
    }

    /// The sampling epoch `cycle` falls into (`0` when sampling was off)
    /// — the join key offline analyses use to bin trace events against
    /// the interval time series.
    pub fn epoch_of(&self, cycle: u64) -> u64 {
        cycle.checked_div(self.epoch).unwrap_or(0)
    }
}

/// A queued span of known future blocking on one PU.
#[derive(Debug, Clone, Copy)]
struct Window {
    start: u64,
    end: u64,
    profile: AccessProfile,
    fill: Bucket,
}

/// Where the gap cycles of an [`PuAcct::advance`] go.
#[derive(Debug, Clone, Copy)]
enum Gap {
    /// Straight into a bucket.
    Into(Bucket),
    /// Into `pending`, resolved later by task fate.
    Pending,
}

#[derive(Debug, Clone, Default)]
struct PuAcct {
    /// Every cycle below this is attributed.
    cursor: u64,
    /// Execution cycles awaiting their task's fate.
    pending: u64,
    /// Queued windows, non-overlapping, ascending.
    windows: Vec<Window>,
    buckets: BucketSet,
}

impl PuAcct {
    /// Attributes `[cursor, to)`: queued windows drain into their
    /// components (clipped to `to`), everything between and after them
    /// goes to `gap`.
    fn advance(&mut self, to: u64, gap: Gap) {
        if to <= self.cursor {
            return;
        }
        let mut t = self.cursor;
        let mut gap_cycles = 0u64;
        while let Some(w) = self.windows.first_mut() {
            if w.start >= to {
                break;
            }
            if w.start > t {
                gap_cycles += w.start - t;
                t = w.start;
            }
            let clip = to.min(w.end);
            let mut span = clip - t;
            for (bucket, n) in w.profile.consume(span) {
                self.buckets[bucket as usize] += n;
                span -= n;
            }
            self.buckets[w.fill as usize] += span;
            t = clip;
            if clip == w.end {
                self.windows.remove(0);
            } else {
                w.start = clip;
                break;
            }
        }
        if t < to {
            gap_cycles += to - t;
        }
        match gap {
            Gap::Into(b) => self.buckets[b as usize] += gap_cycles,
            Gap::Pending => self.pending += gap_cycles,
        }
        self.cursor = to;
    }

    /// Queues a window, clamped to start after the cursor and any
    /// already-queued window. Empty windows are dropped.
    fn push_window(&mut self, start: u64, end: u64, profile: AccessProfile, fill: Bucket) {
        let floor = self
            .windows
            .last()
            .map_or(self.cursor, |w| w.end.max(self.cursor));
        let start = start.max(floor);
        if end <= start {
            return;
        }
        self.windows.push(Window {
            start,
            end,
            profile,
            fill,
        });
    }

    /// Resolves all pending execution cycles into `bucket`.
    fn flush_pending(&mut self, bucket: Bucket) {
        self.buckets[bucket as usize] += self.pending;
        self.pending = 0;
    }
}

#[derive(Debug)]
struct Core {
    pus: Vec<PuAcct>,
    /// Last access decomposition the memory system reported, per PU.
    slot: Vec<AccessProfile>,
    /// A store's decomposition, held until (if ever) its port pressure
    /// blocks a later access.
    port_debt: Vec<AccessProfile>,
    wasted: BTreeMap<u64, u64>,
    epoch: u64,
    next_sample: u64,
    samples: Vec<Sample>,
    /// Rolling retention cap on `samples` (0 = unbounded).
    window: usize,
    /// Rows evicted by the rolling window.
    dropped: u64,
    finished: Option<u64>,
}

/// A cheap-to-clone profiling handle. All clones share one accounting
/// core; a default-constructed profiler is disabled and costs one branch
/// per hook.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    core: Option<Rc<RefCell<Core>>>,
}

/// Profilers compare by enabled-ness only (like [`Tracer`]), so
/// simulator components keep their derived `PartialEq` implementations.
///
/// [`Tracer`]: crate::trace::Tracer
impl PartialEq for Profiler {
    fn eq(&self, other: &Profiler) -> bool {
        self.core.is_some() == other.core.is_some()
    }
}

impl Eq for Profiler {}

impl Profiler {
    /// A disabled profiler (same as `Profiler::default()`).
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// An enabled profiler over `num_pus` PUs, sampling the time series
    /// every `epoch` cycles (`0` disables sampling but keeps bucket
    /// accounting).
    pub fn new(num_pus: usize, epoch: u64) -> Profiler {
        Profiler {
            core: Some(Rc::new(RefCell::new(Core {
                pus: vec![PuAcct::default(); num_pus],
                slot: vec![AccessProfile::default(); num_pus],
                port_debt: vec![AccessProfile::default(); num_pus],
                wasted: BTreeMap::new(),
                epoch,
                next_sample: epoch,
                samples: Vec::new(),
                window: 0,
                dropped: 0,
                finished: None,
            }))),
        }
    }

    /// Builds a profiler from the environment: any non-empty
    /// `SVC_PROFILE` other than `0` enables it, `SVC_PROFILE_EPOCH`
    /// overrides the sampling epoch (default [`DEFAULT_EPOCH`]; `0`
    /// disables sampling), and `SVC_PROFILE_WINDOW` caps interval
    /// retention (default unbounded).
    pub fn from_env(num_pus: usize) -> Profiler {
        let on = std::env::var("SVC_PROFILE")
            .ok()
            .is_some_and(|v| !v.is_empty() && v != "0");
        if !on {
            return Profiler::disabled();
        }
        let epoch = std::env::var("SVC_PROFILE_EPOCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_EPOCH);
        let p = Profiler::new(num_pus, epoch);
        if let Some(window) = std::env::var("SVC_PROFILE_WINDOW")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            p.set_window(window);
        }
        p
    }

    /// Caps interval-sample retention at the `window` most recent rows
    /// (`0` = unbounded, the default). Older rows are evicted as new
    /// samples arrive and counted in
    /// [`intervals_dropped`](Profiler::intervals_dropped) — long soak
    /// runs stay bounded-memory while short runs remain byte-identical
    /// to the unbounded behaviour.
    pub fn set_window(&self, window: usize) {
        if let Some(core) = &self.core {
            core.borrow_mut().window = window;
        }
    }

    /// Interval rows evicted by the rolling window so far.
    pub fn intervals_dropped(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.borrow().dropped)
    }

    /// Whether the profiler is recording — the single branch on the fast
    /// path.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.core.is_some()
    }

    fn with_pu(&self, pu: PuId, f: impl FnOnce(&mut Core, usize)) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            let i = pu.0;
            if i < core.pus.len() {
                f(&mut core, i);
            }
        }
    }

    // -- memory-system side -------------------------------------------

    /// Reports the component decomposition of the access `pu` just made.
    /// Called by the memory system inside `load`/`store`; the engine
    /// pairs it with the access's latency window.
    #[inline]
    pub fn note_access(&self, pu: PuId, profile: AccessProfile) {
        self.with_pu(pu, |core, i| core.slot[i] = profile);
    }

    // -- engine side --------------------------------------------------

    /// A task was dispatched on `pu` at `now`; execution starts at
    /// `exec_ready`. Attributes the gap before `now` (and the dispatch
    /// overhead window) to [`Bucket::Idle`].
    pub fn on_dispatch(&self, pu: PuId, now: Cycle, exec_ready: Cycle) {
        self.with_pu(pu, |core, i| {
            core.pus[i].advance(now.0, Gap::Into(Bucket::Idle));
            core.pus[i].push_window(now.0, exec_ready.0, AccessProfile::default(), Bucket::Idle);
        });
    }

    /// A load issued at `now` whose value is visible at `ready`: queues
    /// the latency window with the decomposition the memory system
    /// reported via [`note_access`](Profiler::note_access).
    pub fn on_load(&self, pu: PuId, now: Cycle, ready: Cycle) {
        self.with_pu(pu, |core, i| {
            let profile = std::mem::take(&mut core.slot[i]);
            core.pus[i].push_window(now.0 + 1, ready.0, profile, Bucket::MemLatency);
        });
    }

    /// A store issued: its decomposition becomes port debt, charged only
    /// if the port pressure later blocks the pipeline.
    pub fn on_store(&self, pu: PuId) {
        self.with_pu(pu, |core, i| {
            core.port_debt[i] = std::mem::take(&mut core.slot[i]);
        });
    }

    /// The memory port blocked the next access at `now` until `until`:
    /// the wait is the previous store's latency still draining.
    pub fn on_port_block(&self, pu: PuId, now: Cycle, until: Cycle) {
        self.with_pu(pu, |core, i| {
            let debt = std::mem::take(&mut core.port_debt[i]);
            core.pus[i].push_window(now.0, until.0, debt, Bucket::BusTransfer);
        });
    }

    /// A structural (replacement) stall at `now`: the PU retries next
    /// cycle.
    pub fn on_stall(&self, pu: PuId, now: Cycle) {
        self.with_pu(pu, |core, i| {
            core.pus[i].push_window(
                now.0,
                now.0 + 1,
                AccessProfile::default(),
                Bucket::MshrStall,
            );
        });
    }

    /// `pu`'s task committed at `now`; the commit operation finishes at
    /// `done`. Pending execution resolves to [`Bucket::Commit`].
    pub fn on_commit(&self, pu: PuId, now: Cycle, done: Cycle) {
        self.with_pu(pu, |core, i| {
            core.pus[i].advance(now.0, Gap::Pending);
            core.pus[i].flush_pending(Bucket::Commit);
            core.pus[i].push_window(now.0, done.0, AccessProfile::default(), Bucket::Commit);
        });
    }

    /// `pu`'s task was squashed at `now` and the PU stays blocked until
    /// `until` (its retained ready-at). Pending execution resolves to
    /// [`Bucket::WastedExec`]; queued windows of the dead access are
    /// discarded and the blackout becomes [`Bucket::SquashRecovery`].
    pub fn on_squash(&self, pu: PuId, now: Cycle, until: Cycle) {
        self.with_pu(pu, |core, i| {
            core.pus[i].advance(now.0, Gap::Pending);
            core.pus[i].flush_pending(Bucket::WastedExec);
            core.pus[i].windows.clear();
            core.pus[i].push_window(
                now.0,
                until.0,
                AccessProfile::default(),
                Bucket::SquashRecovery,
            );
            core.slot[i] = AccessProfile::default();
            core.port_debt[i] = AccessProfile::default();
        });
    }

    /// Records the memory addresses a squashed task had touched (the
    /// wasted-work histogram behind `svc-sim profile`'s top-N table).
    pub fn note_wasted(&self, addrs: impl IntoIterator<Item = Addr>) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            for a in addrs {
                *core.wasted.entry(a.0).or_insert(0) += 1;
            }
        }
    }

    // -- sampling -----------------------------------------------------

    /// Whether the time series is due a row at `now`.
    #[inline]
    pub fn sample_due(&self, now: Cycle) -> bool {
        self.core.as_ref().is_some_and(|c| {
            let c = c.borrow();
            c.epoch > 0 && now.0 >= c.next_sample
        })
    }

    /// The cycle of the next scheduled time-series row, if sampling is
    /// on. The engine's idle-cycle fast-forward clamps its jumps here so
    /// a fast-forwarded run samples at exactly the cycles a cycle-by-
    /// cycle run would.
    #[inline]
    pub fn next_sample_at(&self) -> Option<u64> {
        self.core.as_ref().and_then(|c| {
            let c = c.borrow();
            (c.epoch > 0).then_some(c.next_sample)
        })
    }

    /// Records a time-series row at `now` and schedules the next epoch.
    pub fn sample(
        &self,
        now: Cycle,
        committed_instrs: u64,
        squashes: u64,
        bus_busy_cycles: u64,
        gauges: MemGauges,
    ) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            core.samples.push(Sample {
                cycle: now.0,
                committed_instrs,
                squashes,
                bus_busy_cycles,
                outstanding_misses: gauges.outstanding_misses,
                live_versions: gauges.live_versions,
            });
            core.next_sample = now.0 + core.epoch;
            if core.window > 0 && core.samples.len() > core.window {
                let excess = core.samples.len() - core.window;
                core.samples.drain(..excess);
                core.dropped += excess as u64;
            }
        }
    }

    /// Records the end-of-run row (skipped if one already covers `now`
    /// or sampling is off).
    pub fn final_sample(
        &self,
        now: Cycle,
        committed_instrs: u64,
        squashes: u64,
        bus_busy_cycles: u64,
        gauges: MemGauges,
    ) {
        if let Some(core) = &self.core {
            let due = {
                let c = core.borrow();
                c.epoch > 0 && c.samples.last().is_none_or(|s| s.cycle < now.0)
            };
            if due {
                self.sample(now, committed_instrs, squashes, bus_busy_cycles, gauges);
            }
        }
    }

    // -- finalization -------------------------------------------------

    /// Closes the books at the end of a run: every PU's cursor is driven
    /// to `now` (windows clipped), and leftover pending execution
    /// resolves by `tasked[pu]` — [`Bucket::WastedExec`] for tasks still
    /// in flight when the run ended, [`Bucket::Idle`] otherwise.
    pub fn finish(&self, now: Cycle, tasked: &[bool]) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            for (i, acct) in core.pus.iter_mut().enumerate() {
                if tasked.get(i).copied().unwrap_or(false) {
                    acct.advance(now.0, Gap::Pending);
                    acct.flush_pending(Bucket::WastedExec);
                } else {
                    acct.advance(now.0, Gap::Into(Bucket::Idle));
                    acct.flush_pending(Bucket::Idle);
                }
                acct.windows.clear();
            }
            core.finished = Some(now.0);
        }
    }

    /// The finished profile, once [`finish`](Profiler::finish) has run;
    /// `None` for a disabled or still-running profiler.
    pub fn report(&self) -> Option<ProfileReport> {
        let core = self.core.as_ref()?;
        let core = core.borrow();
        let cycles = core.finished?;
        let mut wasted: Vec<(u64, u64)> = core.wasted.iter().map(|(&a, &n)| (a, n)).collect();
        wasted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        wasted.truncate(WASTED_TOP_N);
        Some(ProfileReport {
            num_pus: core.pus.len(),
            cycles,
            epoch: core.epoch,
            per_pu: core.pus.iter().map(|p| p.buckets).collect(),
            samples: core.samples.clone(),
            wasted_addrs: wasted,
            intervals_dropped: core.dropped,
        })
    }
}

// -- checkpointing ----------------------------------------------------

impl svc_types::Checkpointable for Bucket {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_u8(*self as u8);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let tag = r.take_u8()?;
        *self = *Bucket::EVERY
            .get(tag as usize)
            .ok_or_else(|| svc_types::CkptError::corrupt(format!("unknown bucket tag {tag}")))?;
        Ok(())
    }
}

impl svc_types::Checkpointable for AccessProfile {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.mshr_stall.save_state(w);
        self.bus_wait.save_state(w);
        self.bus_transfer.save_state(w);
        self.mem_latency.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.mshr_stall.restore_state(r)?;
        self.bus_wait.restore_state(r)?;
        self.bus_transfer.restore_state(r)?;
        self.mem_latency.restore_state(r)
    }
}

impl svc_types::Checkpointable for Sample {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.cycle.save_state(w);
        self.committed_instrs.save_state(w);
        self.squashes.save_state(w);
        self.bus_busy_cycles.save_state(w);
        self.outstanding_misses.save_state(w);
        self.live_versions.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.cycle.restore_state(r)?;
        self.committed_instrs.restore_state(r)?;
        self.squashes.restore_state(r)?;
        self.bus_busy_cycles.restore_state(r)?;
        self.outstanding_misses.restore_state(r)?;
        self.live_versions.restore_state(r)
    }
}

impl svc_types::Checkpointable for ProfileReport {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.num_pus.save_state(w);
        self.cycles.save_state(w);
        self.epoch.save_state(w);
        self.per_pu.save_state(w);
        self.samples.save_state(w);
        self.wasted_addrs.save_state(w);
        self.intervals_dropped.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.num_pus.restore_state(r)?;
        self.cycles.restore_state(r)?;
        self.epoch.restore_state(r)?;
        self.per_pu.restore_state(r)?;
        self.samples.restore_state(r)?;
        self.wasted_addrs.restore_state(r)?;
        self.intervals_dropped.restore_state(r)
    }
}

impl Default for Window {
    fn default() -> Window {
        Window {
            start: 0,
            end: 0,
            profile: AccessProfile::default(),
            fill: Bucket::Commit,
        }
    }
}

impl svc_types::Checkpointable for Window {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.start.save_state(w);
        self.end.save_state(w);
        self.profile.save_state(w);
        self.fill.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.start.restore_state(r)?;
        self.end.restore_state(r)?;
        self.profile.restore_state(r)?;
        self.fill.restore_state(r)
    }
}

impl svc_types::Checkpointable for PuAcct {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.cursor.save_state(w);
        self.pending.save_state(w);
        self.windows.save_state(w);
        self.buckets.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.cursor.restore_state(r)?;
        self.pending.restore_state(r)?;
        self.windows.restore_state(r)?;
        self.buckets.restore_state(r)
    }
}

/// An enabled profiler checkpoints its full accounting core — cursors,
/// pending cycles, queued windows, bucket totals, the wasted-work map and
/// the interval time series — so a resumed run reports identically to an
/// uninterrupted one. Restore requires the same attachment: a checkpoint
/// of an enabled profiler cannot restore into a disabled handle (and
/// vice versa), because the handle is shared by reference with the
/// simulator components and cannot be re-wired after construction.
impl svc_types::Checkpointable for Profiler {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_bool(self.is_active());
        let Some(core) = &self.core else {
            return;
        };
        let core = core.borrow();
        core.pus.len().save_state(w);
        core.pus.save_state(w);
        core.slot.save_state(w);
        core.port_debt.save_state(w);
        w.put_usize(core.wasted.len());
        for (&addr, &count) in &core.wasted {
            addr.save_state(w);
            count.save_state(w);
        }
        core.epoch.save_state(w);
        core.next_sample.save_state(w);
        core.samples.save_state(w);
        core.window.save_state(w);
        core.dropped.save_state(w);
        core.finished.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let active = r.take_bool()?;
        if active != self.is_active() {
            return Err(svc_types::CkptError::corrupt(
                "profiler attachment disagrees with the checkpoint",
            ));
        }
        let Some(core) = &self.core else {
            return Ok(());
        };
        let mut core = core.borrow_mut();
        let num_pus = r.take_usize()?;
        if num_pus != core.pus.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "profiler built for {} PUs, checkpoint has {num_pus}",
                core.pus.len()
            )));
        }
        core.pus.restore_state(r)?;
        core.slot.restore_state(r)?;
        core.port_debt.restore_state(r)?;
        if core.slot.len() != num_pus || core.port_debt.len() != num_pus {
            return Err(svc_types::CkptError::corrupt(
                "profiler per-PU vectors disagree in length",
            ));
        }
        let n = r.take_usize()?;
        core.wasted.clear();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let addr = r.take::<u64>()?;
            if prev.is_some_and(|p| p >= addr) {
                return Err(svc_types::CkptError::corrupt(
                    "wasted-work map keys out of order",
                ));
            }
            prev = Some(addr);
            let count = r.take::<u64>()?;
            core.wasted.insert(addr, count);
        }
        core.epoch.restore_state(r)?;
        core.next_sample.restore_state(r)?;
        core.samples.restore_state(r)?;
        core.window.restore_state(r)?;
        core.dropped.restore_state(r)?;
        core.finished.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_total(r: &ProfileReport, b: Bucket) -> u64 {
        r.totals()[b as usize]
    }

    #[test]
    fn rolling_window_evicts_and_counts() {
        let p = Profiler::new(1, 10);
        p.set_window(3);
        for i in 1..=6u64 {
            p.sample(Cycle(i * 10), i, 0, 0, MemGauges::default());
        }
        p.finish(Cycle(60), &[false]);
        let r = p.report().unwrap();
        assert_eq!(r.intervals_dropped, 3);
        assert_eq!(r.samples.len(), 3);
        assert_eq!(r.samples[0].cycle, 40, "oldest rows evicted first");

        // A window never exceeded is byte-identical to unbounded.
        let p = Profiler::new(1, 10);
        p.set_window(16);
        let q = Profiler::new(1, 10);
        for i in 1..=4u64 {
            p.sample(Cycle(i * 10), i, 0, 0, MemGauges::default());
            q.sample(Cycle(i * 10), i, 0, 0, MemGauges::default());
        }
        p.finish(Cycle(40), &[false]);
        q.finish(Cycle(40), &[false]);
        assert_eq!(p.report(), q.report());
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_active());
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.on_commit(PuId(0), Cycle(5), Cycle(6));
        p.finish(Cycle(6), &[false]);
        assert_eq!(p.report(), None);
    }

    #[test]
    fn exec_then_commit_conserves() {
        let p = Profiler::new(2, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(2));
        p.on_commit(PuId(0), Cycle(10), Cycle(12));
        p.finish(Cycle(20), &[false, false]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok(), "attributed {}", r.attributed());
        // PU0: [0,2) idle window, [2,10) pending→commit, [10,12) commit
        // op, [12,20) idle; PU1: all idle.
        assert_eq!(r.per_pu[0][Bucket::Idle as usize], 2 + 8);
        assert_eq!(r.per_pu[0][Bucket::Commit as usize], 8 + 2);
        assert_eq!(r.per_pu[1][Bucket::Idle as usize], 20);
    }

    #[test]
    fn load_window_drains_components_then_fill() {
        let p = Profiler::new(1, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.note_access(
            PuId(0),
            AccessProfile {
                mshr_stall: 2,
                bus_wait: 3,
                bus_transfer: 4,
                mem_latency: 5,
            },
        );
        // Load at cycle 1, value visible at cycle 21: window [2, 21) of
        // 19 cycles — 14 of components, 5 of fill (MemLatency).
        p.on_load(PuId(0), Cycle(1), Cycle(21));
        p.on_commit(PuId(0), Cycle(21), Cycle(22));
        p.finish(Cycle(22), &[false]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok());
        assert_eq!(commit_total(&r, Bucket::MshrStall), 2);
        assert_eq!(commit_total(&r, Bucket::BusWait), 3);
        assert_eq!(commit_total(&r, Bucket::BusTransfer), 4);
        assert_eq!(commit_total(&r, Bucket::MemLatency), 5 + 5);
        // idle [0,1) + the issue cycle [1,2) pending→commit + commit op.
        assert_eq!(commit_total(&r, Bucket::Idle), 1);
    }

    #[test]
    fn squash_clips_windows_and_wastes_pending() {
        let p = Profiler::new(1, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.note_access(
            PuId(0),
            AccessProfile {
                bus_transfer: 100,
                ..AccessProfile::default()
            },
        );
        p.on_load(PuId(0), Cycle(1), Cycle(51)); // window [2, 51)
                                                 // Squashed at cycle 10, blocked until 51.
        p.on_squash(PuId(0), Cycle(10), Cycle(51));
        p.finish(Cycle(60), &[false]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok(), "attributed {}", r.attributed());
        // [0,1) idle, [1,2) pending→wasted, [2,10) bus_transfer (clipped),
        // [10,51) squash recovery, [51,60) idle.
        assert_eq!(commit_total(&r, Bucket::WastedExec), 1);
        assert_eq!(commit_total(&r, Bucket::BusTransfer), 8);
        assert_eq!(commit_total(&r, Bucket::SquashRecovery), 41);
        assert_eq!(commit_total(&r, Bucket::Idle), 10);
    }

    #[test]
    fn budget_cutoff_wastes_in_flight_tasks() {
        let p = Profiler::new(1, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.finish(Cycle(9), &[true]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok());
        assert_eq!(commit_total(&r, Bucket::Idle), 1);
        assert_eq!(commit_total(&r, Bucket::WastedExec), 8);
    }

    #[test]
    fn windows_never_overshoot_the_end_of_run() {
        let p = Profiler::new(1, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.on_commit(PuId(0), Cycle(4), Cycle(50)); // commit op runs past the end
        p.finish(Cycle(10), &[false]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok(), "attributed {}", r.attributed());
        assert_eq!(commit_total(&r, Bucket::Commit), 3 + 6);
    }

    #[test]
    fn port_block_charges_store_debt() {
        let p = Profiler::new(1, 0);
        p.on_dispatch(PuId(0), Cycle(0), Cycle(1));
        p.note_access(
            PuId(0),
            AccessProfile {
                bus_wait: 2,
                bus_transfer: 10,
                ..AccessProfile::default()
            },
        );
        p.on_store(PuId(0));
        p.on_port_block(PuId(0), Cycle(3), Cycle(8));
        p.on_commit(PuId(0), Cycle(8), Cycle(9));
        p.finish(Cycle(9), &[false]);
        let r = p.report().unwrap();
        assert!(r.conservation_ok());
        assert_eq!(commit_total(&r, Bucket::BusWait), 2);
        assert_eq!(
            commit_total(&r, Bucket::BusTransfer),
            3,
            "clipped to the block window"
        );
    }

    #[test]
    fn wasted_addrs_rank_by_count_then_addr() {
        let p = Profiler::new(1, 0);
        p.note_wasted([Addr(7), Addr(3), Addr(7)]);
        p.finish(Cycle(0), &[false]);
        let r = p.report().unwrap();
        assert_eq!(r.wasted_addrs, vec![(7, 2), (3, 1)]);
    }

    #[test]
    fn sampler_records_rows_and_final_sample_dedupes() {
        let p = Profiler::new(1, 10);
        assert!(!p.sample_due(Cycle(5)));
        assert!(p.sample_due(Cycle(10)));
        p.sample(Cycle(12), 100, 1, 6, MemGauges::default());
        assert!(!p.sample_due(Cycle(15)));
        assert!(p.sample_due(Cycle(22)));
        p.final_sample(Cycle(12), 100, 1, 6, MemGauges::default());
        p.final_sample(Cycle(30), 200, 1, 9, MemGauges::default());
        p.finish(Cycle(30), &[false]);
        let r = p.report().unwrap();
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[1].cycle, 30);
    }

    #[test]
    fn from_env_defaults_to_disabled() {
        // The test environment does not set SVC_PROFILE.
        if std::env::var("SVC_PROFILE").is_err() {
            assert!(!Profiler::from_env(4).is_active());
        }
    }
}
