//! A deterministic epoch-barrier worker pool.
//!
//! [`EpochPool`] runs one *epoch* at a time: the coordinator hands the
//! pool an owned, read-only context plus a batch of jobs, the jobs fan
//! out over persistent worker threads (plus the coordinator itself), and
//! the barrier at the end of the epoch returns the context and every
//! result **in job order** — so the output is a pure function of
//! `(context, jobs)` and completely independent of thread count or
//! scheduling. This is the machinery behind `SVC_ENGINE_THREADS`: the
//! simulated machine's per-cycle planning work is sharded across cores
//! while the apply order stays canonical.
//!
//! The pool is 100% safe Rust. Ownership of the context is *moved* into
//! an [`std::sync::Arc`] for the epoch and recovered at the barrier:
//! workers drop their clone of the `Arc` before reporting results, so by
//! the time every result has been received the coordinator holds the only
//! reference and `Arc::try_unwrap` returns the context (a short yield
//! loop covers the window between a worker's drop and the receiver
//! observing it).
//!
//! # Example
//!
//! ```
//! use svc_sim::epoch::EpochPool;
//!
//! fn square(ctx: &u64, job: &u64) -> u64 {
//!     ctx * job * job
//! }
//!
//! let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(2, square);
//! let (ctx, out) = pool.run_epoch(3, vec![1, 2, 3, 4]);
//! assert_eq!(ctx, 3);
//! assert_eq!(out, vec![3, 12, 27, 48]); // job order, any thread count
//! ```

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One epoch's work packet for a worker: a shared context and the
/// `(job index, job)` pairs assigned to that worker.
struct Packet<C, J> {
    ctx: Arc<C>,
    jobs: Vec<(usize, J)>,
}

/// A persistent pool of worker threads advancing in epochs with a
/// barrier after each one; results come back in job order regardless of
/// thread count. See the [module docs](self) for the model.
pub struct EpochPool<C, J, R> {
    f: fn(&C, &J) -> R,
    senders: Vec<mpsc::Sender<Packet<C, J>>>,
    results: mpsc::Receiver<Vec<(usize, R)>>,
    handles: Vec<JoinHandle<()>>,
}

impl<C, J, R> std::fmt::Debug for EpochPool<C, J, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl<C, J, R> EpochPool<C, J, R>
where
    C: Send + Sync + 'static,
    J: Send + 'static,
    R: Send + 'static,
{
    /// Creates a pool with `workers` persistent worker threads applying
    /// `f` to each job. `workers` may be 0 (every epoch then runs
    /// entirely on the coordinator — same results, no threads).
    pub fn new(workers: usize, f: fn(&C, &J) -> R) -> EpochPool<C, J, R> {
        let (result_tx, results) = mpsc::channel::<Vec<(usize, R)>>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Packet<C, J>>();
            let out = result_tx.clone();
            let handle = std::thread::spawn(move || {
                while let Ok(packet) = rx.recv() {
                    let Packet { ctx, jobs } = packet;
                    let done: Vec<(usize, R)> =
                        jobs.iter().map(|(i, j)| (*i, f(&ctx, j))).collect();
                    // Release the context *before* reporting, so the
                    // coordinator can reclaim it at the barrier.
                    drop(ctx);
                    if out.send(done).is_err() {
                        break; // pool dropped mid-epoch
                    }
                }
            });
            senders.push(tx);
            handles.push(handle);
        }
        EpochPool {
            f,
            senders,
            results,
            handles,
        }
    }

    /// Number of worker threads (the coordinator adds one more lane).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one epoch: fans `jobs` out over the workers and the
    /// coordinator, blocks at the barrier, and returns the context and
    /// the results in job order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has panicked (poisoned pool).
    pub fn run_epoch(&mut self, ctx: C, jobs: Vec<J>) -> (C, Vec<R>) {
        let n = jobs.len();
        let lanes = self.handles.len() + 1;
        let ctx = Arc::new(ctx);
        let mut indexed: Vec<(usize, J)> = jobs.into_iter().enumerate().collect();

        // Contiguous chunks, coordinator takes the first. `div_ceil`
        // keeps the coordinator's chunk the largest, so it never idles
        // at the barrier waiting for a bigger worker chunk.
        let chunk = n.div_ceil(lanes);
        let mut own: Vec<(usize, J)> = Vec::new();
        let mut dispatched = 0usize;
        if chunk > 0 {
            let rest = indexed.split_off(chunk.min(indexed.len()));
            own = indexed;
            indexed = rest;
            for sender in &self.senders {
                if indexed.is_empty() {
                    break;
                }
                let rest = indexed.split_off(chunk.min(indexed.len()));
                let packet = Packet {
                    ctx: Arc::clone(&ctx),
                    jobs: indexed,
                };
                sender.send(packet).expect("worker thread died");
                dispatched += 1;
                indexed = rest;
            }
        }
        debug_assert!(indexed.is_empty());

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, j) in &own {
            out[*i] = Some((self.f)(&ctx, j));
        }
        drop(own);
        for _ in 0..dispatched {
            let batch = self.results.recv().expect("worker thread died");
            for (i, r) in batch {
                out[i] = Some(r);
            }
        }

        // Every worker dropped its clone before sending its batch, so
        // the unwrap succeeds — modulo the tiny window between a
        // worker's `drop(ctx)` and this thread observing the decrement.
        let mut ctx = ctx;
        let ctx = loop {
            match Arc::try_unwrap(ctx) {
                Ok(c) => break c,
                Err(still_shared) => {
                    ctx = still_shared;
                    std::thread::yield_now();
                }
            }
        };
        let results = out
            .into_iter()
            .map(|r| r.expect("every job produced a result"))
            .collect();
        (ctx, results)
    }
}

impl<C, J, R> Drop for EpochPool<C, J, R> {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul(ctx: &u64, job: &u64) -> u64 {
        ctx * job
    }

    #[test]
    fn results_in_job_order_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = jobs.iter().map(|j| 7 * j).collect();
        for workers in [0, 1, 2, 3, 8] {
            let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(workers, mul);
            let (ctx, got) = pool.run_epoch(7, jobs.clone());
            assert_eq!(ctx, 7);
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn empty_epoch_returns_context() {
        let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(2, mul);
        let (ctx, got) = pool.run_epoch(5, Vec::new());
        assert_eq!(ctx, 5);
        assert!(got.is_empty());
    }

    #[test]
    fn pool_survives_many_epochs() {
        let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(3, mul);
        for e in 0..200 {
            let jobs: Vec<u64> = (0..(e % 11)).collect();
            let n = jobs.len();
            let (ctx, got) = pool.run_epoch(e, jobs);
            assert_eq!(ctx, e);
            assert_eq!(got.len(), n);
            for (j, r) in got.iter().enumerate() {
                assert_eq!(*r, e * j as u64);
            }
        }
    }

    #[test]
    fn fewer_jobs_than_lanes() {
        let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(8, mul);
        let (_, got) = pool.run_epoch(2, vec![21]);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn context_ownership_round_trips() {
        // A non-Clone context proves ownership really moves through the
        // pool and back.
        #[derive(PartialEq, Debug)]
        struct Ctx(Vec<u64>);
        fn sum(ctx: &Ctx, job: &usize) -> u64 {
            ctx.0.iter().sum::<u64>() + *job as u64
        }
        let mut pool: EpochPool<Ctx, usize, u64> = EpochPool::new(2, sum);
        let (ctx, got) = pool.run_epoch(Ctx(vec![1, 2, 3]), vec![0, 1]);
        assert_eq!(ctx, Ctx(vec![1, 2, 3]));
        assert_eq!(got, vec![6, 7]);
    }
}
