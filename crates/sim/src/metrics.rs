//! A unified metrics registry.
//!
//! Before this module, every subsystem kept its own ad-hoc counters
//! (`MemStats` in `svc-types`, `RunReport` in `svc-multiscalar`, private
//! tallies in the bus/MSHR/writeback models). The registry gives them a
//! single namespace of **named** counter / gauge / histogram values with
//! a stable, insertion-preserving order so that the harness can serialize
//! one `metrics` object per experiment cell without knowing what each
//! subsystem counts.
//!
//! The registry is intentionally dependency-free: it stores plain values
//! and lets `svc_bench::report` (which depends on this crate, not the
//! other way round) turn them into JSON.
//!
//! Components implement [`MetricSource`] and are exported under a prefix:
//!
//! ```
//! use svc_sim::metrics::{MetricSource, MetricsRegistry, MetricValue};
//!
//! struct BusModel { transactions: u64, busy: u64, cycles: u64 }
//! impl MetricSource for BusModel {
//!     fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
//!         reg.counter(&format!("{prefix}transactions"), self.transactions);
//!         reg.ratio(&format!("{prefix}utilization"), self.busy, self.cycles);
//!     }
//! }
//!
//! let mut reg = MetricsRegistry::new();
//! BusModel { transactions: 7, busy: 40, cycles: 100 }.export_metrics("bus.", &mut reg);
//! assert_eq!(reg.get("bus.transactions"), Some(&MetricValue::Counter(7)));
//! ```

use crate::stats::Histogram;

/// A point-in-time summary of a [`Histogram`], cheap to store and
/// serialize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total samples recorded.
    pub total: u64,
    /// Samples beyond the last bucket.
    pub overflow: u64,
    /// Bucket-resolution median; `None` if the histogram was empty.
    pub p50: Option<u64>,
    /// Bucket-resolution 90th percentile; `None` if empty.
    pub p90: Option<u64>,
    /// Bucket-resolution 99th percentile; `None` if empty.
    pub p99: Option<u64>,
}

impl HistogramSummary {
    /// Summarizes `h` (quantiles keep the histogram's documented
    /// overflow sentinel).
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            total: h.total(),
            overflow: h.overflow(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
        }
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated event count.
    Counter(u64),
    /// A derived scalar (rates, ratios, averages).
    Gauge(f64),
    /// A summarized distribution.
    Histogram(HistogramSummary),
    /// A full fixed-bucket distribution, kept bucket-by-bucket so the
    /// Prometheus exposition can render cumulative `_bucket{le=…}` lines.
    Distribution(Histogram),
}

/// One registry entry: a name, optional labels, and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Raw metric name as registered (dots allowed; sanitized on export).
    pub name: String,
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// An ordered registry of named metrics.
///
/// Registration order is preserved (it becomes the JSON key order, which
/// keeps experiment artifacts byte-deterministic); re-registering an
/// existing name (with identical labels) replaces its value in place.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<MetricEntry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn set(&mut self, name: &str, labels: &[(&str, &str)], value: MetricValue) {
        let found = self.entries.iter_mut().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|(have, (k, v))| have.0 == *k && have.1 == *v)
        });
        if let Some(slot) = found {
            slot.value = value;
        } else {
            self.entries.push(MetricEntry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value,
            });
        }
    }

    /// Registers (or replaces) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.set(name, &[], MetricValue::Counter(value));
    }

    /// Registers (or replaces) a labeled counter. The same name may carry
    /// many label sets (`soak.slices{workload="streaming"}`, …); each
    /// (name, labels) pair is one entry.
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.set(name, labels, MetricValue::Counter(value));
    }

    /// Registers (or replaces) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.set(name, &[], MetricValue::Gauge(value));
    }

    /// Registers (or replaces) a labeled gauge.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.set(name, labels, MetricValue::Gauge(value));
    }

    /// Registers `num / den` as a gauge; a zero denominator registers 0.0
    /// (not NaN) so artifacts stay JSON-representable.
    pub fn ratio(&mut self, name: &str, num: u64, den: u64) {
        let value = if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        };
        self.set(name, &[], MetricValue::Gauge(value));
    }

    /// Registers (or replaces) a histogram summary.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.set(name, &[], MetricValue::Histogram(HistogramSummary::of(h)));
    }

    /// Registers (or replaces) a full bucket-by-bucket distribution.
    pub fn distribution(&mut self, name: &str, h: &Histogram) {
        self.set(name, &[], MetricValue::Distribution(h.clone()));
    }

    /// Looks a metric up by name (first entry with that name; labeled
    /// series share a name, so prefer [`iter_entries`](Self::iter_entries)
    /// when labels matter).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Convenience: the value of a counter, if `name` is one.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge, if `name` is one.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }

    /// Iterates full entries (name, labels, value) in registration order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &MetricEntry> {
        self.entries.iter()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric family, then one
    /// sample line per entry. Names are passed through
    /// [`sanitize_metric_name`] (registry names like
    /// `mem.bus_wait_cycles` use `.` which is illegal in the exposition
    /// charset) and label values through [`escape_label_value`].
    ///
    /// * counters/gauges render as single samples;
    /// * [`MetricValue::Histogram`] summaries render as a `summary`
    ///   family: `{quantile="…"}` samples plus `_count`;
    /// * [`MetricValue::Distribution`] renders as a full `histogram`
    ///   family: cumulative `_bucket{le="…"}` lines (ending in
    ///   `le="+Inf"`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for e in &self.entries {
            let name = sanitize_metric_name(&e.name);
            let kind = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
                MetricValue::Distribution(_) => "histogram",
            };
            if !typed.contains(&name) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                typed.push(name.clone());
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name}{} {v}\n", render_labels(&e.labels, &[])));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(&e.labels, &[]),
                        render_f64(*v)
                    ));
                }
                MetricValue::Histogram(s) => {
                    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                        if let Some(v) = v {
                            out.push_str(&format!(
                                "{name}{} {v}\n",
                                render_labels(&e.labels, &[("quantile", q)])
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(&e.labels, &[]),
                        s.total
                    ));
                }
                MetricValue::Distribution(h) => {
                    let cumulative = h.cumulative_counts();
                    for (i, c) in cumulative.iter().enumerate() {
                        let le = h.bucket_bound(i).to_string();
                        out.push_str(&format!(
                            "{name}_bucket{} {c}\n",
                            render_labels(&e.labels, &[("le", &le)])
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        render_labels(&e.labels, &[("le", "+Inf")]),
                        h.total()
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        render_labels(&e.labels, &[]),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(&e.labels, &[]),
                        h.total()
                    ));
                }
            }
        }
        out
    }
}

/// Maps an arbitrary registry name onto the Prometheus metric-name
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`: every illegal character becomes
/// `_`, and a leading digit gains a `_` prefix. Empty input becomes
/// `"_"`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text exposition rules: backslash,
/// double-quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders `{k="v",…}` from entry labels plus trailing extras
/// (`quantile`, `le`); empty input renders as the empty string.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::with_capacity(labels.len() + extra.len());
    for (k, v) in labels {
        parts.push(format!(
            "{}=\"{}\"",
            sanitize_metric_name(k),
            escape_label_value(v)
        ));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders a gauge value: finite values via Rust's shortest-round-trip
/// `{}` formatting, non-finite as Prometheus' `NaN`/`+Inf`/`-Inf`.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Anything that can publish its counters into a [`MetricsRegistry`].
///
/// `prefix` namespaces the source (`"bus."`, `"pu3.mshr."`); implementors
/// prepend it to every name they register.
pub trait MetricSource {
    /// Exports this component's metrics under `prefix`.
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 2);
        reg.gauge("m.mid", 0.5);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z.last", "a.first", "m.mid"]);
    }

    #[test]
    fn replaces_in_place() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x", 1);
        reg.counter("y", 2);
        reg.counter("x", 10);
        assert_eq!(reg.counter_value("x"), Some(10));
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y"], "replacement keeps position");
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        let mut reg = MetricsRegistry::new();
        reg.ratio("ok", 1, 4);
        reg.ratio("div0", 1, 0);
        assert_eq!(reg.gauge_value("ok"), Some(0.25));
        assert_eq!(reg.gauge_value("div0"), Some(0.0));
    }

    #[test]
    fn histogram_summary_carries_sentinels() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("empty", &Histogram::new(1, 4));
        let mut h = Histogram::new(10, 2);
        h.record(500);
        reg.histogram("overflowed", &h);
        match reg.get("empty") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.total, 0);
                assert_eq!(s.p50, None);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match reg.get("overflowed") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.overflow, 1);
                assert_eq!(s.p50, Some(20), "overflow sentinel = buckets*width");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn sanitize_maps_onto_legal_charset() {
        assert_eq!(
            sanitize_metric_name("mem.bus_wait_cycles"),
            "mem_bus_wait_cycles"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok:name_2"), "ok:name_2");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn escape_label_value_rules() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn labeled_entries_are_distinct_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter_with("slices", &[("workload", "streaming")], 3);
        reg.counter_with("slices", &[("workload", "reduction")], 5);
        reg.counter_with("slices", &[("workload", "streaming")], 4);
        assert_eq!(reg.len(), 2, "same labels replace, different labels append");
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE slices counter").count(), 1);
        assert!(text.contains("slices{workload=\"streaming\"} 4\n"));
        assert!(text.contains("slices{workload=\"reduction\"} 5\n"));
    }

    #[test]
    fn exposition_renders_all_value_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("mem.accesses", 10);
        reg.gauge("bus.utilization", 0.25);
        let mut h = Histogram::new(10, 2);
        for s in [1, 11, 99] {
            h.record(s);
        }
        reg.histogram("task.lengths", &h);
        reg.distribution("task.latency", &h);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE mem_accesses counter\nmem_accesses 10\n"));
        assert!(text.contains("# TYPE bus_utilization gauge\nbus_utilization 0.25\n"));
        assert!(text.contains("# TYPE task_lengths summary\n"));
        assert!(text.contains("task_lengths{quantile=\"0.5\"}"));
        assert!(text.contains("task_lengths_count 3\n"));
        assert!(text.contains("# TYPE task_latency histogram\n"));
        assert!(text.contains("task_latency_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("task_latency_bucket{le=\"20\"} 2\n"));
        assert!(text.contains("task_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("task_latency_sum 111\n"));
        assert!(text.contains("task_latency_count 3\n"));
    }
}
