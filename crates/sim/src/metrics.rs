//! A unified metrics registry.
//!
//! Before this module, every subsystem kept its own ad-hoc counters
//! (`MemStats` in `svc-types`, `RunReport` in `svc-multiscalar`, private
//! tallies in the bus/MSHR/writeback models). The registry gives them a
//! single namespace of **named** counter / gauge / histogram values with
//! a stable, insertion-preserving order so that the harness can serialize
//! one `metrics` object per experiment cell without knowing what each
//! subsystem counts.
//!
//! The registry is intentionally dependency-free: it stores plain values
//! and lets `svc_bench::report` (which depends on this crate, not the
//! other way round) turn them into JSON.
//!
//! Components implement [`MetricSource`] and are exported under a prefix:
//!
//! ```
//! use svc_sim::metrics::{MetricSource, MetricsRegistry, MetricValue};
//!
//! struct BusModel { transactions: u64, busy: u64, cycles: u64 }
//! impl MetricSource for BusModel {
//!     fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
//!         reg.counter(&format!("{prefix}transactions"), self.transactions);
//!         reg.ratio(&format!("{prefix}utilization"), self.busy, self.cycles);
//!     }
//! }
//!
//! let mut reg = MetricsRegistry::new();
//! BusModel { transactions: 7, busy: 40, cycles: 100 }.export_metrics("bus.", &mut reg);
//! assert_eq!(reg.get("bus.transactions"), Some(&MetricValue::Counter(7)));
//! ```

use crate::stats::Histogram;

/// A point-in-time summary of a [`Histogram`], cheap to store and
/// serialize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total samples recorded.
    pub total: u64,
    /// Samples beyond the last bucket.
    pub overflow: u64,
    /// Bucket-resolution median; `None` if the histogram was empty.
    pub p50: Option<u64>,
    /// Bucket-resolution 90th percentile; `None` if empty.
    pub p90: Option<u64>,
    /// Bucket-resolution 99th percentile; `None` if empty.
    pub p99: Option<u64>,
}

impl HistogramSummary {
    /// Summarizes `h` (quantiles keep the histogram's documented
    /// overflow sentinel).
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            total: h.total(),
            overflow: h.overflow(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
        }
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated event count.
    Counter(u64),
    /// A derived scalar (rates, ratios, averages).
    Gauge(f64),
    /// A summarized distribution.
    Histogram(HistogramSummary),
}

/// An ordered registry of named metrics.
///
/// Registration order is preserved (it becomes the JSON key order, which
/// keeps experiment artifacts byte-deterministic); re-registering an
/// existing name replaces its value in place.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn set(&mut self, name: &str, value: MetricValue) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    /// Registers (or replaces) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.set(name, MetricValue::Counter(value));
    }

    /// Registers (or replaces) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.set(name, MetricValue::Gauge(value));
    }

    /// Registers `num / den` as a gauge; a zero denominator registers 0.0
    /// (not NaN) so artifacts stay JSON-representable.
    pub fn ratio(&mut self, name: &str, num: u64, den: u64) {
        let value = if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        };
        self.set(name, MetricValue::Gauge(value));
    }

    /// Registers (or replaces) a histogram summary.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.set(name, MetricValue::Histogram(HistogramSummary::of(h)));
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: the value of a counter, if `name` is one.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge, if `name` is one.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Anything that can publish its counters into a [`MetricsRegistry`].
///
/// `prefix` namespaces the source (`"bus."`, `"pu3.mshr."`); implementors
/// prepend it to every name they register.
pub trait MetricSource {
    /// Exports this component's metrics under `prefix`.
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 2);
        reg.gauge("m.mid", 0.5);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z.last", "a.first", "m.mid"]);
    }

    #[test]
    fn replaces_in_place() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x", 1);
        reg.counter("y", 2);
        reg.counter("x", 10);
        assert_eq!(reg.counter_value("x"), Some(10));
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y"], "replacement keeps position");
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        let mut reg = MetricsRegistry::new();
        reg.ratio("ok", 1, 4);
        reg.ratio("div0", 1, 0);
        assert_eq!(reg.gauge_value("ok"), Some(0.25));
        assert_eq!(reg.gauge_value("div0"), Some(0.0));
    }

    #[test]
    fn histogram_summary_carries_sentinels() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("empty", &Histogram::new(1, 4));
        let mut h = Histogram::new(10, 2);
        h.record(500);
        reg.histogram("overflowed", &h);
        match reg.get("empty") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.total, 0);
                assert_eq!(s.p50, None);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match reg.get("overflowed") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.overflow, 1);
                assert_eq!(s.p50, Some(20), "overflow sentinel = buckets*width");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
