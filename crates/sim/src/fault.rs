//! Deterministic fault injection for the simulator.
//!
//! A [`Faults`] handle is threaded through the memory system and the
//! execution engine the same way a [`Tracer`](crate::trace::Tracer) is:
//! it is a cheap clone (`Rc` internally), every component holds one, and
//! a disabled handle costs a single branch per potential injection site.
//!
//! Faults are injected from **per-site [`SplitMix64`] streams** derived
//! from the run seed (`seed ^ SITE_SALT`), so the same seed reproduces the
//! exact same fault schedule — which draws fire, which are absorbed, and
//! the penalty cycles attached to each. Components that consult
//! [`Faults::inject`] do so in simulation execution order, so a campaign
//! run (`svc-sim faults --seed S`) is byte-for-byte reproducible.
//!
//! Every site models a *recoverable* disturbance — dropped or delayed bus
//! grants, late memory responses, transient structural-hazard refusals,
//! spurious squashes, forced (but legal) victim evictions. The injected
//! penalty only perturbs *timing*; architectural results must not change,
//! and the fault campaign asserts exactly that. Corruption-style faults
//! (flipped state bits, spliced VOLs) are injected through dedicated
//! `fault_*` methods on the memory systems and must be caught by the
//! invariant watchdog instead.
//!
//! # Example
//!
//! ```
//! use svc_sim::fault::{FaultConfig, FaultSite, Faults};
//!
//! let cfg = FaultConfig::parse("bus_delay=1.0").unwrap();
//! let f = Faults::new(&cfg, 42);
//! assert!(f.is_active());
//! assert!(f.inject(FaultSite::BusDelay).is_some(), "rate 1.0 always fires");
//! assert!(f.inject(FaultSite::MemJitter).is_none(), "rate 0 never fires");
//! // Same seed, same schedule:
//! let g = Faults::new(&cfg, 42);
//! assert_eq!(g.inject(FaultSite::BusDelay), Faults::new(&cfg, 42).inject(FaultSite::BusDelay));
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use svc_types::{LineId, PuId};

use crate::rng::SplitMix64;

/// Number of distinct fault-injection sites.
pub const NUM_SITES: usize = 8;

/// Default upper bound (cycles) for an injected delay penalty.
pub const DEFAULT_MAX_PENALTY: u64 = 8;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A bus transaction loses its grant and must re-arbitrate.
    BusDrop,
    /// A bus transaction wins arbitration late.
    BusDelay,
    /// The next level of memory answers late (response jitter).
    MemJitter,
    /// MSHR allocation transiently fails (structural hazard).
    MshrFail,
    /// The writeback buffer transiently refuses a push (overflow).
    WbOverflow,
    /// The sequencer squashes a task that did nothing wrong.
    SpuriousSquash,
    /// A replacement victimizes a committed line that could have stayed.
    ForcedEvict,
    /// The VCL answers a snooped request late.
    VclDelay,
}

impl FaultSite {
    /// All sites, in stable order (indexes match the internal streams).
    pub const EVERY: [FaultSite; NUM_SITES] = [
        FaultSite::BusDrop,
        FaultSite::BusDelay,
        FaultSite::MemJitter,
        FaultSite::MshrFail,
        FaultSite::WbOverflow,
        FaultSite::SpuriousSquash,
        FaultSite::ForcedEvict,
        FaultSite::VclDelay,
    ];

    /// The name used in `SVC_FAULTS` specs, traces and campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BusDrop => "bus_drop",
            FaultSite::BusDelay => "bus_delay",
            FaultSite::MemJitter => "mem_jitter",
            FaultSite::MshrFail => "mshr_fail",
            FaultSite::WbOverflow => "wb_overflow",
            FaultSite::SpuriousSquash => "spurious_squash",
            FaultSite::ForcedEvict => "forced_evict",
            FaultSite::VclDelay => "vcl_delay",
        }
    }

    /// Per-site stream salt: the run seed is XORed with this before
    /// seeding the site's SplitMix64 stream, so sites draw from
    /// independent deterministic sequences.
    fn salt(self) -> u64 {
        // Odd multiples of the golden-ratio constant (distinct, fixed).
        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2 * (self as u64) + 1)
    }
}

/// A typed description of one injected fault, surfaced through the tracer
/// as [`TraceEvent::Fault`](crate::trace::TraceEvent::Fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The site that fired.
    pub site: FaultSite,
    /// The PU involved, if attributable.
    pub pu: Option<PuId>,
    /// The line involved, if attributable.
    pub line: Option<LineId>,
    /// Extra cycles charged by the fault.
    pub penalty: u64,
}

/// Per-site fault rates plus the penalty bound; parsed from `SVC_FAULTS`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability, per consultation, that each site fires (indexed as
    /// [`FaultSite::EVERY`]).
    pub rates: [f64; NUM_SITES],
    /// Upper bound (cycles) on an injected delay penalty.
    pub max_penalty: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            rates: [0.0; NUM_SITES],
            max_penalty: DEFAULT_MAX_PENALTY,
        }
    }
}

impl FaultConfig {
    /// Whether every rate is zero (nothing will ever fire).
    pub fn is_empty(&self) -> bool {
        self.rates.iter().all(|&r| r <= 0.0)
    }

    /// A config with every site firing at `rate`.
    pub fn uniform(rate: f64) -> FaultConfig {
        FaultConfig {
            rates: [rate; NUM_SITES],
            ..FaultConfig::default()
        }
    }

    /// Parses a spec like `"bus_drop=0.01,mshr_fail=0.005"`. The pseudo
    /// site `all` sets every rate at once; `penalty=N` bounds injected
    /// delays. An empty spec parses to the empty (disabled) config.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault spec token {token:?} is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            if key == "penalty" {
                cfg.max_penalty = value
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("fault penalty {value:?} is not a positive integer"))?;
                continue;
            }
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("fault rate {value:?} is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} for {key:?} is outside [0, 1]"));
            }
            if key == "all" {
                cfg.rates = [rate; NUM_SITES];
                continue;
            }
            let site = FaultSite::EVERY
                .into_iter()
                .find(|s| s.name() == key)
                .ok_or_else(|| {
                    format!(
                        "unknown fault site {key:?} (known: all, penalty, {})",
                        FaultSite::EVERY.map(FaultSite::name).join(", ")
                    )
                })?;
            cfg.rates[site as usize] = rate;
        }
        Ok(cfg)
    }
}

/// A periodic fault-storm schedule for soak runs: every `period` ticks
/// of the soak clock, faults rain uniformly at `rate` for the final
/// `duration` ticks of the period (so each period opens calm and closes
/// stormy — recovery is observable in between). Deterministic: whether a
/// tick is stormy is a pure function of the tick number.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSchedule {
    /// Ticks per storm cycle.
    pub period: u64,
    /// Stormy ticks at the end of each period (`1..=period`).
    pub duration: u64,
    /// Per-site fault rate while the storm is active.
    pub rate: f64,
    /// Upper bound (cycles) on injected delay penalties.
    pub penalty: u64,
}

impl Default for StormSchedule {
    fn default() -> StormSchedule {
        StormSchedule {
            period: 8,
            duration: 2,
            rate: 0.02,
            penalty: DEFAULT_MAX_PENALTY,
        }
    }
}

impl StormSchedule {
    /// Parses a spec like `"period=8,duration=2,rate=0.02,penalty=6"`;
    /// omitted keys keep their defaults. `duration` must stay within
    /// `1..=period` and `rate` within `[0, 1]`.
    pub fn parse(spec: &str) -> Result<StormSchedule, String> {
        let mut s = StormSchedule::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("storm spec token {token:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "period" => {
                    s.period = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("storm period {value:?} is not a positive integer")
                        })?;
                }
                "duration" => {
                    s.duration = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("storm duration {value:?} is not a positive integer")
                        })?;
                }
                "rate" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| format!("storm rate {value:?} is not a number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("storm rate {rate} is outside [0, 1]"));
                    }
                    s.rate = rate;
                }
                "penalty" => {
                    s.penalty = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("storm penalty {value:?} is not a positive integer")
                        })?;
                }
                other => {
                    return Err(format!(
                        "unknown storm key {other:?} (known: period, duration, rate, penalty)"
                    ));
                }
            }
        }
        if s.duration > s.period {
            return Err(format!(
                "storm duration {} exceeds period {}",
                s.duration, s.period
            ));
        }
        Ok(s)
    }

    /// Whether `tick` falls inside a storm (the last `duration` ticks of
    /// each period).
    pub fn active(&self, tick: u64) -> bool {
        tick % self.period >= self.period - self.duration
    }

    /// Which storm `tick` belongs to (the period index); meaningful only
    /// when [`active`](StormSchedule::active).
    pub fn storm_index(&self, tick: u64) -> u64 {
        tick / self.period
    }

    /// The uniform fault config a storm tick runs under.
    pub fn config(&self) -> FaultConfig {
        FaultConfig {
            rates: [self.rate; NUM_SITES],
            max_penalty: self.penalty,
        }
    }

    /// Renders the canonical spec string (re-parseable by
    /// [`parse`](StormSchedule::parse)).
    pub fn spec(&self) -> String {
        format!(
            "period={},duration={},rate={},penalty={}",
            self.period, self.duration, self.rate, self.penalty
        )
    }
}

fn threshold(rate: f64) -> u64 {
    if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * (u64::MAX as f64)) as u64
    }
}

#[derive(Debug)]
struct State {
    thresholds: [u64; NUM_SITES],
    max_penalty: u64,
    streams: [SplitMix64; NUM_SITES],
    injected: [u64; NUM_SITES],
}

/// A cheap-to-clone fault-injection handle. All clones share one set of
/// per-site streams and counters; a default-constructed handle is
/// disabled and costs one branch per [`inject`](Faults::inject).
#[derive(Debug, Clone, Default)]
pub struct Faults {
    inner: Option<Rc<RefCell<State>>>,
}

/// Handles compare by enabled-ness only, so simulator components keep
/// their derived `PartialEq` implementations (mirrors `Tracer`).
impl PartialEq for Faults {
    fn eq(&self, other: &Faults) -> bool {
        self.is_active() == other.is_active()
    }
}

impl Eq for Faults {}

impl Faults {
    /// A disabled injector (same as `Faults::default()`).
    pub fn disabled() -> Faults {
        Faults::default()
    }

    /// An injector drawing each site's schedule from `seed ^ site-salt`.
    /// An all-zero config yields a disabled handle.
    pub fn new(config: &FaultConfig, seed: u64) -> Faults {
        if config.is_empty() {
            return Faults::disabled();
        }
        let mut thresholds = [0u64; NUM_SITES];
        for site in FaultSite::EVERY {
            thresholds[site as usize] = threshold(config.rates[site as usize]);
        }
        Faults {
            inner: Some(Rc::new(RefCell::new(State {
                thresholds,
                max_penalty: config.max_penalty.max(1),
                streams: FaultSite::EVERY.map(|s| SplitMix64::new(seed ^ s.salt())),
                injected: [0; NUM_SITES],
            }))),
        }
    }

    /// Builds an injector from the environment: `SVC_FAULTS` holds the
    /// spec (see [`FaultConfig::parse`]; unset or empty disables
    /// injection, a malformed spec disables it with a warning).
    pub fn from_env(seed: u64) -> Faults {
        let Some(spec) = std::env::var("SVC_FAULTS").ok().filter(|s| !s.is_empty()) else {
            return Faults::disabled();
        };
        match FaultConfig::parse(&spec) {
            Ok(cfg) => Faults::new(&cfg, seed),
            Err(e) => {
                eprintln!("SVC_FAULTS: {e}; fault injection disabled");
                Faults::disabled()
            }
        }
    }

    /// Whether any site can fire — the single branch on the fast path.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Consults `site`'s stream. Returns the penalty (at least one
    /// cycle) when the fault fires, `None` otherwise. Disabled handles
    /// return `None` after one branch and never touch any stream.
    #[inline]
    pub fn inject(&self, site: FaultSite) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.borrow_mut();
        let i = site as usize;
        if st.thresholds[i] == 0 {
            return None;
        }
        if st.streams[i].next_u64() >= st.thresholds[i] {
            return None;
        }
        st.injected[i] += 1;
        let max = st.max_penalty;
        let penalty = 1 + st.streams[i].next_u64() % max;
        Some(penalty)
    }

    /// How many times `site` has fired.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.borrow().injected[site as usize])
    }

    /// Total faults injected across every site.
    pub fn total_injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.borrow().injected.iter().sum())
    }

    /// Per-site injection counts, in [`FaultSite::EVERY`] order.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        FaultSite::EVERY
            .into_iter()
            .map(|s| (s.name(), self.injected(s)))
            .collect()
    }
}

/// A checkpoint captures every per-site stream position and injected
/// counter, so a resumed faulted run draws the exact same schedule the
/// uninterrupted run would have. The handle itself must already be
/// attached (built from the same `FaultConfig` and seed) before restore;
/// thresholds are saved only to cross-check that configuration.
impl svc_types::Checkpointable for Faults {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        match &self.inner {
            None => w.put_bool(false),
            Some(inner) => {
                w.put_bool(true);
                let st = inner.borrow();
                st.thresholds.save_state(w);
                st.max_penalty.save_state(w);
                st.streams.save_state(w);
                st.injected.save_state(w);
            }
        }
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let active = r.take_bool()?;
        if active != self.is_active() {
            return Err(svc_types::CkptError::corrupt(
                "fault-injector attachment disagrees with the checkpoint",
            ));
        }
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut st = inner.borrow_mut();
        let expected = st.thresholds;
        st.thresholds.restore_state(r)?;
        if st.thresholds != expected {
            return Err(svc_types::CkptError::corrupt(
                "fault thresholds disagree with the configured rates",
            ));
        }
        st.max_penalty.restore_state(r)?;
        st.streams.restore_state(r)?;
        st.injected.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let f = Faults::disabled();
        assert!(!f.is_active());
        for site in FaultSite::EVERY {
            assert_eq!(f.inject(site), None);
        }
        assert_eq!(f.total_injected(), 0);
    }

    #[test]
    fn empty_config_is_disabled() {
        assert!(!Faults::new(&FaultConfig::default(), 1).is_active());
        let cfg = FaultConfig::parse("").unwrap();
        assert!(cfg.is_empty());
    }

    #[test]
    fn spec_parsing() {
        let cfg = FaultConfig::parse("bus_drop=0.5, mshr_fail=0.25, penalty=3").unwrap();
        assert_eq!(cfg.rates[FaultSite::BusDrop as usize], 0.5);
        assert_eq!(cfg.rates[FaultSite::MshrFail as usize], 0.25);
        assert_eq!(cfg.rates[FaultSite::BusDelay as usize], 0.0);
        assert_eq!(cfg.max_penalty, 3);
        let all = FaultConfig::parse("all=0.01").unwrap();
        assert!(all.rates.iter().all(|&r| r == 0.01));
        assert!(FaultConfig::parse("bogus=0.1").is_err());
        assert!(FaultConfig::parse("bus_drop=2.0").is_err());
        assert!(FaultConfig::parse("bus_drop").is_err());
        assert!(FaultConfig::parse("penalty=0").is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::parse("all=0.3").unwrap();
        let a = Faults::new(&cfg, 99);
        let b = Faults::new(&cfg, 99);
        for _ in 0..2000 {
            for site in FaultSite::EVERY {
                assert_eq!(a.inject(site), b.inject(site));
            }
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(a.total_injected() > 0, "rate 0.3 fires within 2000 draws");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let cfg = FaultConfig::parse("all=1.0").unwrap();
        let f = Faults::new(&cfg, 7);
        // Every site fires at rate 1.0 and counts independently.
        for site in FaultSite::EVERY {
            assert!(f.inject(site).is_some());
            assert_eq!(f.injected(site), 1);
        }
        assert_eq!(f.total_injected(), NUM_SITES as u64);
    }

    #[test]
    fn penalties_are_bounded_and_positive() {
        let cfg = FaultConfig::parse("all=1.0,penalty=5").unwrap();
        let f = Faults::new(&cfg, 3);
        for _ in 0..100 {
            for site in FaultSite::EVERY {
                let p = f.inject(site).unwrap();
                assert!((1..=5).contains(&p));
            }
        }
    }

    #[test]
    fn clones_share_streams_and_counters() {
        let cfg = FaultConfig::parse("bus_delay=1.0").unwrap();
        let a = Faults::new(&cfg, 1);
        let b = a.clone();
        a.inject(FaultSite::BusDelay);
        b.inject(FaultSite::BusDelay);
        assert_eq!(a.injected(FaultSite::BusDelay), 2);
        assert_eq!(b.injected(FaultSite::BusDelay), 2);
    }

    #[test]
    fn counts_are_labelled_in_stable_order() {
        let f = Faults::new(&FaultConfig::uniform(1.0), 2);
        f.inject(FaultSite::VclDelay);
        let counts = f.counts();
        assert_eq!(counts.len(), NUM_SITES);
        assert_eq!(counts[0].0, "bus_drop");
        assert_eq!(counts[NUM_SITES - 1], ("vcl_delay", 1));
    }

    #[test]
    fn storm_schedule_phases() {
        let s = StormSchedule::parse("period=8,duration=2,rate=0.5,penalty=6").unwrap();
        // Stormy ticks are the last `duration` of each period.
        for t in [6, 7, 14, 15] {
            assert!(s.active(t), "tick {t} should be stormy");
        }
        for t in [0, 1, 5, 8, 13] {
            assert!(!s.active(t), "tick {t} should be calm");
        }
        assert_eq!(s.storm_index(6), 0);
        assert_eq!(s.storm_index(14), 1);
        assert_eq!(s.config().max_penalty, 6);
        assert!(!s.config().is_empty());
        assert_eq!(StormSchedule::parse(&s.spec()).unwrap(), s);
    }

    #[test]
    fn storm_schedule_rejects_bad_specs() {
        assert!(StormSchedule::parse("period=0").is_err());
        assert!(StormSchedule::parse("duration=9,period=4").is_err());
        assert!(StormSchedule::parse("rate=1.5").is_err());
        assert!(StormSchedule::parse("bogus=1").is_err());
        assert_eq!(StormSchedule::parse("").unwrap(), StormSchedule::default());
    }
}
