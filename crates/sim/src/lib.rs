//! Simulation kernel utilities for the SVC reproduction.
//!
//! Everything in this crate is deliberately dependency-free and
//! deterministic:
//!
//! * [`rng`] — seedable pseudo-random number generators (SplitMix64 and
//!   xoshiro256\*\*) implemented from the public-domain reference
//!   algorithms, so that every workload and every experiment is exactly
//!   reproducible from a seed;
//! * [`stats`] — counters, running means, and histograms used for
//!   simulator-side measurements;
//! * [`table`] — plain-text table rendering used by the experiment harness
//!   to print the paper's tables and figure series;
//! * [`trace`] — cycle-stamped, category-filtered event tracing with a
//!   bounded ring buffer and text/JSONL/Chrome-trace sinks;
//! * [`metrics`] — a unified registry of named counter/gauge/histogram
//!   metrics that subsystems export into;
//! * [`forensics`] — causal squash-chain and line-history reconstruction
//!   over recorded traces;
//! * [`fault`] — deterministic fault injection: per-site SplitMix64
//!   streams derived from the run seed, threaded through the memory
//!   system and engine as a zero-cost-when-disabled handle;
//! * [`profile`] — the cycle-accounting profiler: per-PU stall
//!   attribution into conservation-checked buckets, wasted-work
//!   metering, and an interval time-series sampler;
//! * [`epoch`] — a deterministic epoch-barrier worker pool: per-epoch
//!   job batches fan out over persistent threads and come back in job
//!   order, so results are independent of thread count;
//! * [`checkpoint`] — crash-safe checkpoint files: a versioned,
//!   checksummed container, atomic tmp+fsync+rename writes, and a bounded
//!   on-disk ring with newest-valid recovery;
//! * [`telemetry`] — a tiny `std::net`-only HTTP server exporting live
//!   soak-run state: `/metrics` (Prometheus text exposition),
//!   `/profile` (rolling interval JSON), `/healthz`.
//!
//! # Example
//!
//! ```
//! use svc_sim::rng::Xoshiro256;
//! let mut a = Xoshiro256::seed_from(42);
//! let mut b = Xoshiro256::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range(0..10);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod epoch;
pub mod fault;
pub mod forensics;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod table;
pub mod telemetry;
pub mod trace;
