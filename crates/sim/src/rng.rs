//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed — a squash at
//! cycle N must happen identically on every run — so the workload and
//! predictor models use these small, well-known generators instead of an
//! external crate with an unstable stream guarantee.
//!
//! [`SplitMix64`] is used for seed expansion; [`Xoshiro256`]
//! (xoshiro256\*\*) is the general-purpose generator. Both are direct
//! transcriptions of Blackman & Vigna's public-domain reference code.

use core::ops::Range;

/// SplitMix64: a tiny, fast generator used here to expand a single `u64`
/// seed into the larger state of [`Xoshiro256`], and usable on its own for
/// low-stakes decisions.
///
/// # Example
///
/// ```
/// use svc_sim::rng::SplitMix64;
/// let mut g = SplitMix64::new(1);
/// assert_ne!(g.next_u64(), g.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All 2^64 seeds are valid.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workhorse generator for workload synthesis.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded via
/// [`SplitMix64`] as the authors recommend, which also guarantees the state
/// is never all-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64.
    pub fn seed_from(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` in `range` (half-open). Uses Lemire's multiply-shift
    /// rejection method, so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Lemire's method: rejection in the low word keeps it unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            if low >= span {
                return range.start + (m >> 64) as u64;
            }
            let threshold = span.wrapping_neg() % span;
            if low >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_index(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples a geometric-ish task/run length: `1 + floor(Exp(mean-1))`,
    /// clamped to `max`. Used for task-size and run-length distributions in
    /// the workload models.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or `mean < 1.0`.
    pub fn gen_length(&mut self, mean: f64, max: u64) -> u64 {
        assert!(max > 0, "max must be positive");
        assert!(mean >= 1.0, "mean length must be at least 1");
        let lambda = 1.0 / (mean - 1.0).max(1e-9);
        let u = 1.0 - self.gen_f64(); // (0, 1]
        let e = -u.ln() / lambda;
        (1 + e as u64).min(max)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(0..i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for SplitMix64 {
    fn default() -> SplitMix64 {
        SplitMix64::new(0)
    }
}

impl svc_types::Checkpointable for SplitMix64 {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.state.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.state.restore_state(r)
    }
}

impl Default for Xoshiro256 {
    fn default() -> Xoshiro256 {
        Xoshiro256::seed_from(0)
    }
}

impl svc_types::Checkpointable for Xoshiro256 {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.s.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.s.restore_state(r)?;
        if self.s == [0; 4] {
            return Err(svc_types::CkptError::corrupt(
                "all-zero xoshiro256 state is unreachable",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference implementation.
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Known first output for seed 0 of splitmix64.
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut g = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            let x = g.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut g = Xoshiro256::seed_from(3);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[g.gen_index(0..8)] += 1;
        }
        let expect = n as f64 / 8.0;
        for b in buckets {
            assert!(
                (b as f64 - expect).abs() < expect * 0.06,
                "bucket {b} too far from {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Xoshiro256::seed_from(0).gen_range(5..5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from(11);
        for _ in 0..10_000 {
            let x = g.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut g = Xoshiro256::seed_from(13);
        let n = 50_000;
        let hits = (0..n).filter(|_| g.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
        assert!(!(0..100).any(|_| g.gen_bool(0.0)));
        assert!((0..100).all(|_| g.gen_bool(1.0)));
    }

    #[test]
    fn gen_length_mean_and_clamp() {
        let mut g = Xoshiro256::seed_from(17);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.gen_length(30.0, 1000)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 30.0).abs() < 1.5, "mean = {mean}");
        assert!((0..1000).all(|_| g.gen_length(5.0, 3) <= 3));
        assert!((0..1000).all(|_| g.gen_length(1.0, 10) >= 1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = Xoshiro256::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it almost certainly moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
