//! A tiny dependency-free HTTP exporter for live soak telemetry.
//!
//! The simulator core is single-threaded (its instrumentation handles —
//! [`Tracer`], [`Faults`], [`Profiler`] — share `Rc<RefCell<…>>` cores
//! and are deliberately not `Send`), so live export works by *snapshot
//! hand-off*: the soak loop periodically renders plain strings into a
//! [`SharedSnapshot`] (an `Arc<Mutex<…>>` of pre-rendered bodies), and a
//! single background accept thread serves them verbatim:
//!
//! * `GET /metrics` — Prometheus text exposition format (version 0.0.4),
//!   rendered by [`MetricsRegistry::render_prometheus`];
//! * `GET /profile` — a rolling `svc-profile/v1` JSON window of the
//!   profiler's interval samples;
//! * `GET /healthz` — watchdog status and fault-campaign recovery counts
//!   as JSON.
//!
//! Everything uses `std::net` only — no external HTTP dependency, in the
//! spirit of the repo's offline build. One request per connection
//! (`Connection: close`), which is all a scrape loop needs.
//!
//! [`Tracer`]: crate::trace::Tracer
//! [`Faults`]: crate::fault::Faults
//! [`Profiler`]: crate::profile::Profiler
//! [`MetricsRegistry::render_prometheus`]: crate::metrics::MetricsRegistry::render_prometheus

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head we will buffer before answering; scrapes are
/// tiny, so anything bigger is junk we can cut off.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Longest request line we will parse (a scrape's is under 40 bytes);
/// longer ones are answered with 431 instead of being processed.
const MAX_REQUEST_LINE: usize = 1024;

/// The pre-rendered response bodies the server hands out. The producer
/// (the soak loop) re-renders these after every slice; readers get
/// whichever snapshot was last published — a scrape is never blocked on
/// the simulator and never sees a half-written body.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Body of `/metrics` (Prometheus text exposition format).
    pub metrics_text: String,
    /// Body of `/profile` (`svc-profile/v1` JSON).
    pub profile_json: String,
    /// Body of `/healthz` (JSON).
    pub healthz_json: String,
}

/// Shared handle between the producer (soak loop) and the server thread.
pub type SharedSnapshot = Arc<Mutex<TelemetrySnapshot>>;

/// A fresh, empty [`SharedSnapshot`].
pub fn shared_snapshot() -> SharedSnapshot {
    Arc::new(Mutex::new(TelemetrySnapshot::default()))
}

/// A running telemetry HTTP server: one listener, one accept thread.
///
/// Dropping the server (or calling [`shutdown`](TelemetryServer::shutdown))
/// stops the thread promptly: the stop flag is raised and a wake-up
/// connection is made so the blocking `accept` returns.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `shared` in a background thread.
    ///
    /// A transiently busy port (`AddrInUse` — e.g. the previous soak's
    /// socket still in TIME_WAIT after a crash-restart) is retried a few
    /// times with backoff before giving up; any other bind error is
    /// immediately fatal.
    pub fn bind(addr: &str, shared: SharedSnapshot) -> std::io::Result<TelemetryServer> {
        let listener = bind_with_retry(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("svc-telemetry".into())
            .spawn(move || serve_loop(listener, shared, flag))?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved if `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bounded bind retry: `AddrInUse` backs off and retries (40 ms, 80 ms,
/// … doubling), anything else fails immediately.
fn bind_with_retry(addr: &str) -> std::io::Result<TcpListener> {
    const ATTEMPTS: u32 = 5;
    let mut backoff = Duration::from_millis(40);
    for attempt in 0.. {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempt + 1 < ATTEMPTS => {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop exits by return")
}

fn serve_loop(listener: TcpListener, shared: SharedSnapshot, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            // Each connection gets its own handler thread, so one
            // stalled or malicious client can tie up at most its own
            // 5-second timeout, never the accept loop — `/metrics`
            // stays scrapeable throughout. Per-connection errors
            // (client hung up mid-request, timeout) only affect that
            // scrape.
            let snap = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("svc-telemetry-conn".into())
                .spawn(move || {
                    let _ = handle_conn(stream, &snap);
                });
            if spawned.is_err() {
                // Out of threads: drop the connection and keep
                // accepting rather than dying.
                continue;
            }
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &SharedSnapshot) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let mut oversized = false;
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            oversized = true;
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("").split('?').next().unwrap_or("");
    let (status, content_type, body) = if oversized || request_line.len() > MAX_REQUEST_LINE {
        (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "request too large\n".to_string(),
        )
    } else if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        // A poisoned lock (producer panicked) serves empty bodies rather
        // than killing the exporter.
        let snap = shared.lock().map(|s| s.clone()).unwrap_or_default();
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                snap.metrics_text,
            ),
            "/profile" => ("200 OK", "application/json", snap.profile_json),
            "/healthz" => ("200 OK", "application/json", snap.healthz_json),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics, /profile, /healthz)\n".to_string(),
            ),
        }
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_snapshot_bodies_and_404s() {
        let shared = shared_snapshot();
        shared.lock().unwrap().metrics_text = "# TYPE up gauge\nup 1\n".into();
        shared.lock().unwrap().healthz_json = "{\"status\": \"ok\"}".into();
        let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.ends_with("up 1\n"));

        let health = get(addr, "/healthz");
        assert!(health.contains("application/json"));
        assert!(health.ends_with("{\"status\": \"ok\"}"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        // Producer updates are visible to later scrapes.
        shared.lock().unwrap().metrics_text = "up 2\n".into();
        assert!(get(addr, "/metrics").ends_with("up 2\n"));

        server.shutdown();
    }

    #[test]
    fn stalled_client_does_not_wedge_scrapes() {
        let shared = shared_snapshot();
        shared.lock().unwrap().metrics_text = "up 1\n".into();
        let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();

        // Open connections that never send a request. With a serial
        // accept loop each would hold the server for its full 5 s read
        // timeout; with per-connection handlers a real scrape gets
        // through immediately.
        let _stalled: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let started = std::time::Instant::now();
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "scrape blocked behind stalled clients ({:?})",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn oversized_requests_are_cut_off() {
        let shared = shared_snapshot();
        let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();

        // A request line beyond the cap gets a 431, not a parse.
        let mut s = TcpStream::connect(addr).unwrap();
        let long = "x".repeat(2 * MAX_REQUEST_LINE);
        write!(s, "GET /{long} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");

        // A head that never terminates is cut off at the buffer cap.
        let mut s = TcpStream::connect(addr).unwrap();
        let junk = vec![b'a'; MAX_REQUEST_BYTES + 512];
        s.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        s.write_all(&junk).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");
        server.shutdown();
    }
}
