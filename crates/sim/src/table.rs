//! Plain-text table rendering for the experiment harness.
//!
//! The harness binaries print the paper's tables and figure series as
//! aligned text tables; this module keeps the formatting in one place.
//!
//! # Example
//!
//! ```
//! use svc_sim::table::Table;
//! let mut t = Table::new(vec!["Benchmark".into(), "IPC".into()]);
//! t.row(vec!["compress".into(), format!("{:.2}", 2.5)]);
//! let s = t.render();
//! assert!(s.contains("compress"));
//! assert!(s.contains("2.50"));
//! ```

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Table {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if `cells` has more entries than the header.
    pub fn row(&mut self, mut cells: Vec<String>) {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, rows; first column
    /// left-aligned, the rest right-aligned (numeric convention).
    ///
    /// Multi-word headers (long metric identifiers like
    /// `"mshr combine rate"`) wrap at spaces onto extra header lines
    /// instead of widening their column: a column is only as wide as its
    /// data and the longest single header *word*, so narrow numeric
    /// columns stay narrow. Wrapped header lines are bottom-aligned
    /// against the separator.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        // Data width first; a header only forces width through its
        // longest word, not its full phrase.
        let mut widths: Vec<usize> = self
            .header
            .iter()
            .map(|h| {
                h.split_whitespace()
                    .map(|w| w.chars().count())
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        // Greedy-wrap each header into lines no wider than its column.
        let wrapped: Vec<Vec<String>> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let mut lines: Vec<String> = Vec::new();
                for word in h.split_whitespace() {
                    match lines.last_mut() {
                        Some(last)
                            if last.chars().count() + 1 + word.chars().count() <= widths[i] =>
                        {
                            last.push(' ');
                            last.push_str(word);
                        }
                        _ => lines.push(word.to_string()),
                    }
                }
                if lines.is_empty() {
                    lines.push(String::new());
                }
                lines
            })
            .collect();
        let header_lines = wrapped.iter().map(Vec::len).max().unwrap_or(1);
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        for li in 0..header_lines {
            // Bottom-align: column with fewer lines leaves its top blank.
            let cells: Vec<String> = wrapped
                .iter()
                .map(|lines| {
                    let offset = header_lines - lines.len();
                    if li >= offset {
                        lines[li - offset].clone()
                    } else {
                        String::new()
                    }
                })
                .collect();
            out.push_str(&fmt_row(&cells, &widths));
            out.push('\n');
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio with three decimals, the precision the paper's Tables 2
/// and 3 use.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an IPC with two decimals, matching the paper's figures.
pub fn fmt_ipc(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage difference, e.g. `+8.1%`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned second column: "1" should be preceded by a space.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.render(); // must not panic
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn long_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
    }

    #[test]
    fn multi_word_headers_wrap_instead_of_widening() {
        let mut t = Table::new(vec![
            "memory".into(),
            "mshr combine rate".into(),
            "bus utilization".into(),
        ]);
        t.row(vec!["svc".into(), "0.12".into(), "0.55".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Three header lines ("mshr combine rate" needs three at width 7,
        // "bus utilization" needs two at width 11), then separator + row.
        let sep = lines.iter().position(|l| l.starts_with('-')).unwrap();
        assert!(sep >= 2, "multi-word headers wrapped onto extra lines");
        // Column width follows the data/longest word, not the full phrase.
        let width = lines[sep].len();
        assert!(
            width < "memory".len() + "mshr combine rate".len() + "bus utilization".len(),
            "columns not widened to whole phrases (total {width})"
        );
        // Every header word survives the wrap.
        let header_text = lines[..sep].join(" ");
        for word in ["memory", "mshr", "combine", "rate", "bus", "utilization"] {
            assert!(header_text.contains(word), "missing header word {word}");
        }
        // Bottom alignment: the last header line holds the last words.
        assert!(lines[sep - 1].contains("rate"));
        // Data row still aligned within the separator width.
        assert!(lines[sep + 1].len() <= width);
    }

    #[test]
    fn single_line_headers_render_one_header_line() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(0.0314), "0.031");
        assert_eq!(fmt_ipc(2.345), "2.35");
        assert_eq!(fmt_pct(0.081), "+8.1%");
        assert_eq!(fmt_pct(-0.02), "-2.0%");
    }
}
