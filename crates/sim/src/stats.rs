//! Measurement helpers: running means and histograms.
//!
//! `svc_types::MemStats` carries the memory-system event counts; the types
//! here serve the execution engine and the harness for everything else
//! (task sizes, squash distances, latency distributions, IPC windows).

/// Incremental mean/min/max over a stream of samples.
///
/// # Example
///
/// ```
/// use svc_sim::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Running {
        Running::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample; 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl svc_types::Checkpointable for Running {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.count.save_state(w);
        self.sum.save_state(w);
        self.min.save_state(w);
        self.max.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.count.restore_state(r)?;
        self.sum.restore_state(r)?;
        self.min.restore_state(r)?;
        self.max.restore_state(r)
    }
}

/// A fixed-bucket histogram of `u64` samples with an overflow bucket.
///
/// Buckets are `[i*width, (i+1)*width)`; samples at or beyond
/// `buckets*width` land in the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `buckets` is zero.
    pub fn new(width: u64, buckets: usize) -> Histogram {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(sample);
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The width of each bucket.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// All bucket counts, in order (excluding the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded sample values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of regular buckets (excluding the overflow bucket).
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Exclusive upper bound of bucket `i`: `(i + 1) * width`. A sample
    /// `s` lands in bucket `i` iff `bucket_bound(i.wrapping_sub(1)) <= s
    /// < bucket_bound(i)` — the boundary vocabulary the Prometheus-style
    /// exposition renderer and [`quantile`](Histogram::quantile) share.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bound(&self, i: usize) -> u64 {
        assert!(i < self.counts.len(), "bucket index out of range");
        (i as u64 + 1) * self.width
    }

    /// Cumulative counts: element `i` is the number of samples strictly
    /// below [`bucket_bound(i)`](Histogram::bucket_bound). The last
    /// element plus [`overflow`](Histogram::overflow) equals
    /// [`total`](Histogram::total).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Folds another histogram of identical shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "bucket widths must match");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket counts must match"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The first sample value not representable by a regular bucket:
    /// `buckets * width`. [`quantile`](Histogram::quantile) returns this
    /// value as its documented sentinel whenever the requested quantile
    /// falls in the overflow bucket, where the true sample values are
    /// unknown.
    pub fn overflow_threshold(&self) -> u64 {
        self.counts.len() as u64 * self.width
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples
    /// are `< v + width` — a bucket-resolution quantile.
    ///
    /// Edge cases are explicit rather than arbitrary buckets:
    ///
    /// * an **empty** histogram has no quantiles — returns `None`;
    /// * a quantile landing in the **overflow** bucket (including the
    ///   all-overflow histogram) returns
    ///   `Some(`[`overflow_threshold()`](Histogram::overflow_threshold)`)`,
    ///   a sentinel meaning "at or beyond the tracked range".
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target && *c > 0 {
                return Some(i as u64 * self.width);
            }
        }
        Some(self.overflow_threshold())
    }
}

impl svc_types::Checkpointable for Histogram {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.width.save_state(w);
        self.counts.save_state(w);
        self.overflow.save_state(w);
        self.total.save_state(w);
        self.sum.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let (width, buckets) = (self.width, self.counts.len());
        self.width.restore_state(r)?;
        self.counts.restore_state(r)?;
        self.overflow.restore_state(r)?;
        self.total.restore_state(r)?;
        self.sum.restore_state(r)?;
        if self.width != width || self.counts.len() != buckets {
            return Err(svc_types::CkptError::corrupt(format!(
                "histogram shape {width}x{buckets} disagrees with checkpoint {}x{}",
                self.width,
                self.counts.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn running_tracks_extremes() {
        let mut r = Running::new();
        for x in [5.0, -1.0, 3.0] {
            r.push(x);
        }
        assert_eq!(r.min(), -1.0);
        assert_eq!(r.max(), 5.0);
        assert!((r.mean() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.sum(), 7.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3); // [0,10) [10,20) [20,30) + overflow
        for s in [0, 9, 10, 25, 29, 30, 1000] {
            h.record(s);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for s in 0..100 {
            h.record(s);
        }
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(99));
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::new(1, 4);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_quantile_overflow_sentinel() {
        // All samples land in overflow: every quantile is the sentinel.
        let mut h = Histogram::new(10, 3);
        for s in [30, 99, 1_000] {
            h.record(s);
        }
        assert_eq!(h.overflow_threshold(), 30);
        assert_eq!(h.quantile(0.0), Some(30));
        assert_eq!(h.quantile(0.5), Some(30));
        assert_eq!(h.quantile(1.0), Some(30));

        // Mixed: median in a real bucket, tail in the sentinel.
        let mut h = Histogram::new(10, 3);
        for s in [1, 2, 3, 100, 200] {
            h.record(s);
        }
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(h.overflow_threshold()));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Histogram::new(0, 4);
    }

    #[test]
    fn histogram_bounds_and_cumulative() {
        let mut h = Histogram::new(10, 3);
        for s in [0, 9, 10, 25, 29, 30, 1000] {
            h.record(s);
        }
        assert_eq!(h.num_buckets(), 3);
        assert_eq!(h.bucket_bound(0), 10);
        assert_eq!(h.bucket_bound(2), 30);
        assert_eq!(h.cumulative_counts(), vec![2, 3, 5]);
        assert_eq!(
            h.cumulative_counts().last().unwrap() + h.overflow(),
            h.total()
        );
        assert_eq!(h.sum(), 1103);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new(10, 3);
        let mut b = Histogram::new(10, 3);
        for s in [1, 11, 99] {
            a.record(s);
        }
        for s in [2, 21, 200] {
            b.record(s);
        }
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.bucket(0), 2);
        assert_eq!(a.sum(), 334);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(10, 3);
        a.merge(&Histogram::new(5, 3));
    }
}
