//! Cycle-stamped event tracing for the simulator.
//!
//! Every subsystem (bus, MSHRs, writeback buffers, the SVC line arrays,
//! the VCL, the execution engine) can emit [`TraceEvent`]s through a
//! shared [`Tracer`] handle. Events are stamped with the simulated cycle
//! and a monotonically-increasing sequence number, filtered by a
//! [`Category`] bitmask, and recorded into a bounded ring buffer.
//!
//! Design constraints:
//!
//! * **Zero cost when disabled.** A disabled tracer is a single branch on
//!   an enabled-categories bitmask ([`Tracer::enabled`]); event payloads
//!   are built inside a closure that never runs, so the fast path does no
//!   allocation and no formatting.
//! * **Deterministic.** Emission order is the simulation's execution
//!   order; the sinks ([`render_text`], [`render_jsonl`],
//!   [`render_chrome`]) are pure functions of the recorded events, so a
//!   trace of the same cell at the same seed is byte-identical regardless
//!   of harness thread count.
//! * **Bounded.** The ring keeps the most recent `capacity` events and
//!   counts what it had to drop ([`Tracer::dropped`]).
//!
//! The handle is a cheap clone (`Rc` internally): the engine and every
//! layer of the memory system share one buffer, and the creator keeps a
//! clone to drain records from afterwards. Handles are single-threaded by
//! construction — each harness grid cell builds its own tracer, which is
//! exactly what keeps per-cell traces deterministic under a parallel
//! harness.
//!
//! # Example
//!
//! ```
//! use svc_sim::trace::{Category, TraceEvent, Tracer};
//! use svc_types::{Cycle, PuId, TaskId};
//!
//! let t = Tracer::new(Category::ALL, 1024);
//! t.emit(Cycle(5), Category::Task, || TraceEvent::TaskCommit {
//!     pu: PuId(0),
//!     task: TaskId(3),
//!     instrs: 17,
//! });
//! let records = t.records();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].cycle, 5);
//! ```

use core::fmt;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use svc_types::{Addr, Cycle, LineId, PuId, TaskId};

/// Default ring-buffer capacity (events) when none is configured.
pub const DEFAULT_CAPACITY: usize = 65_536;

// ---------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------

/// Event categories, each one bit of the enabled mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Bus arbitration and transactions.
    Bus,
    /// MSHR allocate / combine / retire.
    Mshr,
    /// Writeback-buffer pushes and stalls.
    Writeback,
    /// Cache-line state-bit transitions (V/S/L/C/T/A masks).
    Line,
    /// Version Ordering List splices and purges.
    Vol,
    /// VCL plan decisions.
    Vcl,
    /// Individual loads and stores with their data source.
    Access,
    /// Task lifecycle: dispatch, commit, squash, violations.
    Task,
    /// Injected faults and watchdog-detected invariant violations.
    Fault,
}

impl Category {
    /// All categories, in emission-stable order.
    pub const EVERY: [Category; 9] = [
        Category::Bus,
        Category::Mshr,
        Category::Writeback,
        Category::Line,
        Category::Vol,
        Category::Vcl,
        Category::Access,
        Category::Task,
        Category::Fault,
    ];

    /// Mask with every category enabled.
    pub const ALL: u32 = (1 << 9) - 1;

    /// This category's bit.
    #[inline]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The short name used in filters and the JSONL `cat` field.
    pub fn name(self) -> &'static str {
        match self {
            Category::Bus => "bus",
            Category::Mshr => "mshr",
            Category::Writeback => "wb",
            Category::Line => "line",
            Category::Vol => "vol",
            Category::Vcl => "vcl",
            Category::Access => "access",
            Category::Task => "task",
            Category::Fault => "fault",
        }
    }

    /// The inverse of [`name`](Category::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<Category> {
        Category::EVERY.into_iter().find(|c| c.name() == name)
    }
}

/// Parses a comma-separated category filter (`"bus,vol,task"`) into a
/// mask. `"all"`, `"*"` and `"1"` enable everything; an empty string
/// enables nothing.
pub fn parse_filter(spec: &str) -> Result<u32, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(0);
    }
    if matches!(spec, "all" | "*" | "1") {
        return Ok(Category::ALL);
    }
    let mut mask = 0;
    for token in spec.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let cat = Category::EVERY
            .into_iter()
            .find(|c| c.name() == token || (token == "writeback" && *c == Category::Writeback))
            .ok_or_else(|| {
                format!(
                    "unknown trace category {token:?} (known: {})",
                    Category::EVERY.map(Category::name).join(", ")
                )
            })?;
        mask |= cat.bit();
    }
    Ok(mask)
}

// ---------------------------------------------------------------------
// Event payloads
// ---------------------------------------------------------------------

/// The kind of bus transaction (who asked and why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// A load miss (BusRead).
    Read,
    /// A store miss (BusWrite).
    Write,
    /// A dirty replacement (BusWback).
    Wback,
    /// A commit-time flush burst (base design).
    Commit,
    /// Anything else (coherence baseline traffic, upgrades).
    Other,
}

impl BusOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            BusOp::Read => "BusRead",
            BusOp::Write => "BusWrite",
            BusOp::Wback => "BusWback",
            BusOp::Commit => "BusCommit",
            BusOp::Other => "BusOther",
        }
    }

    /// The inverse of [`name`](BusOp::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<BusOp> {
        [
            BusOp::Read,
            BusOp::Write,
            BusOp::Wback,
            BusOp::Commit,
            BusOp::Other,
        ]
        .into_iter()
        .find(|op| op.name() == name)
    }
}

/// A load or a store, for [`TraceEvent::Access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// A load.
    Load,
    /// A store.
    Store,
}

impl AccessOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccessOp::Load => "load",
            AccessOp::Store => "store",
        }
    }

    /// The inverse of [`name`](AccessOp::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<AccessOp> {
        match name {
            "load" => Some(AccessOp::Load),
            "store" => Some(AccessOp::Store),
            _ => None,
        }
    }
}

/// Why a task was squashed, for [`TraceEvent::TaskSquash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// The task (or an ancestor) was a wrong task prediction.
    Misprediction,
    /// The fault injector forced a spurious squash (robustness drill).
    Fault,
    /// A memory-dependence violation was detected.
    Violation,
    /// Squashed to free speculative resources for a stalled head.
    Resource,
}

impl SquashCause {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SquashCause::Misprediction => "misprediction",
            SquashCause::Fault => "fault",
            SquashCause::Violation => "violation",
            SquashCause::Resource => "resource",
        }
    }

    /// The inverse of [`name`](SquashCause::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<SquashCause> {
        [
            SquashCause::Misprediction,
            SquashCause::Fault,
            SquashCause::Violation,
            SquashCause::Resource,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// A compact copy of one SVC line's state bits, for before/after diffs in
/// [`TraceEvent::LineTransition`]. Masks are raw bit sets over sub-blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineBits {
    /// Per-sub-block valid (V) bits.
    pub valid: u64,
    /// Per-sub-block store (S) bits.
    pub store: u64,
    /// Per-sub-block load (L) bits.
    pub load: u64,
    /// The commit (C) bit.
    pub committed: bool,
    /// The stale (T) bit.
    pub stale: bool,
    /// The architectural (A) bit.
    pub arch: bool,
    /// The exclusive (X) bit.
    pub exclusive: bool,
}

impl LineBits {
    /// The derived five-state name (paper Figure 18): `I`, `AC`, `AD`,
    /// `PC` or `PD`.
    pub fn state_name(&self) -> &'static str {
        if self.valid == 0 {
            "I"
        } else {
            match (self.committed, self.store == 0) {
                (false, true) => "AC",
                (false, false) => "AD",
                (true, true) => "PC",
                (true, false) => "PD",
            }
        }
    }
}

impl fmt::Display for LineBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(V={:b} S={:b} L={:b} C={} T={} A={} X={})",
            self.state_name(),
            self.valid,
            self.store,
            self.load,
            u8::from(self.committed),
            u8::from(self.stale),
            u8::from(self.arch),
            u8::from(self.exclusive),
        )
    }
}

/// One member of a recorded Version Ordering List.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolEntry {
    /// The PU holding the copy/version.
    pub pu: PuId,
    /// The task currently on that PU, if any.
    pub task: Option<TaskId>,
    /// Whether the member is a *version* (has store data) rather than a
    /// pure copy.
    pub version: bool,
}

/// What changed the VOL, for [`TraceEvent::VolReorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolOp {
    /// Pointers rewritten after a transaction (insert and splice).
    Splice,
    /// Committed members purged from the list.
    Purge,
}

impl VolOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            VolOp::Splice => "splice",
            VolOp::Purge => "purge",
        }
    }

    /// The inverse of [`name`](VolOp::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<VolOp> {
        match name {
            "splice" => Some(VolOp::Splice),
            "purge" => Some(VolOp::Purge),
            _ => None,
        }
    }
}

/// Which VCL planner produced a [`TraceEvent::VclPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// `plan_read` (a BusRead).
    Read,
    /// `plan_write` (a BusWrite).
    Write,
    /// `plan_wback` (a dirty replacement).
    Wback,
}

impl PlanKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Read => "read",
            PlanKind::Write => "write",
            PlanKind::Wback => "wback",
        }
    }

    /// The inverse of [`name`](PlanKind::name), for JSONL re-parsers.
    pub fn from_name(name: &str) -> Option<PlanKind> {
        match name {
            "read" => Some(PlanKind::Read),
            "write" => Some(PlanKind::Write),
            "wback" => Some(PlanKind::Wback),
            _ => None,
        }
    }
}

/// Interns an [`TraceEvent::Access`] `source` string back to the
/// `&'static str` the simulator emits, for JSONL re-parsers. Unknown
/// values intern as `"?"` rather than failing, so a trace from a newer
/// writer still loads.
pub fn intern_access_source(source: &str) -> &'static str {
    match source {
        "local" => "local",
        "transfer" => "transfer",
        "next-level" => "next-level",
        "accepted" => "accepted",
        _ => "?",
    }
}

/// A compressed description of one VCL plan decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSummary {
    /// Which planner ran.
    pub kind: PlanKind,
    /// The requesting PU.
    pub pu: PuId,
    /// The requesting task, if one is assigned.
    pub task: Option<TaskId>,
    /// The line the plan is about.
    pub line: LineId,
    /// Sub-blocks supplied by another cache (cache-to-cache transfer).
    pub fill_from_cache: u32,
    /// Sub-blocks supplied by the next level of memory.
    pub fill_from_memory: u32,
    /// Committed winners flushed to memory.
    pub flush: u32,
    /// Committed lines purged.
    pub purge: u32,
    /// Copies (partially) invalidated.
    pub invalidate: u32,
    /// Copies updated in place (hybrid protocol).
    pub update: u32,
    /// Caches snarfing the fill.
    pub snarfers: u32,
    /// Tasks whose use-before-define this plan exposed (to be squashed).
    pub victims: Vec<TaskId>,
    /// Whether the requestor receives (a copy of) the architectural
    /// version.
    pub arch: bool,
}

/// One traced simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A bus transaction won arbitration.
    BusTransaction {
        /// Transaction kind.
        op: BusOp,
        /// Requesting PU, if attributable.
        pu: Option<PuId>,
        /// Line involved, if attributable.
        line: Option<LineId>,
        /// Cycle the transaction won arbitration.
        start: Cycle,
        /// Cycle the transaction completes.
        done: Cycle,
        /// Extra occupancy beats (e.g. committed-version flush).
        extra: u64,
    },
    /// An MSHR was allocated for a primary miss.
    MshrAllocate {
        /// The missing PU.
        pu: PuId,
        /// The missing line.
        line: LineId,
        /// When the fill data arrives.
        data_ready: Cycle,
        /// Cycles stalled waiting for a free register.
        stalled: u64,
    },
    /// A secondary miss combined into an outstanding register.
    MshrCombine {
        /// The missing PU.
        pu: PuId,
        /// The missing line.
        line: LineId,
        /// When the shared fill arrives.
        data_ready: Cycle,
    },
    /// An MSHR's fill returned and the register retired.
    MshrRetire {
        /// The owning PU.
        pu: PuId,
        /// The filled line.
        line: LineId,
    },
    /// A castout entered (or stalled on) the writeback buffer.
    WritebackPush {
        /// The pushing PU.
        pu: PuId,
        /// Cycle the buffer accepted the entry.
        accepted: Cycle,
        /// Cycles the pusher stalled on a full buffer.
        stalled: u64,
        /// Buffer occupancy after the push.
        occupancy: usize,
    },
    /// One cache line's state bits changed.
    LineTransition {
        /// The cache/PU.
        pu: PuId,
        /// The line.
        line: LineId,
        /// Bits before.
        from: LineBits,
        /// Bits after.
        to: LineBits,
    },
    /// A coherence-baseline (MESI-style) line state change.
    CoherenceTransition {
        /// The cache/PU.
        pu: PuId,
        /// The line.
        line: LineId,
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// The Version Ordering List of a line was rewritten.
    VolReorder {
        /// The line.
        line: LineId,
        /// What kind of rewrite.
        op: VolOp,
        /// The list after the rewrite, oldest first.
        order: Vec<VolEntry>,
    },
    /// The VCL produced a plan.
    VclPlan(PlanSummary),
    /// A load or store completed (or was accepted).
    Access {
        /// The accessing PU.
        pu: PuId,
        /// The accessing task.
        task: TaskId,
        /// Load or store.
        op: AccessOp,
        /// Word address.
        addr: Addr,
        /// Where the data came from (`local`, `transfer`, `next-level`,
        /// `accepted` for stores).
        source: &'static str,
        /// When the access completes.
        done_at: Cycle,
    },
    /// A store exposed a use-before-define in a younger task.
    Violation {
        /// The storing PU.
        pu: PuId,
        /// The storing task.
        task: TaskId,
        /// The oldest violated task (it and everything younger squash).
        victim: TaskId,
        /// The conflicting word address.
        addr: Addr,
    },
    /// The sequencer dispatched a task to a PU.
    TaskDispatch {
        /// The PU.
        pu: PuId,
        /// The task position.
        task: TaskId,
        /// How many times this position has been squashed before.
        attempt: u32,
        /// Whether this dispatch is a (not yet detected) misprediction.
        wrong_path: bool,
    },
    /// The head task committed.
    TaskCommit {
        /// The PU.
        pu: PuId,
        /// The task.
        task: TaskId,
        /// Instructions the task retired.
        instrs: u64,
    },
    /// A task was squashed.
    TaskSquash {
        /// The PU it was running on.
        pu: PuId,
        /// The squashed task.
        task: TaskId,
        /// Why the squash walk started.
        cause: SquashCause,
        /// The oldest position being re-dispatched (the walk's root).
        restart: TaskId,
        /// When the PU unblocks: it stays stalled on the latency of the
        /// access it was torn down under (the squash-recovery window).
        until: Cycle,
    },
    /// The fault injector fired at one of its sites.
    Fault(crate::fault::FaultEvent),
    /// The invariant watchdog detected a violation.
    InvariantViolation {
        /// The violated invariant's short name.
        kind: &'static str,
        /// The PU involved, if attributable.
        pu: Option<PuId>,
        /// The line involved, if attributable.
        line: Option<LineId>,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::BusTransaction { .. } => Category::Bus,
            TraceEvent::MshrAllocate { .. }
            | TraceEvent::MshrCombine { .. }
            | TraceEvent::MshrRetire { .. } => Category::Mshr,
            TraceEvent::WritebackPush { .. } => Category::Writeback,
            TraceEvent::LineTransition { .. } | TraceEvent::CoherenceTransition { .. } => {
                Category::Line
            }
            TraceEvent::VolReorder { .. } => Category::Vol,
            TraceEvent::VclPlan(_) => Category::Vcl,
            TraceEvent::Access { .. } => Category::Access,
            TraceEvent::Violation { .. }
            | TraceEvent::TaskDispatch { .. }
            | TraceEvent::TaskCommit { .. }
            | TraceEvent::TaskSquash { .. } => Category::Task,
            TraceEvent::Fault(_) | TraceEvent::InvariantViolation { .. } => Category::Fault,
        }
    }
}

/// One recorded event: cycle stamp, global sequence number, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Emission sequence number (total order within a trace).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

// ---------------------------------------------------------------------
// The tracer
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Ring {
    capacity: usize,
    records: Vec<Record>,
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, cycle: Cycle, event: TraceEvent) {
        let record = Record {
            cycle: cycle.0,
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }
}

/// A cheap-to-clone tracing handle. All clones share one ring buffer; a
/// default-constructed tracer is disabled and costs one branch per
/// [`emit`](Tracer::emit).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    mask: u32,
    ring: Option<Rc<RefCell<Ring>>>,
}

/// Tracers compare by enabled mask only; buffer contents are deliberately
/// not part of equality so that simulator components keep their derived
/// `PartialEq` implementations.
impl PartialEq for Tracer {
    fn eq(&self, other: &Tracer) -> bool {
        self.mask == other.mask
    }
}

impl Eq for Tracer {}

impl Tracer {
    /// A disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer recording the categories in `mask` into a ring of
    /// `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero while `mask` is non-empty.
    pub fn new(mask: u32, capacity: usize) -> Tracer {
        if mask == 0 {
            return Tracer::disabled();
        }
        assert!(capacity > 0, "an enabled tracer needs a non-empty ring");
        Tracer {
            mask,
            ring: Some(Rc::new(RefCell::new(Ring {
                capacity,
                records: Vec::new(),
                head: 0,
                next_seq: 0,
                dropped: 0,
            }))),
        }
    }

    /// Builds a tracer from the environment: `SVC_TRACE` holds the
    /// category filter (`all` or `bus,vol,...`; unset or empty disables
    /// tracing, unknown categories disable tracing with a warning) and
    /// `SVC_TRACE_CAP` overrides the ring capacity.
    pub fn from_env() -> Tracer {
        let Some(spec) = std::env::var("SVC_TRACE").ok().filter(|s| !s.is_empty()) else {
            return Tracer::disabled();
        };
        let mask = match parse_filter(&spec) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("SVC_TRACE: {e}; tracing disabled");
                return Tracer::disabled();
            }
        };
        let capacity = std::env::var("SVC_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        Tracer::new(mask, capacity)
    }

    /// Whether `cat` is being recorded — the single branch on the fast
    /// path.
    #[inline]
    pub fn enabled(&self, cat: Category) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Whether any category is being recorded.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.mask != 0
    }

    /// Records the event built by `build` if `cat` is enabled. The
    /// closure only runs (and only allocates) when the category is on.
    #[inline]
    pub fn emit(&self, cycle: Cycle, cat: Category, build: impl FnOnce() -> TraceEvent) {
        if !self.enabled(cat) {
            return;
        }
        if let Some(ring) = &self.ring {
            let event = build();
            ring.borrow_mut().push(cycle, event);
        }
    }

    /// The recorded events, oldest first.
    pub fn records(&self) -> Vec<Record> {
        match &self.ring {
            Some(ring) => ring.borrow().in_order(),
            None => Vec::new(),
        }
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped)
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<6} ",
            self.cycle,
            self.event.category().name()
        )?;
        match &self.event {
            TraceEvent::BusTransaction {
                op,
                pu,
                line,
                start,
                done,
                extra,
            } => {
                write!(f, "{}", op.name())?;
                if let Some(pu) = pu {
                    write!(f, " {pu}")?;
                }
                if let Some(line) = line {
                    write!(f, " line {}", line.0)?;
                }
                write!(f, " start={} done={}", start.0, done.0)?;
                if *extra > 0 {
                    write!(f, " extra={extra}")?;
                }
                Ok(())
            }
            TraceEvent::MshrAllocate {
                pu,
                line,
                data_ready,
                stalled,
            } => {
                write!(f, "alloc {pu} line {} ready={}", line.0, data_ready.0)?;
                if *stalled > 0 {
                    write!(f, " stalled={stalled}")?;
                }
                Ok(())
            }
            TraceEvent::MshrCombine {
                pu,
                line,
                data_ready,
            } => write!(f, "combine {pu} line {} ready={}", line.0, data_ready.0),
            TraceEvent::MshrRetire { pu, line } => write!(f, "retire {pu} line {}", line.0),
            TraceEvent::WritebackPush {
                pu,
                accepted,
                stalled,
                occupancy,
            } => {
                write!(f, "push {pu} accepted={} occ={occupancy}", accepted.0)?;
                if *stalled > 0 {
                    write!(f, " stalled={stalled}")?;
                }
                Ok(())
            }
            TraceEvent::LineTransition { pu, line, from, to } => {
                write!(f, "{pu} line {} {from} -> {to}", line.0)
            }
            TraceEvent::CoherenceTransition { pu, line, from, to } => {
                write!(f, "{pu} line {} {from} -> {to}", line.0)
            }
            TraceEvent::VolReorder { line, op, order } => {
                write!(f, "{} line {} [", op.name(), line.0)?;
                for (i, e) in order.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{}", e.pu)?;
                    if let Some(t) = e.task {
                        write!(f, "/T{}", t.0)?;
                    }
                    if e.version {
                        write!(f, "*")?;
                    }
                }
                write!(f, "]")
            }
            TraceEvent::VclPlan(p) => {
                write!(
                    f,
                    "plan_{} {} line {} fill(cache={} mem={}) flush={} purge={} inval={} \
                     update={} snarf={} arch={}",
                    p.kind.name(),
                    p.pu,
                    p.line.0,
                    p.fill_from_cache,
                    p.fill_from_memory,
                    p.flush,
                    p.purge,
                    p.invalidate,
                    p.update,
                    p.snarfers,
                    u8::from(p.arch),
                )?;
                if !p.victims.is_empty() {
                    write!(f, " victims=")?;
                    for (i, v) in p.victims.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "T{}", v.0)?;
                    }
                }
                Ok(())
            }
            TraceEvent::Access {
                pu,
                task,
                op,
                addr,
                source,
                done_at,
            } => write!(
                f,
                "{} {pu}/T{} addr {} src={source} done={}",
                op.name(),
                task.0,
                addr.0,
                done_at.0
            ),
            TraceEvent::Violation {
                pu,
                task,
                victim,
                addr,
            } => write!(
                f,
                "VIOLATION store by {pu}/T{} at addr {} squashes T{}",
                task.0, addr.0, victim.0
            ),
            TraceEvent::TaskDispatch {
                pu,
                task,
                attempt,
                wrong_path,
            } => {
                write!(f, "dispatch T{} -> {pu} attempt={attempt}", task.0)?;
                if *wrong_path {
                    write!(f, " (wrong-path)")?;
                }
                Ok(())
            }
            TraceEvent::TaskCommit { pu, task, instrs } => {
                write!(f, "commit T{} on {pu} ({instrs} instrs)", task.0)
            }
            TraceEvent::TaskSquash {
                pu,
                task,
                cause,
                restart,
                until,
            } => write!(
                f,
                "squash T{} on {pu} cause={} restart=T{} until={}",
                task.0,
                cause.name(),
                restart.0,
                until.0
            ),
            TraceEvent::Fault(e) => {
                write!(f, "FAULT {}", e.site.name())?;
                if let Some(pu) = e.pu {
                    write!(f, " {pu}")?;
                }
                if let Some(line) = e.line {
                    write!(f, " line {}", line.0)?;
                }
                write!(f, " penalty={}", e.penalty)
            }
            TraceEvent::InvariantViolation {
                kind,
                pu,
                line,
                detail,
            } => {
                write!(f, "INVARIANT {kind}")?;
                if let Some(pu) = pu {
                    write!(f, " {pu}")?;
                }
                if let Some(line) = line {
                    write!(f, " line {}", line.0)?;
                }
                write!(f, ": {detail}")
            }
        }
    }
}

/// Renders records as a human-readable log, one line per event.
pub fn render_text(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{r}");
    }
    out
}

fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_json_into(&mut out, s);
    out
}

fn line_bits_json(out: &mut String, b: &LineBits) {
    let _ = write!(
        out,
        "{{\"state\":\"{}\",\"v\":{},\"s\":{},\"l\":{},\"c\":{},\"t\":{},\"a\":{},\"x\":{}}}",
        b.state_name(),
        b.valid,
        b.store,
        b.load,
        u8::from(b.committed),
        u8::from(b.stale),
        u8::from(b.arch),
        u8::from(b.exclusive),
    );
}

fn event_fields_json(out: &mut String, event: &TraceEvent) {
    match event {
        TraceEvent::BusTransaction {
            op,
            pu,
            line,
            start,
            done,
            extra,
        } => {
            let _ = write!(out, "\"ev\":\"bus\",\"op\":\"{}\"", op.name());
            if let Some(pu) = pu {
                let _ = write!(out, ",\"pu\":{}", pu.0);
            }
            if let Some(line) = line {
                let _ = write!(out, ",\"line\":{}", line.0);
            }
            let _ = write!(
                out,
                ",\"start\":{},\"done\":{},\"extra\":{extra}",
                start.0, done.0
            );
        }
        TraceEvent::MshrAllocate {
            pu,
            line,
            data_ready,
            stalled,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"mshr_alloc\",\"pu\":{},\"line\":{},\"ready\":{},\"stalled\":{stalled}",
                pu.0, line.0, data_ready.0
            );
        }
        TraceEvent::MshrCombine {
            pu,
            line,
            data_ready,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"mshr_combine\",\"pu\":{},\"line\":{},\"ready\":{}",
                pu.0, line.0, data_ready.0
            );
        }
        TraceEvent::MshrRetire { pu, line } => {
            let _ = write!(
                out,
                "\"ev\":\"mshr_retire\",\"pu\":{},\"line\":{}",
                pu.0, line.0
            );
        }
        TraceEvent::WritebackPush {
            pu,
            accepted,
            stalled,
            occupancy,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"wb_push\",\"pu\":{},\"accepted\":{},\"stalled\":{stalled},\"occ\":{occupancy}",
                pu.0, accepted.0
            );
        }
        TraceEvent::LineTransition { pu, line, from, to } => {
            let _ = write!(
                out,
                "\"ev\":\"line\",\"pu\":{},\"line\":{},\"from\":",
                pu.0, line.0
            );
            line_bits_json(out, from);
            out.push_str(",\"to\":");
            line_bits_json(out, to);
        }
        TraceEvent::CoherenceTransition { pu, line, from, to } => {
            let _ = write!(
                out,
                "\"ev\":\"smp_line\",\"pu\":{},\"line\":{},\"from\":\"{from}\",\"to\":\"{to}\"",
                pu.0, line.0
            );
        }
        TraceEvent::VolReorder { line, op, order } => {
            let _ = write!(
                out,
                "\"ev\":\"vol\",\"line\":{},\"op\":\"{}\",\"order\":[",
                line.0,
                op.name()
            );
            for (i, e) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"pu\":{}", e.pu.0);
                if let Some(t) = e.task {
                    let _ = write!(out, ",\"task\":{}", t.0);
                }
                let _ = write!(out, ",\"ver\":{}}}", e.version);
            }
            out.push(']');
        }
        TraceEvent::VclPlan(p) => {
            let _ = write!(
                out,
                "\"ev\":\"plan\",\"kind\":\"{}\",\"pu\":{}",
                p.kind.name(),
                p.pu.0
            );
            if let Some(t) = p.task {
                let _ = write!(out, ",\"task\":{}", t.0);
            }
            let _ = write!(
                out,
                ",\"line\":{},\"fill_cache\":{},\"fill_mem\":{},\"flush\":{},\"purge\":{},\
                 \"inval\":{},\"update\":{},\"snarf\":{},\"arch\":{},\"victims\":[",
                p.line.0,
                p.fill_from_cache,
                p.fill_from_memory,
                p.flush,
                p.purge,
                p.invalidate,
                p.update,
                p.snarfers,
                p.arch,
            );
            for (i, v) in p.victims.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", v.0);
            }
            out.push(']');
        }
        TraceEvent::Access {
            pu,
            task,
            op,
            addr,
            source,
            done_at,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"access\",\"op\":\"{}\",\"pu\":{},\"task\":{},\"addr\":{},\
                 \"src\":\"{source}\",\"done\":{}",
                op.name(),
                pu.0,
                task.0,
                addr.0,
                done_at.0
            );
        }
        TraceEvent::Violation {
            pu,
            task,
            victim,
            addr,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"violation\",\"pu\":{},\"task\":{},\"victim\":{},\"addr\":{}",
                pu.0, task.0, victim.0, addr.0
            );
        }
        TraceEvent::TaskDispatch {
            pu,
            task,
            attempt,
            wrong_path,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"dispatch\",\"pu\":{},\"task\":{},\"attempt\":{attempt},\"wrong\":{wrong_path}",
                pu.0, task.0
            );
        }
        TraceEvent::TaskCommit { pu, task, instrs } => {
            let _ = write!(
                out,
                "\"ev\":\"commit\",\"pu\":{},\"task\":{},\"instrs\":{instrs}",
                pu.0, task.0
            );
        }
        TraceEvent::TaskSquash {
            pu,
            task,
            cause,
            restart,
            until,
        } => {
            let _ = write!(
                out,
                "\"ev\":\"squash\",\"pu\":{},\"task\":{},\"cause\":\"{}\",\"restart\":{},\"until\":{}",
                pu.0,
                task.0,
                cause.name(),
                restart.0,
                until.0
            );
        }
        TraceEvent::Fault(e) => {
            let _ = write!(out, "\"ev\":\"fault\",\"site\":\"{}\"", e.site.name());
            if let Some(pu) = e.pu {
                let _ = write!(out, ",\"pu\":{}", pu.0);
            }
            if let Some(line) = e.line {
                let _ = write!(out, ",\"line\":{}", line.0);
            }
            let _ = write!(out, ",\"penalty\":{}", e.penalty);
        }
        TraceEvent::InvariantViolation {
            kind,
            pu,
            line,
            detail,
        } => {
            let _ = write!(out, "\"ev\":\"invariant\",\"kind\":\"{kind}\"");
            if let Some(pu) = pu {
                let _ = write!(out, ",\"pu\":{}", pu.0);
            }
            if let Some(line) = line {
                let _ = write!(out, ",\"line\":{}", line.0);
            }
            out.push_str(",\"detail\":");
            escape_json_into(out, detail);
        }
    }
}

/// Renders records as JSONL: one compact JSON object per line, stable
/// field order, byte-deterministic for equal inputs.
pub fn render_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"cycle\":{},\"seq\":{},\"cat\":\"{}\",",
            r.cycle,
            r.seq,
            r.event.category().name()
        );
        event_fields_json(&mut out, &r.event);
        out.push_str("}\n");
    }
    out
}

/// Renders records as a Chrome trace-event JSON document (loadable in
/// Perfetto / `chrome://tracing`). Cycles map to microseconds; bus
/// transactions become duration (`X`) events on their PU's track, all
/// other events become instants (`i`). `title` names the process.
pub fn render_chrome(records: &[Record], title: &str) -> String {
    render_chrome_with_counters(records, title, &[])
}

/// [`render_chrome`] plus counter tracks: each `(name, series)` pair
/// becomes a Perfetto counter track (`ph:"C"`) with one value per
/// `(cycle, value)` point — the profiler's interval time series (IPC,
/// bus utilization, outstanding misses, …) rendered alongside the
/// events.
pub fn render_chrome_with_counters(
    records: &[Record],
    title: &str,
    counters: &[(String, Vec<(u64, f64)>)],
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };
    // Process-name metadata record (title is caller-supplied: escape it).
    push(
        format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            escape_json(title)
        ),
        &mut out,
        &mut first,
    );
    for r in records {
        let (tid, name): (u64, &str) = match &r.event {
            TraceEvent::BusTransaction { op, pu, .. } => (pu.map_or(0, |p| p.0 as u64), op.name()),
            TraceEvent::MshrAllocate { pu, .. } => (pu.0 as u64, "mshr_alloc"),
            TraceEvent::MshrCombine { pu, .. } => (pu.0 as u64, "mshr_combine"),
            TraceEvent::MshrRetire { pu, .. } => (pu.0 as u64, "mshr_retire"),
            TraceEvent::WritebackPush { pu, .. } => (pu.0 as u64, "wb_push"),
            TraceEvent::LineTransition { pu, .. } => (pu.0 as u64, "line"),
            TraceEvent::CoherenceTransition { pu, .. } => (pu.0 as u64, "smp_line"),
            TraceEvent::VolReorder { .. } => (99, "vol"),
            TraceEvent::VclPlan(p) => (p.pu.0 as u64, "vcl_plan"),
            TraceEvent::Access { pu, op, .. } => (pu.0 as u64, op.name()),
            TraceEvent::Violation { pu, .. } => (pu.0 as u64, "violation"),
            TraceEvent::TaskDispatch { pu, .. } => (pu.0 as u64, "dispatch"),
            TraceEvent::TaskCommit { pu, .. } => (pu.0 as u64, "commit"),
            TraceEvent::TaskSquash { pu, .. } => (pu.0 as u64, "squash"),
            TraceEvent::Fault(e) => (e.pu.map_or(98, |p| p.0 as u64), "fault"),
            TraceEvent::InvariantViolation { pu, .. } => {
                (pu.map_or(98, |p| p.0 as u64), "invariant")
            }
        };
        let mut args = String::new();
        event_fields_json(&mut args, &r.event);
        let body = match &r.event {
            TraceEvent::BusTransaction { start, done, .. } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}",
                r.event.category().name(),
                start.0,
                done.0.saturating_sub(start.0).max(1),
            ),
            _ => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}",
                r.event.category().name(),
                r.cycle,
            ),
        };
        push(body, &mut out, &mut first);
    }
    for (name, series) in counters {
        let escaped = escape_json(name);
        for &(cycle, value) in series {
            // Perfetto rejects NaN/inf; clamp to 0 like the JSON writer.
            let v = if value.is_finite() { value } else { 0.0 };
            push(
                format!(
                    "{{\"name\":{escaped},\"ph\":\"C\",\"ts\":{cycle},\"pid\":0,\
                     \"args\":{{\"value\":{v}}}}}"
                ),
                &mut out,
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_event(task: u64) -> TraceEvent {
        TraceEvent::TaskCommit {
            pu: PuId(0),
            task: TaskId(task),
            instrs: 10,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_active());
        t.emit(Cycle(1), Category::Task, || unreachable!("must not build"));
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn category_filtering() {
        let t = Tracer::new(Category::Task.bit() | Category::Bus.bit(), 16);
        assert!(t.enabled(Category::Task));
        assert!(t.enabled(Category::Bus));
        assert!(!t.enabled(Category::Vol));
        t.emit(Cycle(1), Category::Task, || commit_event(1));
        t.emit(Cycle(2), Category::Vol, || unreachable!("vol is filtered"));
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event.category(), Category::Task);
    }

    #[test]
    fn clones_share_the_ring() {
        let a = Tracer::new(Category::ALL, 16);
        let b = a.clone();
        a.emit(Cycle(1), Category::Task, || commit_event(1));
        b.emit(Cycle(2), Category::Task, || commit_event(2));
        assert_eq!(a.records().len(), 2);
        assert_eq!(b.records().len(), 2);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::new(Category::ALL, 4);
        for i in 0..10 {
            t.emit(Cycle(i), Category::Task, || commit_event(i));
        }
        let records = t.records();
        assert_eq!(records.len(), 4, "bounded to capacity");
        assert_eq!(t.dropped(), 6);
        // Oldest-first order across the wrap point, with intact seq stamps.
        let cycles: Vec<u64> = records.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn filter_parsing() {
        assert_eq!(parse_filter("all").unwrap(), Category::ALL);
        assert_eq!(parse_filter("*").unwrap(), Category::ALL);
        assert_eq!(parse_filter("1").unwrap(), Category::ALL);
        assert_eq!(parse_filter("").unwrap(), 0);
        assert_eq!(
            parse_filter("bus,vol").unwrap(),
            Category::Bus.bit() | Category::Vol.bit()
        );
        assert_eq!(
            parse_filter("writeback").unwrap(),
            Category::Writeback.bit()
        );
        assert!(parse_filter("bogus").is_err());
    }

    #[test]
    fn jsonl_lines_have_stable_shape() {
        let t = Tracer::new(Category::ALL, 16);
        t.emit(Cycle(3), Category::Bus, || TraceEvent::BusTransaction {
            op: BusOp::Read,
            pu: Some(PuId(1)),
            line: Some(LineId(7)),
            start: Cycle(3),
            done: Cycle(6),
            extra: 0,
        });
        t.emit(Cycle(4), Category::Vol, || TraceEvent::VolReorder {
            line: LineId(7),
            op: VolOp::Splice,
            order: vec![VolEntry {
                pu: PuId(1),
                task: Some(TaskId(2)),
                version: true,
            }],
        });
        let jsonl = render_jsonl(&t.records());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"op\":\"BusRead\""));
        assert!(lines[0].contains("\"cycle\":3"));
        assert!(lines[1].contains("\"order\":[{\"pu\":1,\"task\":2,\"ver\":true}]"));
        // Deterministic: same records, same bytes.
        assert_eq!(jsonl, render_jsonl(&t.records()));
    }

    #[test]
    fn chrome_trace_escapes_titles() {
        let t = Tracer::new(Category::ALL, 4);
        t.emit(Cycle(1), Category::Task, || commit_event(1));
        let doc = render_chrome(&t.records(), "weird \"title\"\nwith\tcontrol\u{1}chars");
        assert!(doc.contains(r#"\"title\""#));
        assert!(doc.contains("\\n"));
        assert!(doc.contains("\\t"));
        assert!(doc.contains("\\u0001"));
        assert!(!doc.contains('\u{1}'), "raw control characters escaped");
    }

    #[test]
    fn text_sink_mentions_every_event() {
        let t = Tracer::new(Category::ALL, 16);
        t.emit(Cycle(1), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(2),
            task: TaskId(5),
            cause: SquashCause::Violation,
            restart: TaskId(4),
            until: Cycle(9),
        });
        let text = render_text(&t.records());
        assert!(text.contains("squash T5"));
        assert!(text.contains("cause=violation"));
        assert!(text.contains("until=9"));
    }

    #[test]
    fn fault_events_render_in_every_sink() {
        use crate::fault::{FaultEvent, FaultSite};
        let t = Tracer::new(Category::Fault.bit(), 16);
        t.emit(Cycle(7), Category::Fault, || {
            TraceEvent::Fault(FaultEvent {
                site: FaultSite::BusDrop,
                pu: Some(PuId(1)),
                line: Some(LineId(3)),
                penalty: 4,
            })
        });
        t.emit(Cycle(8), Category::Fault, || {
            TraceEvent::InvariantViolation {
                kind: "state_bits",
                pu: Some(PuId(2)),
                line: None,
                detail: "store bits outside valid \"mask\"".to_string(),
            }
        });
        let text = render_text(&t.records());
        assert!(text.contains("FAULT bus_drop PU1 line 3 penalty=4"));
        assert!(text.contains("INVARIANT state_bits PU2:"));
        let jsonl = render_jsonl(&t.records());
        assert!(jsonl.contains("\"ev\":\"fault\",\"site\":\"bus_drop\""));
        assert!(jsonl.contains("\"ev\":\"invariant\",\"kind\":\"state_bits\""));
        assert!(jsonl.contains("\\\"mask\\\""), "detail is escaped");
        assert_eq!(parse_filter("fault").unwrap(), Category::Fault.bit());
        let chrome = render_chrome(&t.records(), "faults");
        assert!(chrome.contains("\"name\":\"invariant\""));
    }

    #[test]
    fn line_bits_state_names() {
        let mut b = LineBits::default();
        assert_eq!(b.state_name(), "I");
        b.valid = 0b11;
        assert_eq!(b.state_name(), "AC");
        b.store = 0b01;
        assert_eq!(b.state_name(), "AD");
        b.committed = true;
        assert_eq!(b.state_name(), "PD");
        b.store = 0;
        assert_eq!(b.state_name(), "PC");
        assert!(format!("{b}").contains("PC"));
    }
}
