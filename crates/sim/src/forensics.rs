//! Squash forensics: turning a raw event trace into causal explanations.
//!
//! A squash counter going up tells you *that* speculation failed; this
//! module reconstructs *why*. Working over the recorded
//! [`Record`](crate::trace::Record) stream it can
//!
//! * rebuild a chosen line's full version history
//!   ([`line_history`] / [`render_line_report`]): every state-bit
//!   transition, VOL splice/purge, VCL plan, and access that touched the
//!   line, in cycle order; and
//! * extract causal squash chains ([`squash_chains`]): for each detected
//!   memory-dependence violation, the store that triggered it, the
//!   premature load it exposed, the VOL order of the line at that moment
//!   (hence which task held which version), and the set of tasks the
//!   squash walk then tore down.
//!
//! The pass is pure — it reads records, it never re-runs the simulator —
//! so it works equally on a live in-memory ring or on records re-read
//! from a JSONL artifact.

use std::collections::BTreeMap;

use svc_types::{Addr, LineId, PuId, TaskId};

use crate::trace::{AccessOp, LineBits, Record, SquashCause, TraceEvent, VolEntry};

/// The line a word address maps to, given the line size in words.
pub fn line_of(addr: Addr, words_per_line: u64) -> LineId {
    LineId(addr.0 / words_per_line.max(1))
}

/// Whether `event` concerns `line` (directly, or via an address that maps
/// to it).
fn touches_line(event: &TraceEvent, line: LineId, words_per_line: u64) -> bool {
    match event {
        TraceEvent::BusTransaction { line: l, .. } => *l == Some(line),
        TraceEvent::MshrAllocate { line: l, .. }
        | TraceEvent::MshrCombine { line: l, .. }
        | TraceEvent::MshrRetire { line: l, .. }
        | TraceEvent::LineTransition { line: l, .. }
        | TraceEvent::CoherenceTransition { line: l, .. }
        | TraceEvent::VolReorder { line: l, .. } => *l == line,
        TraceEvent::VclPlan(p) => p.line == line,
        TraceEvent::Access { addr, .. } | TraceEvent::Violation { addr, .. } => {
            line_of(*addr, words_per_line) == line
        }
        TraceEvent::Fault(e) => e.line == Some(line),
        TraceEvent::InvariantViolation { line: l, .. } => *l == Some(line),
        TraceEvent::WritebackPush { .. }
        | TraceEvent::TaskDispatch { .. }
        | TraceEvent::TaskCommit { .. }
        | TraceEvent::TaskSquash { .. } => false,
    }
}

/// All records that touched `line`, in trace order.
pub fn line_history(records: &[Record], line: LineId, words_per_line: u64) -> Vec<&Record> {
    records
        .iter()
        .filter(|r| touches_line(&r.event, line, words_per_line))
        .collect()
}

/// One reconstructed violation → squash causal chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SquashChain {
    /// Cycle the violation was detected.
    pub cycle: u64,
    /// The conflicting word address.
    pub addr: Addr,
    /// The line that address maps to.
    pub line: LineId,
    /// The PU whose store exposed the violation.
    pub store_pu: PuId,
    /// The task whose store exposed the violation.
    pub store_task: TaskId,
    /// The oldest violated task (root of the squash walk).
    pub victim: TaskId,
    /// The store access that triggered detection, if the `access`
    /// category was recorded.
    pub trigger_store: Option<Record>,
    /// The victim's premature load of the same address, if recorded.
    pub victim_load: Option<Record>,
    /// The line's VOL order at the moment of the violation (last
    /// reorder seen before it), oldest first — identifies which task
    /// held which version.
    pub vol_at_violation: Vec<VolEntry>,
    /// Tasks holding *versions* (store data) of the line at that moment,
    /// oldest first, from the VOL.
    pub version_writers: Vec<(PuId, TaskId)>,
    /// The squash walk this violation caused: `(pu, task)` in squash
    /// order, if the `task` category was recorded.
    pub squashed: Vec<(PuId, TaskId)>,
    /// Per squashed task, the cycle its PU stays blocked until (the
    /// squash-recovery window end), aligned with `squashed`.
    pub squash_until: Vec<u64>,
}

/// Reconstructs every violation's causal chain from a trace.
///
/// Requires at least the `task` category in the trace (violations and
/// squashes); `access` and `vol` categories enrich the chains with the
/// triggering store, the premature load, and version ownership.
pub fn squash_chains(records: &[Record], words_per_line: u64) -> Vec<SquashChain> {
    let mut chains = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let TraceEvent::Violation {
            pu,
            task,
            victim,
            addr,
        } = r.event
        else {
            continue;
        };
        let line = line_of(addr, words_per_line);

        // The store access that tripped detection: the last store to this
        // address by the violating task at or before the violation.
        let trigger_store = records[..=i]
            .iter()
            .rev()
            .find(|c| {
                matches!(
                    c.event,
                    TraceEvent::Access {
                        task: t,
                        op: AccessOp::Store,
                        addr: a,
                        ..
                    } if t == task && a == addr
                )
            })
            .cloned();

        // The premature load: the victim task (or any task at/after it in
        // program order — the walk squashes them all) loaded the address
        // before this store defined it.
        let victim_load = records[..i]
            .iter()
            .rev()
            .find(|c| {
                matches!(
                    c.event,
                    TraceEvent::Access {
                        task: t,
                        op: AccessOp::Load,
                        addr: a,
                        ..
                    } if t >= victim && a == addr
                )
            })
            .cloned();

        // The line's VOL order at the moment of detection.
        let vol_at_violation = records[..=i]
            .iter()
            .rev()
            .find_map(|c| match &c.event {
                TraceEvent::VolReorder { line: l, order, .. } if *l == line => Some(order.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let version_writers = vol_at_violation
            .iter()
            .filter(|e| e.version)
            .filter_map(|e| e.task.map(|t| (e.pu, t)))
            .collect();

        // The squash walk: every violation-caused squash restarting at
        // this victim, from detection until the walk's batch ends (the
        // next violation or the next dispatch breaks the batch).
        let mut squashed = Vec::new();
        let mut squash_until = Vec::new();
        for c in &records[i + 1..] {
            match c.event {
                TraceEvent::TaskSquash {
                    pu: sp,
                    task: st,
                    cause: SquashCause::Violation,
                    restart,
                    until,
                } if restart == victim => {
                    squashed.push((sp, st));
                    squash_until.push(until.0);
                }
                TraceEvent::Violation { .. } | TraceEvent::TaskDispatch { .. } => break,
                _ => {}
            }
        }

        chains.push(SquashChain {
            cycle: r.cycle,
            addr,
            line,
            store_pu: pu,
            store_task: task,
            victim,
            trigger_store,
            victim_load,
            vol_at_violation,
            version_writers,
            squashed,
            squash_until,
        });
    }
    chains
}

// ---------------------------------------------------------------------
// Cascade attribution
// ---------------------------------------------------------------------

/// Wasted-cycle attribution for one [`SquashChain`], computed against the
/// profiler's accounting model so the totals stay comparable with — and
/// bounded by — the `wasted_exec` and `squash_recovery` buckets of a
/// profile of the same run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainCost {
    /// Execution cycles the chain's squashes provably threw away: each
    /// squashed task's access issue cycles between its dispatch and the
    /// squash that no queued latency window could cover. A lower bound on
    /// the profiler's `wasted_exec` share of the chain (compute-instr
    /// cycles are pending too but not reconstructible from the trace).
    pub wasted_exec_cycles: u64,
    /// Post-squash blackout cycles, truncated exactly as the profiler
    /// truncates them: at the next squash on the same PU and at the end
    /// of the run.
    pub recovery_cycles: u64,
}

impl ChainCost {
    /// Total attributed cost.
    pub fn total(&self) -> u64 {
        self.wasted_exec_cycles + self.recovery_cycles
    }
}

/// Whether `cycle` falls inside one of the sorted, disjoint `intervals`.
fn covered(intervals: &[(u64, u64)], cycle: u64) -> bool {
    let i = intervals.partition_point(|&(start, _)| start <= cycle);
    i > 0 && cycle < intervals[i - 1].1
}

/// Attributes wasted cycles to each chain's squash walk.
///
/// Requires the `task` category; the `access` category tightens the
/// re-executed-work estimate (without it only recovery cycles are
/// attributed). `end_cycle` clips blackouts that outlive the trace, the
/// way the profiler clips them at [`finish`](crate::profile::Profiler::finish).
pub fn chain_costs(records: &[Record], chains: &[SquashChain], end_cycle: u64) -> Vec<ChainCost> {
    // Latency-window coverage per PU: an access issued at `c` queues
    // [c+1, done_at). Merged, these over-approximate the profiler's real
    // windows (which clip to visibility and clear on squash), keeping the
    // re-executed-work count a lower bound.
    let mut windows: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    // Access issue cycles and dispatch cycles per (pu, task); squash
    // cycles per PU (any cause — each one truncates its predecessor's
    // blackout window).
    let mut issues: BTreeMap<(usize, u64), Vec<u64>> = BTreeMap::new();
    let mut dispatches: BTreeMap<(usize, u64), Vec<u64>> = BTreeMap::new();
    let mut squashes: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::Access {
                pu, task, done_at, ..
            } => {
                if done_at.0 > r.cycle + 1 {
                    windows
                        .entry(pu.0)
                        .or_default()
                        .push((r.cycle + 1, done_at.0));
                }
                issues.entry((pu.0, task.0)).or_default().push(r.cycle);
            }
            TraceEvent::TaskDispatch { pu, task, .. } => {
                dispatches.entry((pu.0, task.0)).or_default().push(r.cycle);
            }
            TraceEvent::TaskSquash { pu, .. } => {
                squashes.entry(pu.0).or_default().push(r.cycle);
            }
            _ => {}
        }
    }
    for spans in windows.values_mut() {
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for &(start, end) in spans.iter() {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        *spans = merged;
    }

    chains
        .iter()
        .map(|chain| {
            let mut cost = ChainCost::default();
            for (k, &(pu, task)) in chain.squashed.iter().enumerate() {
                let sq = chain.cycle;
                let until = chain.squash_until.get(k).copied().unwrap_or(sq);
                let next_squash = squashes.get(&pu.0).map_or(u64::MAX, |cycles| {
                    let i = cycles.partition_point(|&c| c <= sq);
                    cycles.get(i).copied().unwrap_or(u64::MAX)
                });
                let limit = until.min(end_cycle).min(next_squash);
                cost.recovery_cycles += limit.saturating_sub(sq);
                let Some(dispatch) = dispatches.get(&(pu.0, task.0)).and_then(|cycles| {
                    let i = cycles.partition_point(|&c| c <= sq);
                    (i > 0).then(|| cycles[i - 1])
                }) else {
                    continue;
                };
                if let Some(cycles) = issues.get(&(pu.0, task.0)) {
                    let pu_windows = windows.get(&pu.0).map_or(&[][..], Vec::as_slice);
                    cost.wasted_exec_cycles += cycles
                        .iter()
                        .filter(|&&c| c >= dispatch && c < sq && !covered(pu_windows, c))
                        .count() as u64;
                }
            }
            cost
        })
        .collect()
}

/// A squash cascade: a root violation chain plus every later chain it
/// transitively triggered — a violation whose storing task or victim was
/// itself torn down by an earlier chain of the cascade (it re-ran because
/// of that chain and violated again).
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Indices into the chain slice the cascade was built from, in cycle
    /// order; the first entry is the root.
    pub members: Vec<usize>,
    /// Summed [`ChainCost::wasted_exec_cycles`] over the members.
    pub wasted_exec_cycles: u64,
    /// Summed [`ChainCost::recovery_cycles`] over the members.
    pub recovery_cycles: u64,
}

impl Cascade {
    /// Total attributed cost of the cascade.
    pub fn total_cost(&self) -> u64 {
        self.wasted_exec_cycles + self.recovery_cycles
    }
}

/// Groups chains into cascades and ranks them most-expensive first (ties
/// break toward the earlier root). `costs` must be parallel to `chains`
/// (the result of [`chain_costs`]).
pub fn cascades(chains: &[SquashChain], costs: &[ChainCost]) -> Vec<Cascade> {
    let involved = |i: usize, t: TaskId| -> bool {
        chains[i].victim == t || chains[i].squashed.iter().any(|&(_, st)| st == t)
    };
    let mut root: Vec<usize> = (0..chains.len()).collect();
    for j in 0..chains.len() {
        for i in (0..j).rev() {
            if chains[i].cycle < chains[j].cycle
                && (involved(i, chains[j].store_task) || involved(i, chains[j].victim))
            {
                root[j] = root[i];
                break;
            }
        }
    }
    let mut groups: BTreeMap<usize, Cascade> = BTreeMap::new();
    for (j, &r) in root.iter().enumerate() {
        let g = groups.entry(r).or_insert_with(|| Cascade {
            members: Vec::new(),
            wasted_exec_cycles: 0,
            recovery_cycles: 0,
        });
        g.members.push(j);
        if let Some(c) = costs.get(j) {
            g.wasted_exec_cycles += c.wasted_exec_cycles;
            g.recovery_cycles += c.recovery_cycles;
        }
    }
    let mut out: Vec<Cascade> = groups.into_values().collect();
    out.sort_by(|a, b| {
        b.total_cost()
            .cmp(&a.total_cost())
            .then(a.members[0].cmp(&b.members[0]))
    });
    out
}

// ---------------------------------------------------------------------
// Version-lifetime analytics
// ---------------------------------------------------------------------

/// The Figure-18 state names, in [`LineLifetime::state_cycles`] order.
pub const LIFETIME_STATES: [&str; 5] = ["I", "AC", "AD", "PC", "PD"];

fn state_index(bits: &LineBits) -> usize {
    match bits.state_name() {
        "I" => 0,
        "AC" => 1,
        "AD" => 2,
        "PC" => 3,
        _ => 4,
    }
}

/// Version-lifetime analytics for one line, extracted from the `line`,
/// `vol` and `vcl` trace categories.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineLifetime {
    /// The line.
    pub line: LineId,
    /// PU-cycles copies of the line spent in each Figure-18 state
    /// (indexed like [`LIFETIME_STATES`]), from the first observed
    /// transition of each copy to the end of the trace.
    pub state_cycles: [u64; 5],
    /// PU-cycles with at least one load (L) bit set.
    pub load_cycles: u64,
    /// PU-cycles with at least one store (S) bit set.
    pub store_cycles: u64,
    /// PU-cycles with the stale (T) bit set.
    pub stale_cycles: u64,
    /// Peak simultaneous versions in the VOL.
    pub max_versions: u64,
    /// Versions summed over VOL snapshots (mean = `version_sum /
    /// vol_events`).
    pub version_sum: u64,
    /// VOL snapshots observed.
    pub vol_events: u64,
    /// VOL splice events.
    pub splices: u64,
    /// VOL purge events.
    pub purges: u64,
    /// Caches that snarfed a fill of this line, summed over plans.
    pub snarfs: u64,
    /// Flash reverts: transitions dropping all load and store bits at
    /// once without the commit bit — a squash tearing speculative state
    /// down in one step.
    pub flash_reverts: u64,
}

/// Aggregates per-line version-lifetime statistics over a trace. Dwell
/// times run from each copy's first observed transition to `end_cycle`
/// (pass the run's cycle count). Lines are returned in id order.
pub fn line_lifetimes(records: &[Record], end_cycle: u64) -> Vec<LineLifetime> {
    let mut lines: BTreeMap<u64, LineLifetime> = BTreeMap::new();
    // Last observed bits per (pu, line) copy, with the cycle they took
    // effect.
    let mut last: BTreeMap<(usize, u64), (u64, LineBits)> = BTreeMap::new();
    let dwell = |entry: &mut LineLifetime, bits: &LineBits, cycles: u64| {
        entry.state_cycles[state_index(bits)] += cycles;
        if bits.load != 0 {
            entry.load_cycles += cycles;
        }
        if bits.store != 0 {
            entry.store_cycles += cycles;
        }
        if bits.stale {
            entry.stale_cycles += cycles;
        }
    };
    for r in records {
        match &r.event {
            TraceEvent::LineTransition { pu, line, from, to } => {
                let entry = lines.entry(line.0).or_default();
                entry.line = *line;
                if let Some((since, bits)) = last.insert((pu.0, line.0), (r.cycle, *to)) {
                    dwell(entry, &bits, r.cycle.saturating_sub(since));
                }
                if (from.load != 0 || from.store != 0)
                    && to.load == 0
                    && to.store == 0
                    && !to.committed
                {
                    entry.flash_reverts += 1;
                }
            }
            TraceEvent::VolReorder { line, op, order } => {
                let entry = lines.entry(line.0).or_default();
                entry.line = *line;
                let versions = order.iter().filter(|e| e.version).count() as u64;
                entry.max_versions = entry.max_versions.max(versions);
                entry.version_sum += versions;
                entry.vol_events += 1;
                match op {
                    crate::trace::VolOp::Splice => entry.splices += 1,
                    crate::trace::VolOp::Purge => entry.purges += 1,
                }
            }
            TraceEvent::VclPlan(p) if p.snarfers > 0 => {
                let entry = lines.entry(p.line.0).or_default();
                entry.line = p.line;
                entry.snarfs += u64::from(p.snarfers);
            }
            _ => {}
        }
    }
    for (&(_, line), &(since, ref bits)) in &last {
        if let Some(entry) = lines.get_mut(&line) {
            dwell(entry, bits, end_cycle.saturating_sub(since));
        }
    }
    lines.into_values().collect()
}

fn render_vol(out: &mut String, order: &[VolEntry]) {
    if order.is_empty() {
        out.push_str("(not recorded)");
        return;
    }
    for (i, e) in order.iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        out.push_str(&format!("{}", e.pu));
        if let Some(t) = e.task {
            out.push_str(&format!("/T{}", t.0));
        }
        if e.version {
            out.push('*');
        }
    }
    out.push_str("  (* = holds a version)");
}

/// Renders one chain as a short human-readable explanation.
pub fn render_chain(chain: &SquashChain) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "violation @ cycle {}: store by {}/T{} to addr {} (line {})\n",
        chain.cycle, chain.store_pu, chain.store_task.0, chain.addr.0, chain.line.0
    ));
    match &chain.trigger_store {
        Some(r) => out.push_str(&format!("  triggering store : {r}\n")),
        None => out.push_str("  triggering store : (access category not recorded)\n"),
    }
    match &chain.victim_load {
        Some(r) => out.push_str(&format!("  premature load   : {r}\n")),
        None => out.push_str("  premature load   : (not recorded)\n"),
    }
    out.push_str("  VOL at violation : ");
    render_vol(&mut out, &chain.vol_at_violation);
    out.push('\n');
    if !chain.version_writers.is_empty() {
        out.push_str("  version writers  : ");
        for (i, (pu, t)) in chain.version_writers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("T{} (on {pu})", t.0));
        }
        out.push('\n');
    }
    if chain.squashed.is_empty() {
        out.push_str(&format!(
            "  squash walk      : restart at T{} (task category not recorded)\n",
            chain.victim.0
        ));
    } else {
        out.push_str(&format!(
            "  squash walk      : T{} and {} task(s) torn down:",
            chain.victim.0,
            chain.squashed.len()
        ));
        for (pu, t) in &chain.squashed {
            out.push_str(&format!(" T{}@{pu}", t.0));
        }
        out.push('\n');
    }
    out
}

/// Renders a chosen line's full version history plus every causal squash
/// chain that involved it. This is the payload of `svc-sim trace`.
pub fn render_line_report(records: &[Record], line: LineId, words_per_line: u64) -> String {
    let mut out = String::new();
    let history = line_history(records, line, words_per_line);
    out.push_str(&format!(
        "== line {} version history ({} event(s)) ==\n",
        line.0,
        history.len()
    ));
    for r in &history {
        out.push_str(&format!("{r}\n"));
    }
    let chains: Vec<SquashChain> = squash_chains(records, words_per_line)
        .into_iter()
        .filter(|c| c.line == line)
        .collect();
    out.push_str(&format!(
        "\n== squash chains on line {} ({}) ==\n",
        line.0,
        chains.len()
    ));
    for c in &chains {
        out.push_str(&render_chain(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Category, Tracer, VolOp};
    use svc_types::Cycle;

    /// Builds the canonical conflict: T2 loads addr 5 early, T1 later
    /// stores addr 5, the VCL flags the violation, T2 and T3 squash.
    fn conflict_trace() -> Vec<Record> {
        let t = Tracer::new(Category::ALL, 1024);
        t.emit(Cycle(10), Category::Access, || TraceEvent::Access {
            pu: PuId(2),
            task: TaskId(2),
            op: AccessOp::Load,
            addr: Addr(5),
            source: "next-level",
            done_at: Cycle(12),
        });
        t.emit(Cycle(10), Category::Vol, || TraceEvent::VolReorder {
            line: LineId(1),
            op: VolOp::Splice,
            order: vec![
                VolEntry {
                    pu: PuId(1),
                    task: Some(TaskId(1)),
                    version: true,
                },
                VolEntry {
                    pu: PuId(2),
                    task: Some(TaskId(2)),
                    version: false,
                },
            ],
        });
        t.emit(Cycle(20), Category::Access, || TraceEvent::Access {
            pu: PuId(1),
            task: TaskId(1),
            op: AccessOp::Store,
            addr: Addr(5),
            source: "accepted",
            done_at: Cycle(20),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::Violation {
            pu: PuId(1),
            task: TaskId(1),
            victim: TaskId(2),
            addr: Addr(5),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(3),
            task: TaskId(3),
            cause: SquashCause::Violation,
            restart: TaskId(2),
            until: Cycle(26),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(2),
            task: TaskId(2),
            cause: SquashCause::Violation,
            restart: TaskId(2),
            until: Cycle(23),
        });
        t.emit(Cycle(21), Category::Task, || TraceEvent::TaskDispatch {
            pu: PuId(2),
            task: TaskId(2),
            attempt: 1,
            wrong_path: false,
        });
        t.records()
    }

    #[test]
    fn reconstructs_the_causal_chain() {
        let records = conflict_trace();
        let chains = squash_chains(&records, 4);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.cycle, 20);
        assert_eq!(c.line, LineId(1), "addr 5 / 4 words per line");
        assert_eq!(c.store_task, TaskId(1));
        assert_eq!(c.victim, TaskId(2));
        assert!(
            matches!(
                c.trigger_store.as_ref().map(|r| &r.event),
                Some(TraceEvent::Access {
                    op: AccessOp::Store,
                    task: TaskId(1),
                    ..
                })
            ),
            "found the triggering store"
        );
        assert!(
            matches!(
                c.victim_load.as_ref().map(|r| &r.event),
                Some(TraceEvent::Access {
                    op: AccessOp::Load,
                    task: TaskId(2),
                    ..
                })
            ),
            "found the premature load"
        );
        assert_eq!(c.vol_at_violation.len(), 2);
        assert_eq!(c.version_writers, vec![(PuId(1), TaskId(1))]);
        assert_eq!(c.squashed, vec![(PuId(3), TaskId(3)), (PuId(2), TaskId(2))]);
        assert_eq!(c.squash_until, vec![26, 23]);
    }

    #[test]
    fn chain_costs_attribute_recovery_and_reexecution() {
        let records = conflict_trace();
        let chains = squash_chains(&records, 4);
        let costs = chain_costs(&records, &chains, 100);
        assert_eq!(costs.len(), 1);
        // T3 blocked [20,26), T2 blocked [20,23): 6 + 3 recovery cycles.
        assert_eq!(costs[0].recovery_cycles, 9);
        // No dispatches recorded before the squashes → no re-executed
        // work attributable.
        assert_eq!(costs[0].wasted_exec_cycles, 0);

        // Clipping: a run that ended at cycle 22 cuts both blackouts.
        let clipped = chain_costs(&records, &chains, 22);
        assert_eq!(clipped[0].recovery_cycles, 2 + 2);
    }

    #[test]
    fn cascades_link_retriggered_violations() {
        let t = Tracer::new(Category::ALL, 64);
        let violation = |cycle: u64, task: u64, victim: u64| {
            t.emit(Cycle(cycle), Category::Task, || TraceEvent::Violation {
                pu: PuId(1),
                task: TaskId(task),
                victim: TaskId(victim),
                addr: Addr(5),
            });
            t.emit(Cycle(cycle), Category::Task, || TraceEvent::TaskSquash {
                pu: PuId(2),
                task: TaskId(victim),
                cause: SquashCause::Violation,
                restart: TaskId(victim),
                until: Cycle(cycle + 4),
            });
        };
        violation(10, 1, 2); // root: T1's store squashes T2
        violation(30, 1, 2); // T2 re-ran and violated again → same cascade
        violation(50, 7, 8); // unrelated tasks → separate cascade
        let records = t.records();
        let chains = squash_chains(&records, 4);
        assert_eq!(chains.len(), 3);
        let costs = chain_costs(&records, &chains, 100);
        let groups = cascades(&chains, &costs);
        assert_eq!(groups.len(), 2);
        // The two-member cascade costs 8 recovery cycles, the singleton 4,
        // so it ranks first.
        assert_eq!(groups[0].members, vec![0, 1]);
        assert_eq!(groups[0].total_cost(), 8);
        assert_eq!(groups[1].members, vec![2]);
        assert_eq!(groups[1].total_cost(), 4);
    }

    #[test]
    fn line_lifetimes_track_states_and_vol() {
        use crate::trace::LineBits;
        let t = Tracer::new(Category::ALL, 64);
        let ac = LineBits {
            valid: 0b1,
            ..LineBits::default()
        };
        let ad = LineBits {
            valid: 0b1,
            store: 0b1,
            load: 0b1,
            ..LineBits::default()
        };
        t.emit(Cycle(10), Category::Line, || TraceEvent::LineTransition {
            pu: PuId(0),
            line: LineId(1),
            from: LineBits::default(),
            to: ad,
        });
        t.emit(Cycle(16), Category::Line, || TraceEvent::LineTransition {
            pu: PuId(0),
            line: LineId(1),
            from: ad,
            to: ac, // speculative bits dropped, no commit: flash revert
        });
        t.emit(Cycle(12), Category::Vol, || TraceEvent::VolReorder {
            line: LineId(1),
            op: VolOp::Splice,
            order: vec![
                VolEntry {
                    pu: PuId(0),
                    task: Some(TaskId(1)),
                    version: true,
                },
                VolEntry {
                    pu: PuId(1),
                    task: Some(TaskId(2)),
                    version: true,
                },
            ],
        });
        let lives = line_lifetimes(&t.records(), 20);
        assert_eq!(lives.len(), 1);
        let l = &lives[0];
        assert_eq!(l.line, LineId(1));
        // AD for [10,16), AC for [16,20).
        assert_eq!(l.state_cycles, [0, 4, 6, 0, 0]);
        assert_eq!(l.load_cycles, 6);
        assert_eq!(l.store_cycles, 6);
        assert_eq!(l.max_versions, 2);
        assert_eq!(l.splices, 1);
        assert_eq!(l.flash_reverts, 1);
    }

    #[test]
    fn squash_batch_stops_at_redispatch() {
        let records = conflict_trace();
        // The dispatch at cycle 21 ends the batch; a later unrelated
        // squash with the same restart must not be absorbed.
        let t = Tracer::new(Category::ALL, 16);
        for r in &records {
            t.emit(Cycle(r.cycle), r.event.category(), || r.event.clone());
        }
        t.emit(Cycle(30), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(2),
            task: TaskId(2),
            cause: SquashCause::Violation,
            restart: TaskId(2),
            until: Cycle(31),
        });
        let chains = squash_chains(&t.records(), 4);
        assert_eq!(chains[0].squashed.len(), 2, "batch ended at the dispatch");
    }

    #[test]
    fn line_history_filters_by_line() {
        let records = conflict_trace();
        let hits = line_history(&records, LineId(1), 4);
        // load, vol splice, store, violation — squash/dispatch are not
        // line events.
        assert_eq!(hits.len(), 4);
        let misses = line_history(&records, LineId(9), 4);
        assert!(misses.is_empty());
    }

    #[test]
    fn line_report_reads_like_a_story() {
        let records = conflict_trace();
        let report = render_line_report(&records, LineId(1), 4);
        assert!(report.contains("line 1 version history"));
        assert!(report.contains("violation @ cycle 20"));
        assert!(report.contains("premature load"));
        assert!(report.contains("PU1/T1*"), "VOL shows T1 holding a version");
        assert!(report.contains("T2"), "victim named");
    }

    #[test]
    fn chains_degrade_gracefully_without_optional_categories() {
        // Only the task category: no access / vol enrichment.
        let full = conflict_trace();
        let task_only: Vec<Record> = full
            .into_iter()
            .filter(|r| r.event.category() == Category::Task)
            .collect();
        let chains = squash_chains(&task_only, 4);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert!(c.trigger_store.is_none());
        assert!(c.victim_load.is_none());
        assert!(c.vol_at_violation.is_empty());
        assert_eq!(c.squashed.len(), 2);
        // Rendering still works.
        assert!(render_chain(c).contains("not recorded"));
    }
}
