//! Squash forensics: turning a raw event trace into causal explanations.
//!
//! A squash counter going up tells you *that* speculation failed; this
//! module reconstructs *why*. Working over the recorded
//! [`Record`](crate::trace::Record) stream it can
//!
//! * rebuild a chosen line's full version history
//!   ([`line_history`] / [`render_line_report`]): every state-bit
//!   transition, VOL splice/purge, VCL plan, and access that touched the
//!   line, in cycle order; and
//! * extract causal squash chains ([`squash_chains`]): for each detected
//!   memory-dependence violation, the store that triggered it, the
//!   premature load it exposed, the VOL order of the line at that moment
//!   (hence which task held which version), and the set of tasks the
//!   squash walk then tore down.
//!
//! The pass is pure — it reads records, it never re-runs the simulator —
//! so it works equally on a live in-memory ring or on records re-read
//! from a JSONL artifact.

use svc_types::{Addr, LineId, PuId, TaskId};

use crate::trace::{AccessOp, Record, SquashCause, TraceEvent, VolEntry};

/// The line a word address maps to, given the line size in words.
pub fn line_of(addr: Addr, words_per_line: u64) -> LineId {
    LineId(addr.0 / words_per_line.max(1))
}

/// Whether `event` concerns `line` (directly, or via an address that maps
/// to it).
fn touches_line(event: &TraceEvent, line: LineId, words_per_line: u64) -> bool {
    match event {
        TraceEvent::BusTransaction { line: l, .. } => *l == Some(line),
        TraceEvent::MshrAllocate { line: l, .. }
        | TraceEvent::MshrCombine { line: l, .. }
        | TraceEvent::MshrRetire { line: l, .. }
        | TraceEvent::LineTransition { line: l, .. }
        | TraceEvent::CoherenceTransition { line: l, .. }
        | TraceEvent::VolReorder { line: l, .. } => *l == line,
        TraceEvent::VclPlan(p) => p.line == line,
        TraceEvent::Access { addr, .. } | TraceEvent::Violation { addr, .. } => {
            line_of(*addr, words_per_line) == line
        }
        TraceEvent::Fault(e) => e.line == Some(line),
        TraceEvent::InvariantViolation { line: l, .. } => *l == Some(line),
        TraceEvent::WritebackPush { .. }
        | TraceEvent::TaskDispatch { .. }
        | TraceEvent::TaskCommit { .. }
        | TraceEvent::TaskSquash { .. } => false,
    }
}

/// All records that touched `line`, in trace order.
pub fn line_history(records: &[Record], line: LineId, words_per_line: u64) -> Vec<&Record> {
    records
        .iter()
        .filter(|r| touches_line(&r.event, line, words_per_line))
        .collect()
}

/// One reconstructed violation → squash causal chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SquashChain {
    /// Cycle the violation was detected.
    pub cycle: u64,
    /// The conflicting word address.
    pub addr: Addr,
    /// The line that address maps to.
    pub line: LineId,
    /// The PU whose store exposed the violation.
    pub store_pu: PuId,
    /// The task whose store exposed the violation.
    pub store_task: TaskId,
    /// The oldest violated task (root of the squash walk).
    pub victim: TaskId,
    /// The store access that triggered detection, if the `access`
    /// category was recorded.
    pub trigger_store: Option<Record>,
    /// The victim's premature load of the same address, if recorded.
    pub victim_load: Option<Record>,
    /// The line's VOL order at the moment of the violation (last
    /// reorder seen before it), oldest first — identifies which task
    /// held which version.
    pub vol_at_violation: Vec<VolEntry>,
    /// Tasks holding *versions* (store data) of the line at that moment,
    /// oldest first, from the VOL.
    pub version_writers: Vec<(PuId, TaskId)>,
    /// The squash walk this violation caused: `(pu, task)` in squash
    /// order, if the `task` category was recorded.
    pub squashed: Vec<(PuId, TaskId)>,
}

/// Reconstructs every violation's causal chain from a trace.
///
/// Requires at least the `task` category in the trace (violations and
/// squashes); `access` and `vol` categories enrich the chains with the
/// triggering store, the premature load, and version ownership.
pub fn squash_chains(records: &[Record], words_per_line: u64) -> Vec<SquashChain> {
    let mut chains = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let TraceEvent::Violation {
            pu,
            task,
            victim,
            addr,
        } = r.event
        else {
            continue;
        };
        let line = line_of(addr, words_per_line);

        // The store access that tripped detection: the last store to this
        // address by the violating task at or before the violation.
        let trigger_store = records[..=i]
            .iter()
            .rev()
            .find(|c| {
                matches!(
                    c.event,
                    TraceEvent::Access {
                        task: t,
                        op: AccessOp::Store,
                        addr: a,
                        ..
                    } if t == task && a == addr
                )
            })
            .cloned();

        // The premature load: the victim task (or any task at/after it in
        // program order — the walk squashes them all) loaded the address
        // before this store defined it.
        let victim_load = records[..i]
            .iter()
            .rev()
            .find(|c| {
                matches!(
                    c.event,
                    TraceEvent::Access {
                        task: t,
                        op: AccessOp::Load,
                        addr: a,
                        ..
                    } if t >= victim && a == addr
                )
            })
            .cloned();

        // The line's VOL order at the moment of detection.
        let vol_at_violation = records[..=i]
            .iter()
            .rev()
            .find_map(|c| match &c.event {
                TraceEvent::VolReorder { line: l, order, .. } if *l == line => Some(order.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let version_writers = vol_at_violation
            .iter()
            .filter(|e| e.version)
            .filter_map(|e| e.task.map(|t| (e.pu, t)))
            .collect();

        // The squash walk: every violation-caused squash restarting at
        // this victim, from detection until the walk's batch ends (the
        // next violation or the next dispatch breaks the batch).
        let mut squashed = Vec::new();
        for c in &records[i + 1..] {
            match c.event {
                TraceEvent::TaskSquash {
                    pu: sp,
                    task: st,
                    cause: SquashCause::Violation,
                    restart,
                } if restart == victim => squashed.push((sp, st)),
                TraceEvent::Violation { .. } | TraceEvent::TaskDispatch { .. } => break,
                _ => {}
            }
        }

        chains.push(SquashChain {
            cycle: r.cycle,
            addr,
            line,
            store_pu: pu,
            store_task: task,
            victim,
            trigger_store,
            victim_load,
            vol_at_violation,
            version_writers,
            squashed,
        });
    }
    chains
}

fn render_vol(out: &mut String, order: &[VolEntry]) {
    if order.is_empty() {
        out.push_str("(not recorded)");
        return;
    }
    for (i, e) in order.iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        out.push_str(&format!("{}", e.pu));
        if let Some(t) = e.task {
            out.push_str(&format!("/T{}", t.0));
        }
        if e.version {
            out.push('*');
        }
    }
    out.push_str("  (* = holds a version)");
}

/// Renders one chain as a short human-readable explanation.
pub fn render_chain(chain: &SquashChain) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "violation @ cycle {}: store by {}/T{} to addr {} (line {})\n",
        chain.cycle, chain.store_pu, chain.store_task.0, chain.addr.0, chain.line.0
    ));
    match &chain.trigger_store {
        Some(r) => out.push_str(&format!("  triggering store : {r}\n")),
        None => out.push_str("  triggering store : (access category not recorded)\n"),
    }
    match &chain.victim_load {
        Some(r) => out.push_str(&format!("  premature load   : {r}\n")),
        None => out.push_str("  premature load   : (not recorded)\n"),
    }
    out.push_str("  VOL at violation : ");
    render_vol(&mut out, &chain.vol_at_violation);
    out.push('\n');
    if !chain.version_writers.is_empty() {
        out.push_str("  version writers  : ");
        for (i, (pu, t)) in chain.version_writers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("T{} (on {pu})", t.0));
        }
        out.push('\n');
    }
    if chain.squashed.is_empty() {
        out.push_str(&format!(
            "  squash walk      : restart at T{} (task category not recorded)\n",
            chain.victim.0
        ));
    } else {
        out.push_str(&format!(
            "  squash walk      : T{} and {} task(s) torn down:",
            chain.victim.0,
            chain.squashed.len()
        ));
        for (pu, t) in &chain.squashed {
            out.push_str(&format!(" T{}@{pu}", t.0));
        }
        out.push('\n');
    }
    out
}

/// Renders a chosen line's full version history plus every causal squash
/// chain that involved it. This is the payload of `svc-sim trace`.
pub fn render_line_report(records: &[Record], line: LineId, words_per_line: u64) -> String {
    let mut out = String::new();
    let history = line_history(records, line, words_per_line);
    out.push_str(&format!(
        "== line {} version history ({} event(s)) ==\n",
        line.0,
        history.len()
    ));
    for r in &history {
        out.push_str(&format!("{r}\n"));
    }
    let chains: Vec<SquashChain> = squash_chains(records, words_per_line)
        .into_iter()
        .filter(|c| c.line == line)
        .collect();
    out.push_str(&format!(
        "\n== squash chains on line {} ({}) ==\n",
        line.0,
        chains.len()
    ));
    for c in &chains {
        out.push_str(&render_chain(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Category, Tracer, VolOp};
    use svc_types::Cycle;

    /// Builds the canonical conflict: T2 loads addr 5 early, T1 later
    /// stores addr 5, the VCL flags the violation, T2 and T3 squash.
    fn conflict_trace() -> Vec<Record> {
        let t = Tracer::new(Category::ALL, 1024);
        t.emit(Cycle(10), Category::Access, || TraceEvent::Access {
            pu: PuId(2),
            task: TaskId(2),
            op: AccessOp::Load,
            addr: Addr(5),
            source: "next-level",
            done_at: Cycle(12),
        });
        t.emit(Cycle(10), Category::Vol, || TraceEvent::VolReorder {
            line: LineId(1),
            op: VolOp::Splice,
            order: vec![
                VolEntry {
                    pu: PuId(1),
                    task: Some(TaskId(1)),
                    version: true,
                },
                VolEntry {
                    pu: PuId(2),
                    task: Some(TaskId(2)),
                    version: false,
                },
            ],
        });
        t.emit(Cycle(20), Category::Access, || TraceEvent::Access {
            pu: PuId(1),
            task: TaskId(1),
            op: AccessOp::Store,
            addr: Addr(5),
            source: "accepted",
            done_at: Cycle(20),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::Violation {
            pu: PuId(1),
            task: TaskId(1),
            victim: TaskId(2),
            addr: Addr(5),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(3),
            task: TaskId(3),
            cause: SquashCause::Violation,
            restart: TaskId(2),
        });
        t.emit(Cycle(20), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(2),
            task: TaskId(2),
            cause: SquashCause::Violation,
            restart: TaskId(2),
        });
        t.emit(Cycle(21), Category::Task, || TraceEvent::TaskDispatch {
            pu: PuId(2),
            task: TaskId(2),
            attempt: 1,
            wrong_path: false,
        });
        t.records()
    }

    #[test]
    fn reconstructs_the_causal_chain() {
        let records = conflict_trace();
        let chains = squash_chains(&records, 4);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.cycle, 20);
        assert_eq!(c.line, LineId(1), "addr 5 / 4 words per line");
        assert_eq!(c.store_task, TaskId(1));
        assert_eq!(c.victim, TaskId(2));
        assert!(
            matches!(
                c.trigger_store.as_ref().map(|r| &r.event),
                Some(TraceEvent::Access {
                    op: AccessOp::Store,
                    task: TaskId(1),
                    ..
                })
            ),
            "found the triggering store"
        );
        assert!(
            matches!(
                c.victim_load.as_ref().map(|r| &r.event),
                Some(TraceEvent::Access {
                    op: AccessOp::Load,
                    task: TaskId(2),
                    ..
                })
            ),
            "found the premature load"
        );
        assert_eq!(c.vol_at_violation.len(), 2);
        assert_eq!(c.version_writers, vec![(PuId(1), TaskId(1))]);
        assert_eq!(c.squashed, vec![(PuId(3), TaskId(3)), (PuId(2), TaskId(2))]);
    }

    #[test]
    fn squash_batch_stops_at_redispatch() {
        let records = conflict_trace();
        // The dispatch at cycle 21 ends the batch; a later unrelated
        // squash with the same restart must not be absorbed.
        let t = Tracer::new(Category::ALL, 16);
        for r in &records {
            t.emit(Cycle(r.cycle), r.event.category(), || r.event.clone());
        }
        t.emit(Cycle(30), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(2),
            task: TaskId(2),
            cause: SquashCause::Violation,
            restart: TaskId(2),
        });
        let chains = squash_chains(&t.records(), 4);
        assert_eq!(chains[0].squashed.len(), 2, "batch ended at the dispatch");
    }

    #[test]
    fn line_history_filters_by_line() {
        let records = conflict_trace();
        let hits = line_history(&records, LineId(1), 4);
        // load, vol splice, store, violation — squash/dispatch are not
        // line events.
        assert_eq!(hits.len(), 4);
        let misses = line_history(&records, LineId(9), 4);
        assert!(misses.is_empty());
    }

    #[test]
    fn line_report_reads_like_a_story() {
        let records = conflict_trace();
        let report = render_line_report(&records, LineId(1), 4);
        assert!(report.contains("line 1 version history"));
        assert!(report.contains("violation @ cycle 20"));
        assert!(report.contains("premature load"));
        assert!(report.contains("PU1/T1*"), "VOL shows T1 holding a version");
        assert!(report.contains("T2"), "victim named");
    }

    #[test]
    fn chains_degrade_gracefully_without_optional_categories() {
        // Only the task category: no access / vol enrichment.
        let full = conflict_trace();
        let task_only: Vec<Record> = full
            .into_iter()
            .filter(|r| r.event.category() == Category::Task)
            .collect();
        let chains = squash_chains(&task_only, 4);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert!(c.trigger_store.is_none());
        assert!(c.victim_load.is_none());
        assert!(c.vol_at_violation.is_empty());
        assert_eq!(c.squashed.len(), 2);
        // Rendering still works.
        assert!(render_chain(c).contains("not recorded"));
    }
}
