//! Crash-safe checkpoint files: a versioned, checksummed container and a
//! bounded on-disk ring of them.
//!
//! A checkpoint file is a single self-describing blob:
//!
//! ```text
//! magic   "svc-checkpoint/v1"          (17 bytes, fixed)
//! kind    u32 length + UTF-8 bytes     (what produced it: "soak", "run", …)
//! payload u64 length + bytes           (a [`CkptWriter`] serialization)
//! trailer u64 FNV-1a over all prior bytes
//! ```
//!
//! The trailer is what makes crash recovery safe: a write torn by a
//! `SIGKILL` (truncated file, half-written payload) fails the checksum and
//! is skipped, so [`CheckpointRing::newest_valid`] falls back to the
//! previous intact checkpoint instead of restoring garbage. Writes go
//! through [`write_atomic`] (temp sibling + fsync + rename), so a reader
//! never observes a partially written file under the final name — the
//! checksum is defense in depth for filesystems that reorder the rename
//! past the data blocks.
//!
//! [`CkptWriter`]: svc_types::CkptWriter

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use svc_types::{CkptError, StateHasher};

/// The container magic; doubles as the schema version.
pub const MAGIC: &[u8; 17] = b"svc-checkpoint/v1";

/// Largest kind tag accepted when decoding (sanity bound).
const MAX_KIND_LEN: usize = 256;

/// Largest payload accepted when decoding (sanity bound; real checkpoints
/// are a few hundred KB).
const MAX_PAYLOAD_LEN: u64 = 1 << 32;

/// FNV-1a over `bytes` (the trailer algorithm).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StateHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Frames `payload` into a checkpoint file image: magic, kind tag,
/// payload, checksum trailer.
pub fn encode(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + kind.len() + payload.len() + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(kind.len() as u32).to_le_bytes());
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses and verifies a checkpoint file image, returning `(kind,
/// payload)`. Truncated, oversized, or checksum-failed images are
/// rejected with a [`CkptError`] describing what was wrong.
pub fn decode(bytes: &[u8]) -> Result<(String, Vec<u8>), CkptError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CkptError> {
        let end = pos.checked_add(n).ok_or(CkptError::Truncated)?;
        // The trailer is not part of the framed region.
        if end > bytes.len().saturating_sub(8) {
            return Err(CkptError::Truncated);
        }
        let s = &bytes[*pos..end];
        *pos = end;
        Ok(s)
    };
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(CkptError::Truncated);
    }
    if take(&mut pos, MAGIC.len())? != MAGIC {
        return Err(CkptError::corrupt("bad magic (not a checkpoint file?)"));
    }
    let kind_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    if kind_len > MAX_KIND_LEN {
        return Err(CkptError::corrupt(format!("kind tag of {kind_len} bytes")));
    }
    let kind = std::str::from_utf8(take(&mut pos, kind_len)?)
        .map_err(|_| CkptError::corrupt("kind tag is not UTF-8"))?
        .to_owned();
    let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(CkptError::corrupt(format!(
            "payload of {payload_len} bytes"
        )));
    }
    let payload = take(&mut pos, payload_len as usize)?.to_vec();
    if pos != bytes.len() - 8 {
        return Err(CkptError::corrupt(format!(
            "{} trailing bytes after payload",
            bytes.len() - 8 - pos
        )));
    }
    let stored = u64::from_le_bytes(bytes[pos..].try_into().expect("8 bytes"));
    let actual = checksum(&bytes[..pos]);
    if stored != actual {
        return Err(CkptError::corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    Ok((kind, payload))
}

/// Writes `bytes` to `path` crash-atomically: the data lands in a
/// temporary sibling (`<name>.tmp`), is fsync'd, and is renamed over the
/// final name, so a reader (or a crash at any point) sees either the old
/// complete file or the new complete file — never a torn mix. The parent
/// directory is fsync'd afterwards on a best-effort basis so the rename
/// itself survives power loss.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        // Directory fsync is advisory: not all filesystems support
        // opening a directory for sync, and the rename is already atomic.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// One decoded checkpoint pulled from a [`CheckpointRing`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Monotonic sequence number (from the file name).
    pub seq: u64,
    /// The file it was read from.
    pub path: PathBuf,
    /// The producer's kind tag (e.g. `"soak"`).
    pub kind: String,
    /// The serialized state.
    pub payload: Vec<u8>,
}

/// Status of the newest checkpoint file in a ring, decoded for health
/// reporting without keeping the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingStatus {
    /// Sequence number of the newest file present.
    pub seq: u64,
    /// Whether it decoded and passed its checksum.
    pub valid: bool,
    /// Its kind tag when valid.
    pub kind: Option<String>,
}

/// A bounded ring of checkpoint files in one directory.
///
/// Files are named `ckpt-NNNNNN.svc` with a monotonically increasing
/// sequence number; writing a new checkpoint prunes the oldest files
/// beyond the retention count. Recovery scans newest-first and returns
/// the first file that decodes cleanly, so a torn newest checkpoint
/// falls back to its predecessor.
#[derive(Debug)]
pub struct CheckpointRing {
    dir: PathBuf,
    keep: usize,
    next_seq: u64,
}

impl CheckpointRing {
    /// Opens (creating if needed) a ring at `dir` retaining `keep`
    /// checkpoints. Stale `.tmp` files from an interrupted writer are
    /// removed; existing checkpoints are kept and the sequence continues
    /// after the highest one found.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero.
    pub fn open(dir: &Path, keep: usize) -> io::Result<CheckpointRing> {
        assert!(keep > 0, "a ring must retain at least one checkpoint");
        fs::create_dir_all(dir)?;
        let mut next_seq = 0;
        for (seq, path) in Self::scan(dir)? {
            next_seq = next_seq.max(seq + 1);
            let _ = path; // existing checkpoints are kept
        }
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(CheckpointRing {
            dir: dir.to_path_buf(),
            keep,
            next_seq,
        })
    }

    /// The ring's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next write will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames, checksums, and atomically writes one checkpoint, then
    /// prunes files beyond the retention count. Returns the path written.
    pub fn write(&mut self, kind: &str, payload: &[u8]) -> io::Result<PathBuf> {
        let path = self.path_for(self.next_seq);
        write_atomic(&path, &encode(kind, payload))?;
        self.next_seq += 1;
        self.prune()?;
        Ok(path)
    }

    /// All checkpoint files present, ascending by sequence number.
    pub fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        Self::scan(&self.dir)
    }

    /// The newest checkpoint that decodes cleanly, scanning backwards
    /// over torn or corrupt files. `None` if no valid checkpoint exists.
    pub fn newest_valid(&self) -> io::Result<Option<Checkpoint>> {
        let mut files = Self::scan(&self.dir)?;
        files.reverse();
        for (seq, path) in files {
            let Ok(bytes) = fs::read(&path) else { continue };
            if let Ok((kind, payload)) = decode(&bytes) {
                return Ok(Some(Checkpoint {
                    seq,
                    path,
                    kind,
                    payload,
                }));
            }
        }
        Ok(None)
    }

    /// Decodes just the newest file for health reporting: its sequence
    /// number and whether its checksum holds.
    pub fn status(&self) -> io::Result<Option<RingStatus>> {
        let Some((seq, path)) = Self::scan(&self.dir)?.into_iter().next_back() else {
            return Ok(None);
        };
        let decoded = fs::read(&path).ok().and_then(|b| decode(&b).ok());
        Ok(Some(RingStatus {
            seq,
            valid: decoded.is_some(),
            kind: decoded.map(|(kind, _)| kind),
        }))
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:06}.svc"))
    }

    fn prune(&self) -> io::Result<()> {
        let files = Self::scan(&self.dir)?;
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    fn scan(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".svc"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((seq, path));
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("svc-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let img = encode("soak", b"hello state");
        let (kind, payload) = decode(&img).unwrap();
        assert_eq!(kind, "soak");
        assert_eq!(payload, b"hello state");
    }

    #[test]
    fn truncation_fails_cleanly_at_every_length() {
        let img = encode("run", &[7u8; 100]);
        for n in 0..img.len() {
            assert!(decode(&img[..n]).is_err(), "prefix of {n} bytes accepted");
        }
        decode(&img).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let img = encode("run", b"payload bytes");
        for i in 0..img.len() {
            let mut bad = img.clone();
            bad[i] ^= 1;
            assert!(decode(&bad).is_err(), "bit flip at byte {i} accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut img = encode("run", b"x");
        img.extend_from_slice(b"junk");
        assert!(decode(&img).is_err());
    }

    #[test]
    fn ring_prunes_to_keep_and_continues_sequence() {
        let dir = scratch("ring");
        let mut ring = CheckpointRing::open(&dir, 3).unwrap();
        for i in 0..5u8 {
            ring.write("t", &[i]).unwrap();
        }
        let files = ring.list().unwrap();
        assert_eq!(
            files.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Re-opening resumes numbering after the highest survivor.
        drop(ring);
        let mut ring = CheckpointRing::open(&dir, 3).unwrap();
        assert_eq!(ring.next_seq(), 5);
        ring.write("t", &[9]).unwrap();
        assert_eq!(ring.newest_valid().unwrap().unwrap().seq, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_skips_torn_checkpoint() {
        let dir = scratch("torn");
        let mut ring = CheckpointRing::open(&dir, 4).unwrap();
        ring.write("t", b"old good").unwrap();
        let newest = ring.write("t", b"new good").unwrap();
        // Tear the newest file in half, as a SIGKILL mid-write would.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let got = ring.newest_valid().unwrap().unwrap();
        assert_eq!(got.seq, 0);
        assert_eq!(got.payload, b"old good");
        let status = ring.status().unwrap().unwrap();
        assert_eq!(status.seq, 1);
        assert!(!status.valid);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_cleaned_on_open() {
        let dir = scratch("tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ckpt-000007.svc.tmp"), b"half").unwrap();
        let ring = CheckpointRing::open(&dir, 2).unwrap();
        assert!(!dir.join("ckpt-000007.svc.tmp").exists());
        assert!(ring.newest_valid().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_existing_content() {
        let dir = scratch("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!tmp_sibling(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
