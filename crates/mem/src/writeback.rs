use std::collections::VecDeque;

use svc_sim::fault::{FaultEvent, FaultSite, Faults};
use svc_sim::trace::{Category, TraceEvent, Tracer};
use svc_types::{Cycle, PuId};

/// A bounded writeback buffer.
///
/// Castouts (dirty replacements, committed-version flushes) enter the
/// buffer and drain to the next level one at a time, each drain occupying
/// `drain_cycles`. A push that finds the buffer full stalls the pushing
/// controller until the oldest entry has drained — this is what makes the
/// base SVC design's commit-time writeback *burst* visible as commit
/// latency (paper §3.2.6 problem 1).
///
/// # Example
///
/// ```
/// use svc_mem::WritebackBuffer;
/// use svc_types::Cycle;
/// let mut wb = WritebackBuffer::new(1, 4);
/// assert_eq!(wb.push(Cycle(0)), Cycle(0));      // accepted immediately
/// let accepted = wb.push(Cycle(0));             // buffer full: stall
/// assert_eq!(accepted, Cycle(4));               // until the first drains
/// ```
#[derive(Debug, Clone)]
pub struct WritebackBuffer {
    capacity: usize,
    drain_cycles: u64,
    // Completion times of entries still in the buffer, oldest first.
    drains: VecDeque<Cycle>,
    last_drain_done: Cycle,
    pushes: u64,
    stall_cycles: u64,
    tracer: Tracer,
    faults: Faults,
    pu: PuId,
}

impl WritebackBuffer {
    /// Creates a buffer of `capacity` entries, each taking `drain_cycles`
    /// to reach the next level.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `drain_cycles` is zero.
    pub fn new(capacity: usize, drain_cycles: u64) -> WritebackBuffer {
        assert!(capacity > 0 && drain_cycles > 0);
        WritebackBuffer {
            capacity,
            drain_cycles,
            drains: VecDeque::new(),
            last_drain_done: Cycle::ZERO,
            pushes: 0,
            stall_cycles: 0,
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
            pu: PuId(0),
        }
    }

    /// Attaches a tracing handle and names the owning PU; pushes emit
    /// `wb`-category events.
    pub fn set_tracer(&mut self, tracer: Tracer, pu: PuId) {
        self.tracer = tracer;
        self.pu = pu;
    }

    /// Attaches a fault injector. An active injector may transiently
    /// refuse a push (the pusher stalls as if the buffer had overflowed).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Offers one castout at `now`; returns the cycle at which the buffer
    /// accepts it (equal to `now` unless the buffer is full).
    pub fn push(&mut self, now: Cycle) -> Cycle {
        self.expire(now);
        self.pushes += 1;
        let (mut accepted, mut stalled) = if self.drains.len() < self.capacity {
            (now, 0)
        } else {
            let oldest = *self.drains.front().expect("full buffer is non-empty");
            self.drains.pop_front();
            self.stall_cycles += oldest.since(now);
            (now.max(oldest), oldest.since(now))
        };
        if let Some(penalty) = self.faults.inject(FaultSite::WbOverflow) {
            // Transient overflow: the buffer refuses the entry until the
            // penalty has elapsed.
            accepted += penalty;
            stalled += penalty;
            self.stall_cycles += penalty;
            let pu = self.pu;
            self.tracer.emit(now, Category::Fault, || {
                TraceEvent::Fault(FaultEvent {
                    site: FaultSite::WbOverflow,
                    pu: Some(pu),
                    line: None,
                    penalty,
                })
            });
        }
        // Drains are serial: each begins after the previous one finishes.
        let start = accepted.max(self.last_drain_done);
        let done = start + self.drain_cycles;
        self.last_drain_done = done;
        self.drains.push_back(done);
        let pu = self.pu;
        let occupancy = self.drains.len();
        self.tracer
            .emit(now, Category::Writeback, || TraceEvent::WritebackPush {
                pu,
                accepted,
                stalled,
                occupancy,
            });
        accepted
    }

    /// Entries still draining at `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.drains.len()
    }

    /// The cycle by which everything currently buffered will have drained.
    pub fn drained_by(&self) -> Cycle {
        self.last_drain_done
    }

    /// Total castouts accepted.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total cycles pushers spent stalled on a full buffer.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Resets the statistics counters (entries still draining are kept).
    pub fn reset_stats(&mut self) {
        self.pushes = 0;
        self.stall_cycles = 0;
    }

    fn expire(&mut self, now: Cycle) {
        while matches!(self.drains.front(), Some(&d) if d <= now) {
            self.drains.pop_front();
        }
    }
}

impl svc_types::Checkpointable for WritebackBuffer {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_usize(self.drains.len());
        for d in &self.drains {
            d.save_state(w);
        }
        self.last_drain_done.save_state(w);
        self.pushes.save_state(w);
        self.stall_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let n = r.take_usize()?;
        if n > self.capacity {
            return Err(svc_types::CkptError::corrupt(format!(
                "{n} buffered writebacks exceed capacity {}",
                self.capacity
            )));
        }
        self.drains.clear();
        for _ in 0..n {
            self.drains.push_back(r.take::<Cycle>()?);
        }
        self.last_drain_done.restore_state(r)?;
        self.pushes.restore_state(r)?;
        self.stall_cycles.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full() {
        let mut wb = WritebackBuffer::new(2, 4);
        assert_eq!(wb.push(Cycle(0)), Cycle(0));
        assert_eq!(wb.push(Cycle(0)), Cycle(0));
        assert_eq!(wb.occupancy(Cycle(0)), 2);
    }

    #[test]
    fn full_buffer_stalls_push() {
        let mut wb = WritebackBuffer::new(1, 4);
        wb.push(Cycle(0)); // drains at 4
        let accepted = wb.push(Cycle(1));
        assert_eq!(accepted, Cycle(4));
        assert_eq!(wb.stall_cycles(), 3);
    }

    #[test]
    fn drains_are_serialized() {
        let mut wb = WritebackBuffer::new(4, 4);
        wb.push(Cycle(0)); // drains 0..4
        wb.push(Cycle(0)); // drains 4..8
        wb.push(Cycle(0)); // drains 8..12
        assert_eq!(wb.drained_by(), Cycle(12));
        assert_eq!(wb.occupancy(Cycle(4)), 2);
        assert_eq!(wb.occupancy(Cycle(12)), 0);
    }

    #[test]
    fn injected_overflow_delays_acceptance() {
        use svc_sim::fault::{FaultConfig, Faults};
        let mut wb = WritebackBuffer::new(4, 4);
        wb.set_faults(Faults::new(
            &FaultConfig::parse("wb_overflow=1.0,penalty=1").unwrap(),
            3,
        ));
        assert_eq!(wb.push(Cycle(0)), Cycle(1), "refused for one cycle");
        assert_eq!(wb.stall_cycles(), 1);
    }

    #[test]
    fn burst_then_idle_recovers() {
        let mut wb = WritebackBuffer::new(2, 2);
        wb.push(Cycle(0));
        wb.push(Cycle(0));
        // Long idle period lets everything drain.
        assert_eq!(wb.push(Cycle(100)), Cycle(100));
        assert_eq!(wb.pushes(), 3);
        assert_eq!(wb.stall_cycles(), 0);
    }
}
