//! The backing store behind the L1 level: main memory, optionally fronted
//! by a shared L2 cache.
//!
//! The paper models the next level as a flat 10-cycle penalty (§4.2);
//! [`Backing`] reproduces exactly that by default, and adds an opt-in
//! shared L2 (an extension study — see the `l2` ablation) that absorbs
//! part of the miss traffic at a lower latency. Only *architectural* data
//! ever lives here; speculative versions stay in the L1 level.

use svc_types::{Addr, LineId, Word};

use crate::{CacheArray, CacheGeometry, MainMemory, Slot};

/// Configuration of the optional shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Geometry of the L2 (e.g. 256KB, 8-way, 16-byte lines).
    pub geometry: CacheGeometry,
    /// Penalty for a fill supplied by the L2.
    pub hit_cycles: u64,
    /// Additional penalty when the L2 misses to main memory.
    pub memory_cycles: u64,
}

impl L2Config {
    /// A 256KB, 8-way L2 with 6-cycle hits and a 24-cycle memory behind
    /// it — a plausible mid-90s second level for the paper's machine.
    pub fn typical() -> L2Config {
        // 256KB / 16B lines = 16384 lines; 8-way => 2048 sets.
        L2Config {
            geometry: CacheGeometry::new(2048, 8, 4, 4),
            hit_cycles: 6,
            memory_cycles: 24,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct L2Line {
    line: Option<LineId>,
    dirty: bool,
    data: Vec<Word>,
}

impl Slot for L2Line {
    fn held_line(&self) -> Option<LineId> {
        self.line
    }
}

#[derive(Debug, Clone)]
struct L2 {
    array: CacheArray<L2Line>,
    config: L2Config,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Main memory, optionally fronted by a shared L2. Drop-in replacement
/// for direct [`MainMemory`] access in the L1 controllers: word reads and
/// writes are functional (data is always consistent), while
/// [`fill_penalty`](Backing::fill_penalty) reports the *timing* of a fill
/// and updates the L2's state.
#[derive(Debug, Clone)]
pub struct Backing {
    l2: Option<L2>,
    memory: MainMemory,
    /// Flat penalty when no L2 is configured (the paper's 10 cycles).
    flat_cycles: u64,
}

impl Backing {
    /// A flat backing store: every fill costs `flat_cycles` (the paper's
    /// configuration).
    pub fn flat(flat_cycles: u64) -> Backing {
        Backing {
            l2: None,
            memory: MainMemory::new(),
            flat_cycles,
        }
    }

    /// A backing store fronted by a shared L2.
    pub fn with_l2(config: L2Config) -> Backing {
        Backing {
            l2: Some(L2 {
                array: CacheArray::new(config.geometry),
                config,
                hits: 0,
                misses: 0,
                writebacks: 0,
            }),
            memory: MainMemory::new(),
            flat_cycles: config.hit_cycles + config.memory_cycles,
        }
    }

    /// Whether an L2 is configured.
    pub fn has_l2(&self) -> bool {
        self.l2.is_some()
    }

    /// Functional read of one word (counts as next-level traffic).
    pub fn read(&mut self, addr: Addr) -> Word {
        self.memory.read(addr)
    }

    /// Functional write of one word. With an L2, the write lands in any
    /// resident L2 line too so later L2 hits see it.
    pub fn write(&mut self, addr: Addr, value: Word) {
        if let Some(l2) = &mut self.l2 {
            let g = *l2.array.geometry();
            if let Some(r) = l2.array.find(g.line_of(addr)) {
                let slot = l2.array.slot_mut(r);
                slot.data[g.offset(addr)] = value;
                slot.dirty = true;
            }
        }
        self.memory.write(addr, value);
    }

    /// Reads a word without counting traffic.
    pub fn peek(&self, addr: Addr) -> Word {
        self.memory.peek(addr)
    }

    /// The timing penalty for a fill of `line` (an *L1 line*, in the L1's
    /// geometry-agnostic line-id space scaled by `words_per_line`), and
    /// the L2 state update it implies. Without an L2, the flat penalty.
    pub fn fill_penalty(&mut self, line: LineId, words_per_line: usize) -> u64 {
        let Some(l2) = &mut self.l2 else {
            return self.flat_cycles;
        };
        let g = *l2.array.geometry();
        // Map the L1 line's first word into the L2's line space.
        let addr = line.first_word(words_per_line);
        let l2_line = g.line_of(addr);
        if l2.array.find(l2_line).is_some() {
            let r = l2.array.find(l2_line).expect("found");
            l2.array.touch(r);
            l2.hits += 1;
            return l2.config.hit_cycles;
        }
        // Miss: allocate in the L2 (evicting writes back to memory).
        l2.misses += 1;
        let r = l2.array.victim_way(l2_line);
        let victim = l2.array.slot(r);
        if victim.dirty {
            let vline = victim.line.expect("dirty line has a tag");
            self.memory
                .write_line_full(vline, &victim.data, g.words_per_line());
            l2.writebacks += 1;
        }
        let data = self.memory.read_line(l2_line, g.words_per_line());
        *l2.array.slot_mut(r) = L2Line {
            line: Some(l2_line),
            dirty: false,
            data,
        };
        l2.array.touch(r);
        l2.config.hit_cycles + l2.config.memory_cycles
    }

    /// `(hits, misses, writebacks)` of the L2, all zero when absent.
    pub fn l2_stats(&self) -> (u64, u64, u64) {
        match &self.l2 {
            Some(l2) => (l2.hits, l2.misses, l2.writebacks),
            None => (0, 0, 0),
        }
    }

    /// Resets traffic counters.
    pub fn reset_stats(&mut self) {
        self.memory.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.hits = 0;
            l2.misses = 0;
            l2.writebacks = 0;
        }
    }
}

impl svc_types::Checkpointable for L2Line {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.line.save_state(w);
        self.dirty.save_state(w);
        self.data.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.line.restore_state(r)?;
        self.dirty.restore_state(r)?;
        self.data.restore_state(r)
    }
}

impl svc_types::Checkpointable for Backing {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_bool(self.l2.is_some());
        if let Some(l2) = &self.l2 {
            l2.array.save_state(w);
            l2.hits.save_state(w);
            l2.misses.save_state(w);
            l2.writebacks.save_state(w);
        }
        self.memory.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let has_l2 = r.take_bool()?;
        if has_l2 != self.l2.is_some() {
            return Err(svc_types::CkptError::corrupt(
                "L2 configuration disagrees with the checkpoint",
            ));
        }
        if let Some(l2) = &mut self.l2 {
            l2.array.restore_state(r)?;
            l2.hits.restore_state(r)?;
            l2.misses.restore_state(r)?;
            l2.writebacks.restore_state(r)?;
        }
        self.memory.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_backing_charges_constant_penalty() {
        let mut b = Backing::flat(10);
        assert!(!b.has_l2());
        assert_eq!(b.fill_penalty(LineId(0), 4), 10);
        assert_eq!(b.fill_penalty(LineId(0), 4), 10);
        assert_eq!(b.l2_stats(), (0, 0, 0));
    }

    #[test]
    fn l2_miss_then_hit() {
        let mut cfg = L2Config::typical();
        cfg.geometry = CacheGeometry::new(4, 2, 4, 4);
        let mut b = Backing::with_l2(cfg);
        assert!(b.has_l2());
        let miss = b.fill_penalty(LineId(3), 4);
        assert_eq!(miss, 30, "hit 6 + memory 24");
        let hit = b.fill_penalty(LineId(3), 4);
        assert_eq!(hit, 6);
        assert_eq!(b.l2_stats(), (1, 1, 0));
    }

    #[test]
    fn writes_update_resident_l2_lines() {
        let mut cfg = L2Config::typical();
        cfg.geometry = CacheGeometry::new(4, 2, 4, 4);
        let mut b = Backing::with_l2(cfg);
        b.write(Addr(12), Word(5));
        b.fill_penalty(LineId(3), 4); // L2 now caches the line
        b.write(Addr(13), Word(6)); // resident: must land in L2 too
        assert_eq!(b.peek(Addr(13)), Word(6));
        // Evict the line through conflicting fills; the dirty write must
        // survive to memory.
        b.fill_penalty(LineId(7), 4);
        b.fill_penalty(LineId(11), 4);
        assert_eq!(b.peek(Addr(13)), Word(6));
    }

    #[test]
    fn l1_lines_smaller_than_l2_lines_map_correctly() {
        // One-word L1 lines against 4-word L2 lines: four consecutive L1
        // lines share one L2 line, so after one miss the rest hit.
        let mut cfg = L2Config::typical();
        cfg.geometry = CacheGeometry::new(4, 2, 4, 4);
        let mut b = Backing::with_l2(cfg);
        assert_eq!(b.fill_penalty(LineId(0), 1), 30);
        assert_eq!(b.fill_penalty(LineId(1), 1), 6);
        assert_eq!(b.fill_penalty(LineId(2), 1), 6);
        assert_eq!(b.fill_penalty(LineId(3), 1), 6);
        assert_eq!(b.fill_penalty(LineId(4), 1), 30, "next L2 line");
    }
}
