use std::collections::HashMap;

use svc_types::{Addr, Cycle, LineId, Word};

/// The next level of the memory hierarchy: a flat, word-addressable store
/// with a fixed access penalty.
///
/// Every unwritten word reads as [`Word::ZERO`]. The paper charges "an
/// additional penalty of 10 cycles for a miss supplied by the next level of
/// the data memory" (§4.2); that penalty lives in
/// [`MemTiming::memory_cycles`](crate::MemTiming::memory_cycles) and is
/// applied by the requesting controller — `MainMemory` itself only stores
/// data and counts traffic.
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    words: HashMap<Addr, Word>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> MainMemory {
        MainMemory::default()
    }

    /// Reads one word.
    pub fn read(&mut self, addr: Addr) -> Word {
        self.reads += 1;
        self.peek(addr)
    }

    /// Writes one word.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.writes += 1;
        if value == Word::ZERO {
            // Keep the map sparse: zero is the default content.
            self.words.remove(&addr);
        } else {
            self.words.insert(addr, value);
        }
    }

    /// Reads a full line of `words_per_line` words.
    pub fn read_line(&mut self, line: LineId, words_per_line: usize) -> Vec<Word> {
        (0..words_per_line)
            .map(|i| self.read(line.word(i, words_per_line)))
            .collect()
    }

    /// Writes a full line. Entries that are `None` are words the writer does
    /// not own (e.g. sub-blocks never stored to); they are left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != words_per_line`.
    pub fn write_line(&mut self, line: LineId, data: &[Option<Word>], words_per_line: usize) {
        assert_eq!(data.len(), words_per_line);
        for (i, w) in data.iter().enumerate() {
            if let Some(w) = w {
                self.write(line.word(i, words_per_line), *w);
            }
        }
    }

    /// Writes a full line the writer owns entirely — the common castout
    /// and flush case, spared the per-word `Option` wrapping of
    /// [`write_line`](Self::write_line).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != words_per_line`.
    pub fn write_line_full(&mut self, line: LineId, data: &[Word], words_per_line: usize) {
        assert_eq!(data.len(), words_per_line);
        for (i, w) in data.iter().enumerate() {
            self.write(line.word(i, words_per_line), *w);
        }
    }

    /// Reads a word without counting it as traffic (for end-of-run
    /// verification).
    pub fn peek(&self, addr: Addr) -> Word {
        self.words.get(&addr).copied().unwrap_or(Word::ZERO)
    }

    /// Number of word reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of word writes absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    /// Completion time of an access that reaches memory at `now` with a
    /// `penalty`-cycle access time.
    pub fn access_done(&self, now: Cycle, penalty: u64) -> Cycle {
        now + penalty
    }
}

impl svc_types::Checkpointable for MainMemory {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.words.save_state(w);
        self.reads.save_state(w);
        self.writes.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.words.restore_state(r)?;
        self.reads.restore_state(r)?;
        self.writes.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read(Addr(1000)), Word::ZERO);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write(Addr(4), Word(99));
        assert_eq!(m.read(Addr(4)), Word(99));
        assert_eq!(m.peek(Addr(4)), Word(99));
    }

    #[test]
    fn zero_write_keeps_map_sparse() {
        let mut m = MainMemory::new();
        m.write(Addr(4), Word(99));
        m.write(Addr(4), Word::ZERO);
        assert_eq!(m.peek(Addr(4)), Word::ZERO);
        assert!(m.words.is_empty());
    }

    #[test]
    fn line_roundtrip_with_partial_mask() {
        let mut m = MainMemory::new();
        m.write(Addr(9), Word(7)); // line 2 (of 4-word lines), offset 1
        let line = LineId(2);
        m.write_line(line, &[Some(Word(1)), None, Some(Word(3)), None], 4);
        assert_eq!(
            m.read_line(line, 4),
            vec![Word(1), Word(7), Word(3), Word::ZERO],
            "masked-out words keep their previous content"
        );
    }

    #[test]
    fn traffic_counters() {
        let mut m = MainMemory::new();
        m.write(Addr(0), Word(1));
        m.read(Addr(0));
        m.read(Addr(1));
        assert_eq!(m.writes(), 1);
        assert_eq!(m.reads(), 2);
        m.reset_stats();
        assert_eq!((m.reads(), m.writes()), (0, 0));
        // peek is not traffic
        m.peek(Addr(0));
        assert_eq!(m.reads(), 0);
    }

    #[test]
    fn access_done_applies_penalty() {
        let m = MainMemory::new();
        assert_eq!(m.access_done(Cycle(5), 10), Cycle(15));
    }
}
