use svc_types::{Addr, LineId};

/// The shape of one cache: sets × ways, line size, and sub-block
/// (versioning-block) size.
///
/// The paper's RL design (§3.7) distinguishes the *address block* (the
/// storage unit with a tag — here [`words_per_line`](Self::words_per_line))
/// from the *versioning block* (the unit at which the `L`/`S` bits are kept
/// — here [`words_per_subblock`](Self::words_per_subblock)). Designs before
/// RL simply use one-word lines, i.e. both set to 1.
///
/// # Example
///
/// ```
/// use svc_mem::CacheGeometry;
/// use svc_types::Addr;
/// // 4-way 8KB cache with 16-byte (4-word) lines: 128 sets.
/// let g = CacheGeometry::new(128, 4, 4, 1);
/// assert_eq!(g.lines(), 512);
/// let a = Addr(0x1234);
/// assert_eq!(g.set_index(g.line_of(a)), (0x1234 / 4) % 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
    words_per_line: usize,
    words_per_subblock: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `sets` is not a power of two, or
    /// if `words_per_subblock` does not divide `words_per_line`.
    pub fn new(
        sets: usize,
        ways: usize,
        words_per_line: usize,
        words_per_subblock: usize,
    ) -> CacheGeometry {
        assert!(sets > 0 && ways > 0 && words_per_line > 0 && words_per_subblock > 0);
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert_eq!(
            words_per_line % words_per_subblock,
            0,
            "sub-block size must divide line size"
        );
        CacheGeometry {
            sets,
            ways,
            words_per_line,
            words_per_subblock,
        }
    }

    /// Geometry for the pedagogical designs with one-word lines (paper
    /// §3.2: "This design also assumes that the cache line size is one
    /// word").
    pub fn word_lines(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry::new(sets, ways, 1, 1)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Words per line (address block).
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    /// Words per sub-block (versioning block).
    pub fn words_per_subblock(&self) -> usize {
        self.words_per_subblock
    }

    /// Number of sub-blocks per line.
    pub fn subblocks_per_line(&self) -> usize {
        self.words_per_line / self.words_per_subblock
    }

    /// Total line capacity (sets × ways).
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total data capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.lines() * self.words_per_line
    }

    /// The line containing `addr`.
    pub fn line_of(&self, addr: Addr) -> LineId {
        addr.line(self.words_per_line)
    }

    /// The set that `line` maps to.
    pub fn set_index(&self, line: LineId) -> usize {
        (line.0 % self.sets as u64) as usize
    }

    /// The word offset of `addr` within its line.
    pub fn offset(&self, addr: Addr) -> usize {
        addr.offset_in_line(self.words_per_line)
    }

    /// The sub-block (versioning block) index of `addr` within its line.
    pub fn subblock_of(&self, addr: Addr) -> usize {
        self.offset(addr) / self.words_per_subblock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let g = CacheGeometry::new(64, 4, 4, 2);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.lines(), 256);
        assert_eq!(g.capacity_words(), 1024);
        assert_eq!(g.subblocks_per_line(), 2);
    }

    #[test]
    fn address_slicing() {
        let g = CacheGeometry::new(4, 1, 4, 2);
        let a = Addr(0x2B); // word 43: line 10, offset 3, subblock 1, set 2
        assert_eq!(g.line_of(a), LineId(10));
        assert_eq!(g.set_index(LineId(10)), 2);
        assert_eq!(g.offset(a), 3);
        assert_eq!(g.subblock_of(a), 1);
    }

    #[test]
    fn word_lines_constructor() {
        let g = CacheGeometry::word_lines(8, 2);
        assert_eq!(g.words_per_line(), 1);
        assert_eq!(g.subblocks_per_line(), 1);
        assert_eq!(g.offset(Addr(123)), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        CacheGeometry::new(3, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_subblock_panics() {
        CacheGeometry::new(4, 1, 4, 3);
    }
}
