use svc_sim::fault::{FaultEvent, FaultSite, Faults};
use svc_sim::trace::{BusOp, Category, TraceEvent, Tracer};
use svc_types::{Cycle, LineId, PuId};

/// The time slice granted to one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycle at which the transaction wins arbitration and starts.
    pub start: Cycle,
    /// Cycle at which the bus is free again (transaction complete).
    pub done: Cycle,
}

/// The split-transaction snooping bus, modelled as a serially-occupied,
/// timed resource.
///
/// Per the paper's configuration (§4.2): "a 4-word split-transaction
/// snooping bus where a typical transaction requires 3 processor cycles.
/// Bus arbitration occurs only once for cache to cache data transfers. An
/// extra cycle is used to flush a committed version to the next level
/// memory." The `extra` argument of [`transact`](Bus::transact) carries
/// such per-transaction additions.
///
/// Utilization (Table 3) is busy cycles over elapsed cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    txn_cycles: u64,
    occupancy_cycles: u64,
    busy_until: Cycle,
    transactions: u64,
    busy_cycles: u64,
    /// Cycles each PU spent between request and grant (arbitration /
    /// queueing delay), grown on demand to the highest requesting PU.
    wait_cycles: Vec<u64>,
    total_wait_cycles: u64,
    tracer: Tracer,
    faults: Faults,
}

impl Bus {
    /// Creates a bus whose transactions complete in `txn_cycles` but,
    /// being split-transaction, block the next arbitration for the same
    /// time (no pipelining). See [`Bus::pipelined`].
    ///
    /// # Panics
    ///
    /// Panics if `txn_cycles` is zero.
    pub fn new(txn_cycles: u64) -> Bus {
        Bus::pipelined(txn_cycles, txn_cycles)
    }

    /// Creates a split-transaction bus: each transaction *completes*
    /// after `txn_cycles` (plus any extra), but holds the bus against the
    /// next arbitration for only `occupancy_cycles` — address and data
    /// beats of consecutive transactions pipeline.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or occupancy exceeds latency.
    pub fn pipelined(txn_cycles: u64, occupancy_cycles: u64) -> Bus {
        assert!(txn_cycles > 0 && occupancy_cycles > 0);
        assert!(occupancy_cycles <= txn_cycles);
        Bus {
            txn_cycles,
            occupancy_cycles,
            busy_until: Cycle::ZERO,
            transactions: 0,
            busy_cycles: 0,
            wait_cycles: Vec::new(),
            total_wait_cycles: 0,
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
        }
    }

    /// Attaches a tracing handle; every grant emits a
    /// [`TraceEvent::BusTransaction`] when the `bus` category is enabled.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a fault injector. An active injector may drop a grant
    /// (forcing a delayed re-arbitration) or delay arbitration; a
    /// disabled one costs a single branch per transaction.
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Arbitrates for the bus at `now`: the transaction completes at
    /// `start + txn_cycles + extra`; the bus is free for the next
    /// arbitration after `occupancy` (plus the extra flush beats).
    /// Requests are served in call order (the caller is the arbiter's
    /// queue).
    pub fn transact(&mut self, now: Cycle, extra: u64) -> BusGrant {
        self.transact_as(BusOp::Other, None, None, now, extra)
    }

    /// Like [`transact`](Bus::transact), but attributes the grant to a
    /// transaction kind, requesting PU and line for the event trace.
    pub fn transact_as(
        &mut self,
        op: BusOp,
        pu: Option<PuId>,
        line: Option<LineId>,
        now: Cycle,
        extra: u64,
    ) -> BusGrant {
        let mut request = now;
        if self.faults.is_active() {
            if let Some(penalty) = self.faults.inject(FaultSite::BusDrop) {
                // The grant is dropped mid-arbitration: the address beats
                // are wasted (an extra transaction) and the requestor must
                // re-arbitrate after the penalty.
                self.transactions += 1;
                request += penalty;
                self.tracer.emit(now, Category::Fault, || {
                    TraceEvent::Fault(FaultEvent {
                        site: FaultSite::BusDrop,
                        pu,
                        line,
                        penalty,
                    })
                });
            }
            if let Some(penalty) = self.faults.inject(FaultSite::BusDelay) {
                request += penalty;
                self.tracer.emit(now, Category::Fault, || {
                    TraceEvent::Fault(FaultEvent {
                        site: FaultSite::BusDelay,
                        pu,
                        line,
                        penalty,
                    })
                });
            }
        }
        let start = request.max(self.busy_until);
        let occupancy = self.occupancy_cycles + extra;
        let done = start + (self.txn_cycles + extra);
        self.busy_until = start + occupancy;
        self.transactions += 1;
        self.busy_cycles += occupancy;
        // Arbitration wait: cycles lost between the request at `now` and
        // the grant at `start` (includes any injected fault delay).
        let wait = start.since(now);
        self.total_wait_cycles += wait;
        if let Some(pu) = pu {
            if self.wait_cycles.len() <= pu.index() {
                self.wait_cycles.resize(pu.index() + 1, 0);
            }
            self.wait_cycles[pu.index()] += wait;
        }
        self.tracer
            .emit(now, Category::Bus, || TraceEvent::BusTransaction {
                op,
                pu,
                line,
                start,
                done,
                extra,
            });
        BusGrant { start, done }
    }

    /// The first cycle at which the bus will be free.
    pub fn free_at(&self) -> Cycle {
        self.busy_until
    }

    /// Total transactions granted.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles the bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cycles `pu` spent waiting between bus request and grant.
    pub fn wait_cycles(&self, pu: PuId) -> u64 {
        self.wait_cycles.get(pu.index()).copied().unwrap_or(0)
    }

    /// Per-PU arbitration-wait cycles, indexed by PU (may be shorter than
    /// the PU count if higher PUs never requested).
    pub fn per_pu_wait_cycles(&self) -> &[u64] {
        &self.wait_cycles
    }

    /// Total arbitration-wait cycles over all requesters (including
    /// transactions not attributed to a PU).
    pub fn total_wait_cycles(&self) -> u64 {
        self.total_wait_cycles
    }

    /// Resets the statistics counters (not the busy state).
    pub fn reset_stats(&mut self) {
        self.transactions = 0;
        self.busy_cycles = 0;
        self.wait_cycles.clear();
        self.total_wait_cycles = 0;
    }
}

impl svc_types::Checkpointable for Bus {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.busy_until.save_state(w);
        self.transactions.save_state(w);
        self.busy_cycles.save_state(w);
        self.wait_cycles.save_state(w);
        self.total_wait_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.busy_until.restore_state(r)?;
        self.transactions.restore_state(r)?;
        self.busy_cycles.restore_state(r)?;
        self.wait_cycles.restore_state(r)?;
        self.total_wait_cycles.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_starts_immediately() {
        let mut bus = Bus::new(3);
        let g = bus.transact(Cycle(10), 0);
        assert_eq!(g.start, Cycle(10));
        assert_eq!(g.done, Cycle(13));
    }

    #[test]
    fn contention_serializes() {
        let mut bus = Bus::new(3);
        let g1 = bus.transact(Cycle(0), 0);
        let g2 = bus.transact(Cycle(1), 0);
        assert_eq!(g1.done, Cycle(3));
        assert_eq!(g2.start, Cycle(3));
        assert_eq!(g2.done, Cycle(6));
        assert_eq!(bus.free_at(), Cycle(6));
    }

    #[test]
    fn extra_cycles_extend_occupancy() {
        let mut bus = Bus::new(3);
        // Committed-version flush takes one extra cycle (paper §4.2 note 7).
        let g = bus.transact(Cycle(0), 1);
        assert_eq!(g.done, Cycle(4));
        assert_eq!(bus.busy_cycles(), 4);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut bus = Bus::new(2);
        bus.transact(Cycle(0), 0);
        bus.transact(Cycle(0), 1);
        assert_eq!(bus.transactions(), 2);
        assert_eq!(bus.busy_cycles(), 5);
        bus.reset_stats();
        assert_eq!(bus.transactions(), 0);
        assert_eq!(bus.busy_cycles(), 0);
        // Busy state survives the stats reset.
        assert_eq!(bus.free_at(), Cycle(5));
    }

    #[test]
    fn traced_transactions_are_recorded() {
        let tracer = Tracer::new(Category::Bus.bit(), 16);
        let mut bus = Bus::new(3);
        bus.set_tracer(tracer.clone());
        bus.transact_as(BusOp::Read, Some(PuId(1)), Some(LineId(7)), Cycle(5), 0);
        bus.transact(Cycle(6), 1);
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        match &records[0].event {
            TraceEvent::BusTransaction {
                op,
                pu,
                line,
                start,
                ..
            } => {
                assert_eq!(*op, BusOp::Read);
                assert_eq!(*pu, Some(PuId(1)));
                assert_eq!(*line, Some(LineId(7)));
                assert_eq!(*start, Cycle(5));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(matches!(
            records[1].event,
            TraceEvent::BusTransaction {
                op: BusOp::Other,
                pu: None,
                ..
            }
        ));
    }

    #[test]
    fn injected_drop_delays_and_counts_the_wasted_grant() {
        use svc_sim::fault::FaultConfig;
        let mut bus = Bus::new(3);
        bus.set_faults(Faults::new(
            &FaultConfig::parse("bus_drop=1.0,penalty=1").unwrap(),
            9,
        ));
        let tracer = Tracer::new(Category::Fault.bit(), 16);
        bus.set_tracer(tracer.clone());
        let g = bus.transact(Cycle(0), 0);
        assert_eq!(g.start, Cycle(1), "re-arbitrated after the penalty");
        assert_eq!(bus.transactions(), 2, "the dropped attempt is counted");
        assert!(matches!(
            tracer.records()[0].event,
            TraceEvent::Fault(e) if e.site == FaultSite::BusDrop
        ));
        // Same seed, same schedule.
        let mut again = Bus::new(3);
        again.set_faults(Faults::new(
            &FaultConfig::parse("bus_drop=1.0,penalty=1").unwrap(),
            9,
        ));
        assert_eq!(again.transact(Cycle(0), 0), g);
    }

    #[test]
    fn disabled_faults_change_nothing() {
        let mut plain = Bus::new(3);
        let mut hooked = Bus::new(3);
        hooked.set_faults(Faults::disabled());
        for i in 0..10 {
            assert_eq!(plain.transact(Cycle(i), 0), hooked.transact(Cycle(i), 0));
        }
        assert_eq!(plain.transactions(), hooked.transactions());
        assert_eq!(plain.busy_cycles(), hooked.busy_cycles());
    }

    #[test]
    fn arbitration_wait_is_attributed_per_pu() {
        let mut bus = Bus::new(3);
        bus.transact_as(BusOp::Read, Some(PuId(0)), None, Cycle(0), 0); // no wait
        bus.transact_as(BusOp::Read, Some(PuId(2)), None, Cycle(1), 0); // waits 2
        bus.transact(Cycle(2), 0); // anonymous, waits 4
        assert_eq!(bus.wait_cycles(PuId(0)), 0);
        assert_eq!(bus.wait_cycles(PuId(2)), 2);
        assert_eq!(bus.wait_cycles(PuId(3)), 0, "never requested");
        assert_eq!(bus.per_pu_wait_cycles(), &[0, 0, 2]);
        assert_eq!(bus.total_wait_cycles(), 6, "anonymous wait still totals");
        bus.reset_stats();
        assert_eq!(bus.total_wait_cycles(), 0);
        assert_eq!(bus.wait_cycles(PuId(2)), 0);
    }

    #[test]
    fn late_request_after_idle_gap() {
        let mut bus = Bus::new(3);
        bus.transact(Cycle(0), 0);
        let g = bus.transact(Cycle(100), 0);
        assert_eq!(g.start, Cycle(100));
        // Idle gap is not counted as busy.
        assert_eq!(bus.busy_cycles(), 6);
    }
}
