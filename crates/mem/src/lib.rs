//! Memory-hierarchy substrate for the SVC reproduction.
//!
//! The paper evaluates the SVC and the ARB on top of a conventional memory
//! substrate (§4.2): private or shared L1 storage, a split-transaction
//! snooping bus, a next level of memory with a 10-cycle penalty, MSHRs with
//! access combining, and writeback buffers. This crate implements those
//! building blocks; the `svc`, `svc-arb` and `svc-coherence` crates compose
//! them into complete memory systems.
//!
//! * [`CacheGeometry`] — sets × ways × line/sub-block sizes, address
//!   slicing;
//! * [`CacheArray`] — a generic set-associative array with LRU replacement,
//!   parameterised over the line-metadata type (each protocol brings its
//!   own);
//! * [`MainMemory`] — the word-addressable next level of memory;
//! * [`Bus`] — the shared snooping bus as a timed, occupancy-tracked
//!   resource;
//! * [`MshrFile`] — miss status holding registers with combining;
//! * [`WritebackBuffer`] — a bounded buffer of castouts draining to memory;
//! * [`Backing`] — main memory optionally fronted by a shared L2 (an
//!   extension study; the paper's flat 10-cycle next level is the
//!   default);
//! * [`MemTiming`] — the latency parameters of §4.2 in one place.
//!
//! # Example
//!
//! ```
//! use svc_mem::{Bus, MemTiming};
//! use svc_types::Cycle;
//!
//! let t = MemTiming::default();
//! let mut bus = Bus::new(t.bus_txn_cycles);
//! let g1 = bus.transact(Cycle(0), 0);
//! let g2 = bus.transact(Cycle(0), 0);
//! assert!(g2.start >= g1.done); // second transaction waits its turn
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod backing;
mod bus;
mod geometry;
mod memory;
mod mshr;
mod timing;
mod writeback;

pub use array::{CacheArray, Slot, WayList, WayRef};
pub use backing::{Backing, L2Config};
pub use bus::{Bus, BusGrant};
pub use geometry::CacheGeometry;
pub use memory::MainMemory;
pub use mshr::{MshrFile, MshrResult};
pub use timing::MemTiming;
pub use writeback::WritebackBuffer;
