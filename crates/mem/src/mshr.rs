use svc_sim::fault::{FaultEvent, FaultSite, Faults};
use svc_sim::trace::{Category, TraceEvent, Tracer};
use svc_types::{Cycle, LineId, PuId};

/// Outcome of presenting a miss to the [`MshrFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrResult {
    /// Cycle at which the requested line's data arrives.
    pub data_ready: Cycle,
    /// Whether this access combined into an already-outstanding miss to the
    /// same line (no new entry, no new fill).
    pub combined: bool,
    /// Cycles the request had to wait for a free register (structural
    /// stall), zero if an entry (or a combinable miss) was available.
    pub stalled: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    line: LineId,
    done_at: Cycle,
    combines: usize,
}

/// A file of Miss Status Holding Registers.
///
/// Models the paper's non-blocking load/store support (§4.2): a fixed number
/// of outstanding misses, with up to `max_combine` accesses to the same line
/// sharing one register and one fill. A miss that finds the file full stalls
/// until the earliest outstanding fill returns.
///
/// # Example
///
/// ```
/// use svc_mem::MshrFile;
/// use svc_types::{Cycle, LineId};
/// let mut m = MshrFile::new(2, 4);
/// let a = m.begin_miss(LineId(1), Cycle(0), 10);
/// let b = m.begin_miss(LineId(1), Cycle(2), 10);
/// assert!(!a.combined);
/// assert!(b.combined);
/// assert_eq!(b.data_ready, a.data_ready); // shares the fill
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    max_combine: usize,
    total_misses: u64,
    total_combines: u64,
    total_stall_cycles: u64,
    tracer: Tracer,
    faults: Faults,
    pu: PuId,
}

impl MshrFile {
    /// Creates a file with `capacity` registers, each combining up to
    /// `max_combine` accesses (including the one that allocated it).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_combine` is zero.
    pub fn new(capacity: usize, max_combine: usize) -> MshrFile {
        assert!(capacity > 0 && max_combine > 0);
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            max_combine,
            total_misses: 0,
            total_combines: 0,
            total_stall_cycles: 0,
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
            pu: PuId(0),
        }
    }

    /// Attaches a tracing handle and names the owning PU; allocations,
    /// combines and retirements emit `mshr`-category events.
    pub fn set_tracer(&mut self, tracer: Tracer, pu: PuId) {
        self.tracer = tracer;
        self.pu = pu;
    }

    /// Attaches a fault injector. An active injector may transiently fail
    /// an allocation (the request stalls as if the file were full).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Presents a miss on `line` at `now` whose fill would take
    /// `fill_latency` cycles once a register is held. Returns when the data
    /// arrives and whether the access combined or stalled.
    pub fn begin_miss(&mut self, line: LineId, now: Cycle, fill_latency: u64) -> MshrResult {
        self.expire(now);
        self.total_misses += 1;
        // Combine into an outstanding miss to the same line if possible.
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.line == line && e.combines < self.max_combine)
        {
            e.combines += 1;
            self.total_combines += 1;
            let data_ready = e.done_at;
            let pu = self.pu;
            self.tracer
                .emit(now, Category::Mshr, || TraceEvent::MshrCombine {
                    pu,
                    line,
                    data_ready,
                });
            return MshrResult {
                data_ready,
                combined: true,
                stalled: 0,
            };
        }
        // Allocate a new register, stalling for the earliest fill if full.
        let (mut start, mut stalled) = if self.entries.len() < self.capacity {
            (now, 0)
        } else {
            let earliest = self
                .entries
                .iter()
                .map(|e| e.done_at)
                .min()
                .expect("file is full, so non-empty");
            let idx = self
                .entries
                .iter()
                .position(|e| e.done_at == earliest)
                .expect("just found it");
            self.entries.swap_remove(idx);
            let start = now.max(earliest);
            (start, start.since(now))
        };
        if let Some(penalty) = self.faults.inject(FaultSite::MshrFail) {
            // Transient allocation failure: the register is granted only
            // after the penalty, as if the file had been full.
            start += penalty;
            stalled += penalty;
            let (pu, fault_line) = (self.pu, line);
            self.tracer.emit(now, Category::Fault, || {
                TraceEvent::Fault(FaultEvent {
                    site: FaultSite::MshrFail,
                    pu: Some(pu),
                    line: Some(fault_line),
                    penalty,
                })
            });
        }
        let done_at = start + fill_latency;
        self.entries.push(Entry {
            line,
            done_at,
            combines: 1,
        });
        self.total_stall_cycles += stalled;
        let pu = self.pu;
        self.tracer
            .emit(now, Category::Mshr, || TraceEvent::MshrAllocate {
                pu,
                line,
                data_ready: done_at,
                stalled,
            });
        MshrResult {
            data_ready: done_at,
            combined: false,
            stalled,
        }
    }

    /// Number of fills still outstanding at `now`.
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Number of fills still outstanding at `now`, without expiring
    /// completed entries (a read-only view for the profiler's interval
    /// sampler).
    pub fn outstanding_at(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.done_at > now).count()
    }

    /// Total misses presented (including combined ones).
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Misses that combined into an existing register.
    pub fn total_combines(&self) -> u64 {
        self.total_combines
    }

    /// Total cycles spent stalled for a free register.
    pub fn total_stall_cycles(&self) -> u64 {
        self.total_stall_cycles
    }

    /// Primary misses: presentations that allocated a new register.
    pub fn primary_misses(&self) -> u64 {
        self.total_misses - self.total_combines
    }

    /// Resets the statistics counters (outstanding fills are kept).
    pub fn reset_stats(&mut self) {
        self.total_misses = 0;
        self.total_combines = 0;
        self.total_stall_cycles = 0;
    }

    fn expire(&mut self, now: Cycle) {
        if self.tracer.enabled(Category::Mshr) {
            let pu = self.pu;
            for e in self.entries.iter().filter(|e| e.done_at <= now) {
                let line = e.line;
                self.tracer
                    .emit(e.done_at, Category::Mshr, || TraceEvent::MshrRetire {
                        pu,
                        line,
                    });
            }
        }
        self.entries.retain(|e| e.done_at > now);
    }
}

impl svc_types::Checkpointable for Entry {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.line.save_state(w);
        self.done_at.save_state(w);
        self.combines.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.line.restore_state(r)?;
        self.done_at.restore_state(r)?;
        self.combines.restore_state(r)
    }
}

impl Default for Entry {
    fn default() -> Entry {
        Entry {
            line: LineId(0),
            done_at: Cycle::ZERO,
            combines: 0,
        }
    }
}

impl svc_types::Checkpointable for MshrFile {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.entries.save_state(w);
        self.total_misses.save_state(w);
        self.total_combines.save_state(w);
        self.total_stall_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.entries.restore_state(r)?;
        if self.entries.len() > self.capacity {
            return Err(svc_types::CkptError::corrupt(format!(
                "{} outstanding MSHR entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            )));
        }
        self.total_misses.restore_state(r)?;
        self.total_combines.restore_state(r)?;
        self.total_stall_cycles.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_use_separate_entries() {
        let mut m = MshrFile::new(4, 4);
        let a = m.begin_miss(LineId(1), Cycle(0), 10);
        let b = m.begin_miss(LineId(2), Cycle(0), 10);
        assert!(!a.combined && !b.combined);
        assert_eq!(m.outstanding(Cycle(5)), 2);
        assert_eq!(m.outstanding(Cycle(10)), 0, "fills expire");
    }

    #[test]
    fn combining_caps_out() {
        let mut m = MshrFile::new(4, 2);
        m.begin_miss(LineId(1), Cycle(0), 10); // allocates, combines=1
        let b = m.begin_miss(LineId(1), Cycle(0), 10); // combines=2 (cap)
        let c = m.begin_miss(LineId(1), Cycle(0), 10); // must allocate anew
        assert!(b.combined);
        assert!(!c.combined);
        assert_eq!(m.total_combines(), 1);
    }

    #[test]
    fn full_file_stalls_until_earliest_fill() {
        let mut m = MshrFile::new(1, 1);
        let a = m.begin_miss(LineId(1), Cycle(0), 10);
        assert_eq!(a.data_ready, Cycle(10));
        let b = m.begin_miss(LineId(2), Cycle(3), 10);
        assert_eq!(b.stalled, 7, "waited for the line-1 fill at cycle 10");
        assert_eq!(b.data_ready, Cycle(20));
        assert_eq!(m.total_stall_cycles(), 7);
    }

    #[test]
    fn expired_entries_free_registers() {
        let mut m = MshrFile::new(1, 1);
        m.begin_miss(LineId(1), Cycle(0), 10);
        let b = m.begin_miss(LineId(2), Cycle(10), 10);
        assert_eq!(b.stalled, 0, "previous fill completed at cycle 10");
    }

    #[test]
    fn injected_allocation_failure_stalls_the_fill() {
        use svc_sim::fault::FaultConfig;
        let mut m = MshrFile::new(4, 4);
        m.set_faults(Faults::new(
            &FaultConfig::parse("mshr_fail=1.0,penalty=1").unwrap(),
            5,
        ));
        let r = m.begin_miss(LineId(1), Cycle(0), 10);
        assert_eq!(r.stalled, 1, "allocation transiently refused");
        assert_eq!(r.data_ready, Cycle(11));
        // Combines share the outstanding fill and skip the hook.
        let c = m.begin_miss(LineId(1), Cycle(0), 10);
        assert!(c.combined);
        assert_eq!(c.stalled, 0);
    }

    #[test]
    fn counters() {
        let mut m = MshrFile::new(2, 8);
        m.begin_miss(LineId(1), Cycle(0), 5);
        m.begin_miss(LineId(1), Cycle(1), 5);
        assert_eq!(m.total_misses(), 2);
        assert_eq!(m.total_combines(), 1);
    }
}
