use smallvec::SmallVec;
use svc_types::LineId;

use crate::CacheGeometry;

/// The ways of one set; inline for any associativity up to 8.
pub type WayList = SmallVec<WayRef, 8>;

/// The storage contract a protocol's line type must satisfy to live in a
/// [`CacheArray`].
///
/// A slot is either *invalid* (free) or holds versioning/coherence state for
/// one [`LineId`]. The array only needs to know which, plus whether the slot
/// may be evicted; all protocol state stays in the line type.
pub trait Slot: Default {
    /// The line held by this slot, or `None` if the slot is free.
    fn held_line(&self) -> Option<LineId>;
}

/// A generic set-associative cache array with true-LRU replacement,
/// parameterised over the protocol's line type.
///
/// Both the MRSW baseline (`svc-coherence`) and every SVC design (`svc`)
/// store their lines in one of these; the ARB's backing data cache uses a
/// direct-mapped instance.
///
/// # Example
///
/// ```
/// use svc_mem::{CacheArray, CacheGeometry, Slot};
/// use svc_types::LineId;
///
/// #[derive(Default)]
/// struct L(Option<LineId>);
/// impl Slot for L {
///     fn held_line(&self) -> Option<LineId> { self.0 }
/// }
///
/// let mut a: CacheArray<L> = CacheArray::new(CacheGeometry::word_lines(2, 2));
/// *a.slot_mut(a.victim_way(LineId(0))) = L(Some(LineId(0)));
/// assert!(a.find(LineId(0)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    geometry: CacheGeometry,
    slots: Vec<S>,    // sets × ways, row-major
    stamps: Vec<u64>, // LRU stamps, same layout
    tick: u64,
}

/// A `(set, way)` pair naming one slot of a [`CacheArray`].
pub type WayRef = (usize, usize);

impl<S: Slot> CacheArray<S> {
    /// Creates an array of default (invalid) slots for `geometry`.
    pub fn new(geometry: CacheGeometry) -> CacheArray<S> {
        let n = geometry.lines();
        CacheArray {
            geometry,
            slots: (0..n).map(|_| S::default()).collect(),
            stamps: vec![0; n],
            tick: 0,
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn flat(&self, (set, way): WayRef) -> usize {
        debug_assert!(set < self.geometry.sets() && way < self.geometry.ways());
        set * self.geometry.ways() + way
    }

    /// Finds the slot currently holding `line`, if any.
    pub fn find(&self, line: LineId) -> Option<WayRef> {
        let set = self.geometry.set_index(line);
        (0..self.geometry.ways())
            .map(|w| (set, w))
            .find(|&r| self.slots[self.flat(r)].held_line() == Some(line))
    }

    /// Immutable access to a slot.
    pub fn slot(&self, r: WayRef) -> &S {
        &self.slots[self.flat(r)]
    }

    /// Mutable access to a slot. Does **not** update LRU; call
    /// [`touch`](Self::touch) on a real access.
    pub fn slot_mut(&mut self, r: WayRef) -> &mut S {
        let i = self.flat(r);
        &mut self.slots[i]
    }

    /// Marks `r` as most recently used.
    pub fn touch(&mut self, r: WayRef) {
        self.tick += 1;
        let i = self.flat(r);
        self.stamps[i] = self.tick;
    }

    /// The replacement victim for `line`'s set: a free slot if one exists,
    /// otherwise the least recently used way. The caller decides whether
    /// that victim is actually evictable (speculative lines may not be,
    /// paper §3.2.5).
    pub fn victim_way(&self, line: LineId) -> WayRef {
        let set = self.geometry.set_index(line);
        // Free slot first.
        for w in 0..self.geometry.ways() {
            if self.slots[self.flat((set, w))].held_line().is_none() {
                return (set, w);
            }
        }
        // Else LRU.
        let w = (0..self.geometry.ways())
            .min_by_key(|&w| self.stamps[self.flat((set, w))])
            .expect("ways > 0");
        (set, w)
    }

    /// All ways of `line`'s set, in way order. The caller can scan these to
    /// pick an alternative victim when the LRU choice is not evictable.
    pub fn ways_of_set(&self, line: LineId) -> WayList {
        let set = self.geometry.set_index(line);
        (0..self.geometry.ways()).map(|w| (set, w)).collect()
    }

    /// Ways of `line`'s set ordered least-recently-used first. Used to pick
    /// "a different replacement victim" (§3.2.5) when the LRU line cannot be
    /// replaced.
    pub fn ways_by_lru(&self, line: LineId) -> WayList {
        let set = self.geometry.set_index(line);
        let mut ways: WayList = (0..self.geometry.ways()).map(|w| (set, w)).collect();
        // Stable: equal stamps (never-touched ways) keep way order.
        ways.sort_by_key(|&(_, w)| self.stamps[self.flat((set, w))]);
        ways
    }

    /// Iterates over every slot (for flash operations like "set the C bit
    /// in all lines" on task commit, §3.4).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.slots.iter_mut()
    }

    /// Iterates immutably over every slot (for snapshots and invariant
    /// checks).
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.slots.iter()
    }

    /// Number of occupied (valid) slots.
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.held_line().is_some())
            .count()
    }
}

impl<S: Slot + svc_types::Checkpointable> svc_types::Checkpointable for CacheArray<S> {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.slots.save_state(w);
        self.stamps.save_state(w);
        self.tick.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let lines = self.geometry.lines();
        self.slots.restore_state(r)?;
        self.stamps.restore_state(r)?;
        self.tick.restore_state(r)?;
        if self.slots.len() != lines || self.stamps.len() != lines {
            return Err(svc_types::CkptError::corrupt(format!(
                "cache array geometry holds {lines} lines, checkpoint has {}",
                self.slots.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone, PartialEq)]
    struct TestLine {
        line: Option<LineId>,
    }

    impl Slot for TestLine {
        fn held_line(&self) -> Option<LineId> {
            self.line
        }
    }

    fn array(sets: usize, ways: usize) -> CacheArray<TestLine> {
        CacheArray::new(CacheGeometry::word_lines(sets, ways))
    }

    fn install(a: &mut CacheArray<TestLine>, line: LineId) -> WayRef {
        let r = a.victim_way(line);
        *a.slot_mut(r) = TestLine { line: Some(line) };
        a.touch(r);
        r
    }

    #[test]
    fn find_after_install() {
        let mut a = array(4, 2);
        let r = install(&mut a, LineId(5));
        assert_eq!(a.find(LineId(5)), Some(r));
        assert_eq!(a.find(LineId(6)), None);
        assert_eq!(a.occupied(), 1);
    }

    #[test]
    fn set_conflict_maps_to_same_set() {
        let a = array(4, 2);
        // Lines 1 and 5 conflict in a 4-set cache.
        assert_eq!(
            a.geometry().set_index(LineId(1)),
            a.geometry().set_index(LineId(5))
        );
    }

    #[test]
    fn victim_prefers_free_slot() {
        let mut a = array(1, 2);
        install(&mut a, LineId(0));
        let v = a.victim_way(LineId(1));
        assert!(a.slot(v).held_line().is_none());
    }

    #[test]
    fn victim_is_lru_when_full() {
        let mut a = array(1, 2);
        let r0 = install(&mut a, LineId(0));
        let _r1 = install(&mut a, LineId(1));
        a.touch(a.find(LineId(1)).unwrap()); // 1 is MRU
        a.touch(r0); // now 0 is MRU, 1 is LRU
        let v = a.victim_way(LineId(2));
        assert_eq!(a.slot(v).held_line(), Some(LineId(1)));
    }

    #[test]
    fn ways_by_lru_orders_oldest_first() {
        let mut a = array(1, 3);
        install(&mut a, LineId(0));
        install(&mut a, LineId(1));
        install(&mut a, LineId(2));
        a.touch(a.find(LineId(0)).unwrap()); // 0 becomes MRU
        let order: Vec<Option<LineId>> = a
            .ways_by_lru(LineId(9))
            .into_iter()
            .map(|r| a.slot(r).held_line())
            .collect();
        assert_eq!(
            order,
            vec![Some(LineId(1)), Some(LineId(2)), Some(LineId(0))]
        );
    }

    #[test]
    fn iter_mut_flash_operation() {
        let mut a = array(2, 2);
        install(&mut a, LineId(0));
        install(&mut a, LineId(1));
        for s in a.iter_mut() {
            s.line = None; // "invalidate all" flash
        }
        assert_eq!(a.occupied(), 0);
    }

    #[test]
    fn ways_of_set_count() {
        let a = array(2, 3);
        assert_eq!(a.ways_of_set(LineId(0)).len(), 3);
    }
}
