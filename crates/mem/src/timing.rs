/// The latency parameters of the paper's evaluation (§4.2), gathered in one
/// place so that every memory system draws from the same clock assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    /// Private-cache (SVC) hit time. The paper assumes 1 cycle.
    pub hit_cycles: u64,
    /// Base occupancy of one snooping-bus transaction. The paper: "a
    /// typical transaction requires 3 processor cycles".
    pub bus_txn_cycles: u64,
    /// Extra bus cycle "used to flush a committed version to the next level
    /// memory" during a transaction (§4.2 footnote 7).
    pub commit_flush_extra: u64,
    /// Additional penalty for data supplied by the next level of memory.
    /// The paper: 10 cycles, "plus any bus contention".
    pub memory_cycles: u64,
}

impl MemTiming {
    /// The paper's SVC-side configuration: 1-cycle hit, 3-cycle bus
    /// transaction, 1 extra flush cycle, 10-cycle next-level penalty.
    pub const PAPER: MemTiming = MemTiming {
        hit_cycles: 1,
        bus_txn_cycles: 3,
        commit_flush_extra: 1,
        memory_cycles: 10,
    };

    /// Completion latency of a local hit.
    pub fn hit_done(&self) -> u64 {
        self.hit_cycles
    }
}

impl Default for MemTiming {
    fn default() -> MemTiming {
        MemTiming::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let t = MemTiming::default();
        assert_eq!(t.hit_cycles, 1);
        assert_eq!(t.bus_txn_cycles, 3);
        assert_eq!(t.commit_flush_extra, 1);
        assert_eq!(t.memory_cycles, 10);
        assert_eq!(t.hit_done(), 1);
        assert_eq!(t, MemTiming::PAPER);
    }
}
