//! Property-based tests for the memory substrate.

use proptest::prelude::*;
use svc_mem::{Bus, CacheArray, CacheGeometry, MainMemory, MshrFile, Slot, WritebackBuffer};
use svc_types::{Addr, Cycle, LineId, Word};

#[derive(Debug, Default, Clone)]
struct TestLine {
    line: Option<LineId>,
}

impl Slot for TestLine {
    fn held_line(&self) -> Option<LineId> {
        self.line
    }
}

proptest! {
    /// CacheArray behaves like a set-associative cache: after any access
    /// sequence, every line found maps to its own set, occupancy never
    /// exceeds capacity, and a just-installed line is findable until its
    /// set overflows with more-recent lines.
    #[test]
    fn cache_array_is_set_associative(
        accesses in proptest::collection::vec(0u64..64, 1..200),
        sets_pow in 0u32..4,
        ways in 1usize..5,
    ) {
        let sets = 1usize << sets_pow;
        let geometry = CacheGeometry::word_lines(sets, ways);
        let mut a: CacheArray<TestLine> = CacheArray::new(geometry);
        for &raw in &accesses {
            let line = LineId(raw);
            let r = match a.find(line) {
                Some(r) => r,
                None => {
                    let v = a.victim_way(line);
                    *a.slot_mut(v) = TestLine { line: Some(line) };
                    v
                }
            };
            a.touch(r);
            // The line is now resident, in its own set.
            let found = a.find(line).expect("just installed");
            prop_assert_eq!(found.0, geometry.set_index(line));
            prop_assert!(a.occupied() <= geometry.lines());
        }
        // LRU: re-touch every distinct line of one set in order; the
        // victim must be the least recently touched resident.
        let mut set0: Vec<LineId> = Vec::new();
        for &raw in &accesses {
            let l = LineId(raw);
            if geometry.set_index(l) == 0 && a.find(l).is_some() && !set0.contains(&l) {
                set0.push(l);
            }
        }
        if set0.len() >= 2 {
            for l in &set0 {
                let r = a.find(*l).expect("resident");
                a.touch(r);
            }
            let victim = a.victim_way(LineId(0));
            // Victim is either a free slot or holds the least recently
            // touched resident — the first unique line we touched.
            if let Some(v) = a.slot(victim).held_line() {
                prop_assert_eq!(v, set0[0]);
            }
        }
    }

    /// Bus grants never overlap in occupancy and never go backwards.
    #[test]
    fn bus_grants_are_serial(times in proptest::collection::vec(0u64..1000, 1..50), occ in 1u64..4) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut bus = Bus::pipelined(3, occ);
        let mut last_start = Cycle::ZERO;
        let mut busy = 0;
        for t in sorted {
            let g = bus.transact(Cycle(t), 0);
            prop_assert!(g.start >= last_start, "arbitration order preserved");
            prop_assert!(g.start >= Cycle(t));
            prop_assert_eq!(g.done, g.start + 3);
            last_start = g.start;
            busy += occ;
        }
        prop_assert_eq!(bus.busy_cycles(), busy);
    }

    /// MainMemory equals a flat map model for any write/read sequence.
    #[test]
    fn memory_matches_model(ops in proptest::collection::vec((0u64..128, 0u64..1000, proptest::bool::ANY), 1..100)) {
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, val, is_write) in ops {
            if is_write {
                mem.write(Addr(addr), Word(val));
                model.insert(addr, val);
            } else {
                let got = mem.read(Addr(addr));
                let want = model.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(got, Word(want));
            }
        }
    }

    /// The MSHR file never exceeds its capacity and combining never
    /// returns a later completion than a fresh fill would.
    #[test]
    fn mshr_capacity_and_combining(
        reqs in proptest::collection::vec((0u64..8, 0u64..100), 1..60),
        cap in 1usize..5,
    ) {
        let mut m = MshrFile::new(cap, 4);
        let mut now = Cycle::ZERO;
        for (line, dt) in reqs {
            now += dt;
            let r = m.begin_miss(LineId(line), now, 10);
            prop_assert!(r.data_ready > now);
            prop_assert!(m.outstanding(now) <= cap);
            if r.combined {
                prop_assert_eq!(r.stalled, 0, "combined misses never stall");
            } else {
                // A fresh fill completes its latency after the stall ends.
                prop_assert_eq!(r.data_ready.since(now), r.stalled + 10);
            }
        }
    }

    /// Writeback buffer: pushes are accepted in order, never earlier than
    /// offered, and drain within bounded time.
    #[test]
    fn writeback_buffer_bounds(pushes in proptest::collection::vec(0u64..50, 1..40), cap in 1usize..4) {
        let mut wb = WritebackBuffer::new(cap, 4);
        let mut now = Cycle::ZERO;
        let mut last_accept = Cycle::ZERO;
        for dt in pushes {
            now += dt;
            let accepted = wb.push(now);
            prop_assert!(accepted >= now);
            prop_assert!(accepted >= last_accept || accepted >= now);
            last_accept = accepted;
            prop_assert!(wb.occupancy(now) <= cap);
        }
        // Everything drains eventually.
        let horizon = wb.drained_by();
        prop_assert_eq!(wb.occupancy(horizon), 0);
    }
}
