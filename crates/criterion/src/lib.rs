//! A self-contained, offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the real criterion
//! cannot be fetched. This crate implements the subset of its API the
//! workspace's benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing and a fixed-format one-line report per benchmark. There is no
//! statistical analysis, warm-up modeling, or HTML output; the point is
//! that `cargo bench` builds, runs, and prints comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized. Accepted for API compatibility; the
/// shim treats every variant the same (one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Per-iteration state of unknown size.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark and prints `group/name  median ± spread`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        samples.sort_unstable();
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
        } else {
            let median = samples[samples.len() / 2];
            let min = samples[0];
            let max = samples[samples.len() - 1];
            println!(
                "  {}/{id}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
                self.name,
                samples.len()
            );
        }
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Number of routine invocations per sample.
    const ITERS_PER_SAMPLE: u32 = 64;

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..Self::ITERS_PER_SAMPLE {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += Self::ITERS_PER_SAMPLE;
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..Self::ITERS_PER_SAMPLE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
