use std::collections::HashMap;

use smallvec::SmallVec;
use svc_sim::fault::{FaultEvent, FaultSite, Faults};
use svc_sim::metrics::{MetricSource, MetricsRegistry};
use svc_sim::profile::Profiler;
use svc_sim::rng::Xoshiro256;
use svc_sim::stats::Histogram;
use svc_sim::trace::{Category, TraceEvent, Tracer};
use svc_types::{
    Addr, Cycle, InvariantViolation, MemGauges, MemStats, PlanToken, PlannedOp, PuId, TaskId,
    VersionedMemory, Word,
};

use crate::predictor::PredictorModel;
use crate::task::{Instr, TaskSource};

/// Configuration of the execution [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of processing units (must match the memory system).
    pub num_pus: usize,
    /// Instructions a PU can retire per cycle when nothing stalls
    /// (the paper's PUs are 2-issue).
    pub issue_width: usize,
    /// Cycles of load latency the PU hides for loads whose value is not
    /// needed immediately (standing in for out-of-order issue within the
    /// PU).
    pub load_overlap: u64,
    /// Fraction of loads whose value feeds the next instruction
    /// (dependent use): those expose their full latency. Decided
    /// deterministically per load from the seed.
    pub load_dep_frac: f64,
    /// Sequencer overhead: cycles between task dispatches.
    pub dispatch_cycles: u64,
    /// The task predictor model.
    pub predictor: PredictorModel,
    /// Stop once this many instructions have committed (0 = run the whole
    /// task sequence).
    pub max_instructions: u64,
    /// Hard safety stop.
    pub max_cycles: u64,
    /// Word-address space wrong-path (garbage) tasks touch, polluting the
    /// caches like real wrong-path execution does.
    pub garbage_addr_space: u64,
    /// Seed for wrong-path work generation.
    pub seed: u64,
    /// Lanes for deterministic intra-cycle access planning (the parallel
    /// engine). `0` resolves from `SVC_ENGINE_THREADS` at engine
    /// construction; `1` is the plain sequential engine. Every artifact
    /// is byte-identical at any value — only wall-clock changes.
    pub engine_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            num_pus: 4,
            issue_width: 2,
            load_overlap: 2,
            load_dep_frac: 0.35,
            dispatch_cycles: 1,
            predictor: PredictorModel::perfect(),
            max_instructions: 0,
            max_cycles: 500_000_000,
            garbage_addr_space: 4096,
            seed: 0,
            engine_threads: 0,
        }
    }
}

/// Resolves the parallel-engine lane count from `SVC_ENGINE_THREADS`
/// (unset, unparsable or `0` all mean 1 lane = sequential).
pub fn engine_threads_from_env() -> usize {
    std::env::var("SVC_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The outcome of one [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions belonging to committed tasks.
    pub committed_instrs: u64,
    /// Tasks committed.
    pub committed_tasks: u64,
    /// Task squash events (mispredictions + violations + resource frees).
    pub squashes: u64,
    /// Squash events caused by detected memory-dependence violations.
    pub violation_squashes: u64,
    /// Squash events freeing speculative resources for a stalled head.
    pub resource_squashes: u64,
    /// Task-misprediction detections.
    pub mispredictions: u64,
    /// Instructions that executed and were then thrown away by a squash
    /// (the wasted re-execution cost of speculation).
    pub wasted_instrs: u64,
    /// PU-cycles spent blocked after a squash: the squashed PU remains
    /// stalled on the latency of the access it was torn down under.
    pub squash_recovery_cycles: u64,
    /// Distribution of committed task lengths (instructions; 8-wide
    /// buckets).
    pub task_lengths: Histogram,
    /// Distribution of dispatch-to-commit latency of committed tasks
    /// (cycles; 64-wide buckets). Not part of the serialized experiment
    /// artifacts — consumed by the soak loop's live telemetry.
    pub task_latency: Histogram,
    /// Distribution of squash depths: tasks torn down per squash event
    /// (1-wide buckets). Not part of the serialized experiment
    /// artifacts — consumed by the soak loop's live telemetry.
    pub squash_depths: Histogram,
    /// Final memory-system statistics.
    pub mem: MemStats,
    /// Whether the run stopped on the cycle safety limit.
    pub hit_cycle_limit: bool,
    /// Idle-cycle fast-forward jumps taken (clock advances of more than
    /// one cycle). Not part of the serialized experiment artifacts —
    /// consumed by the soak loop's live telemetry.
    pub ff_jumps: u64,
    /// Simulated cycles the fast-forward skipped over (beyond the
    /// one-cycle step each jump replaces). Not part of the serialized
    /// experiment artifacts — consumed by the soak loop's live telemetry.
    pub ff_skipped_cycles: u64,
}

impl Default for RunReport {
    /// An all-zero report with the engine's canonical histogram shapes
    /// (so a checkpoint restore — which validates shape — accepts it).
    fn default() -> RunReport {
        RunReport {
            cycles: 0,
            committed_instrs: 0,
            committed_tasks: 0,
            squashes: 0,
            violation_squashes: 0,
            resource_squashes: 0,
            mispredictions: 0,
            wasted_instrs: 0,
            squash_recovery_cycles: 0,
            task_lengths: Histogram::new(8, 32),
            task_latency: Histogram::new(64, 64),
            squash_depths: Histogram::new(1, 8),
            mem: MemStats::default(),
            hit_cycle_limit: false,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
        }
    }
}

impl RunReport {
    /// Mean committed task length in instructions.
    pub fn avg_task_len(&self) -> f64 {
        if self.committed_tasks == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.committed_tasks as f64
        }
    }

    /// Committed instructions per cycle — the metric of Figures 19/20.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        }
    }

    /// Bus utilization over the run (Table 3).
    pub fn bus_utilization(&self) -> f64 {
        self.mem.bus_utilization(self.cycles)
    }

    /// Every scalar counter as a `(name, value)` pair, in declaration
    /// order — the single source of truth the JSON experiment reports
    /// iterate (`task_lengths` and `mem` are serialized separately as
    /// structured objects).
    pub fn counter_fields(&self) -> [(&'static str, u64); 9] {
        [
            ("cycles", self.cycles),
            ("committed_instrs", self.committed_instrs),
            ("committed_tasks", self.committed_tasks),
            ("squashes", self.squashes),
            ("violation_squashes", self.violation_squashes),
            ("resource_squashes", self.resource_squashes),
            ("mispredictions", self.mispredictions),
            ("wasted_instrs", self.wasted_instrs),
            ("squash_recovery_cycles", self.squash_recovery_cycles),
        ]
    }
}

impl MetricSource for RunReport {
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        for (name, value) in self.counter_fields() {
            reg.counter(&format!("{prefix}{name}"), value);
        }
        reg.gauge(&format!("{prefix}ipc"), self.ipc());
        reg.gauge(&format!("{prefix}avg_task_len"), self.avg_task_len());
        reg.gauge(&format!("{prefix}bus_utilization"), self.bus_utilization());
        reg.histogram(&format!("{prefix}task_lengths"), &self.task_lengths);
        for (name, value) in self.mem.fields() {
            reg.counter(&format!("{prefix}mem.{name}"), value);
        }
        reg.gauge(
            &format!("{prefix}mem.mshr_combine_rate"),
            self.mem.mshr_combine_rate(),
        );
    }
}

#[derive(Debug, Clone)]
struct PuState {
    pos: Option<u64>,
    instrs: Vec<Instr>,
    pc: usize,
    /// When the running task was dispatched (for commit-latency metering).
    dispatched_at: Cycle,
    ready_at: Cycle,
    /// The PU's memory port: a store occupies it until the memory system
    /// has accepted the store (its full latency — this is where a shared
    /// structure's hit latency taxes store-rich code); loads pipeline
    /// through it at one per cycle.
    port_free: Cycle,
    wrong: bool,
    detect_at: Cycle,
    done: bool,
}

impl PuState {
    fn idle() -> PuState {
        PuState {
            pos: None,
            instrs: Vec::new(),
            pc: 0,
            dispatched_at: Cycle::ZERO,
            ready_at: Cycle::ZERO,
            port_free: Cycle::ZERO,
            wrong: false,
            detect_at: Cycle::ZERO,
            done: false,
        }
    }
}

/// A point-in-time snapshot of engine-level state, handed to an
/// [`EpochSink`] at every profiler-epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// The cycle the snapshot was taken at.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed_instrs: u64,
    /// Tasks committed so far.
    pub committed_tasks: u64,
    /// Squash events so far.
    pub squashes: u64,
    /// Cumulative memory-system statistics at the snapshot point.
    pub mem: MemStats,
    /// Point-in-time memory gauges (outstanding misses, live versions).
    pub gauges: MemGauges,
}

/// A consumer of periodic [`EpochSnapshot`]s.
///
/// The engine calls [`on_epoch`](EpochSink::on_epoch) at exactly the
/// cycles the profiler's interval sampler fires (so a sink is only
/// driven when an enabled profiler with a non-zero epoch is attached),
/// and the idle-cycle fast-forward already lands on those cycles —
/// attaching a sink never changes the simulated timeline. The soak
/// server uses this to derive per-epoch bus-wait and MSHR-occupancy
/// histograms without touching engine internals.
///
/// `Debug` is a supertrait so the engine keeps its derived `Debug`.
pub trait EpochSink: std::fmt::Debug {
    /// Called once per profiler epoch with the current snapshot.
    fn on_epoch(&mut self, snap: &EpochSnapshot);
}

/// The hierarchical execution engine: sequencer + PUs over a speculative
/// memory system. See the crate docs for the model and an example.
#[derive(Debug)]
pub struct Engine<M> {
    config: EngineConfig,
    mem: M,
    pus: Vec<PuState>,
    attempts: HashMap<u64, u32>,
    next_pos: u64,
    dispatch_ready: Cycle,
    squashes: u64,
    violation_squashes: u64,
    resource_squashes: u64,
    mispredictions: u64,
    wasted_instrs: u64,
    squash_recovery_cycles: u64,
    task_lengths: Histogram,
    task_latency: Histogram,
    squash_depths: Histogram,
    tracer: Tracer,
    faults: Faults,
    profiler: Profiler,
    epoch_sink: Option<Box<dyn EpochSink>>,
    watchdog_every: u64,
    violations: Vec<InvariantViolation>,
    // -- run cursor ---------------------------------------------------
    // The scheduler loop's progress, kept on the engine (rather than as
    // locals of `run`) so a run can be suspended at a cycle boundary,
    // checkpointed, and resumed without observable difference.
    now: Cycle,
    committed_instrs: u64,
    committed_tasks: u64,
    hit_cycle_limit: bool,
    next_watchdog: u64,
    ff_jumps: u64,
    ff_skipped_cycles: u64,
    /// Memoized `source.task(next_pos)` lookup. The termination check
    /// needs "is there a task at `next_pos`?" every scheduler iteration,
    /// but task sources generate their instruction list on every call —
    /// without this cache the engine regenerates (and throws away) a
    /// full task per simulated cycle. Sources are contractually
    /// deterministic, so caching is invisible.
    peek_pos: u64,
    peek_task: Option<Vec<Instr>>,
    peek_valid: bool,
    // -- parallel planning --------------------------------------------
    // None of this is simulated state: plans only short-circuit work the
    // memory system would redo identically, every slot is dead by the
    // next cycle boundary (so nothing here is checkpointed), and the
    // counters are host-side telemetry.
    /// Resolved lane count (1 = sequential; >1 shards per-cycle access
    /// planning over `lanes - 1` worker threads plus the coordinator).
    par_threads: usize,
    /// One pending `(predicted op, plan)` slot per PU.
    plan_slots: Vec<Option<(PlannedOp, PlanToken)>>,
    /// Conflict sets touched by memory ops already issued this cycle;
    /// a plan whose set appears here is stale and is not redeemed.
    plan_sets: SmallVec<usize, 8>,
    /// `squashes` at planning time; any squash since invalidates all
    /// plans (squash teardown mutates arbitrary sets).
    plan_mark: u64,
    /// Whether `plan_slots` holds plans for the current cycle.
    plan_active: bool,
    /// Planning epochs run (telemetry).
    par_barriers: u64,
    /// Host nanoseconds spent inside planning epochs (telemetry; never
    /// feeds simulated state or artifacts).
    par_plan_nanos: u64,
}

/// Why a squash happened, for the report's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SquashCause {
    Misprediction,
    Violation,
    Resource,
    Fault,
}

impl<M: VersionedMemory> Engine<M> {
    /// Creates an engine over `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_pus` disagrees with `mem.num_pus()` or is 0.
    pub fn new(config: EngineConfig, mem: M) -> Engine<M> {
        assert!(config.num_pus > 0);
        assert_eq!(
            config.num_pus,
            mem.num_pus(),
            "engine and memory sizes differ"
        );
        Engine {
            pus: (0..config.num_pus).map(|_| PuState::idle()).collect(),
            mem,
            attempts: HashMap::new(),
            next_pos: 0,
            dispatch_ready: Cycle::ZERO,
            squashes: 0,
            violation_squashes: 0,
            resource_squashes: 0,
            mispredictions: 0,
            wasted_instrs: 0,
            squash_recovery_cycles: 0,
            task_lengths: Histogram::new(8, 32),
            task_latency: Histogram::new(64, 64),
            squash_depths: Histogram::new(1, 8),
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
            profiler: Profiler::disabled(),
            epoch_sink: None,
            watchdog_every: 0,
            violations: Vec::new(),
            now: Cycle::ZERO,
            committed_instrs: 0,
            committed_tasks: 0,
            hit_cycle_limit: false,
            next_watchdog: 0,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
            peek_pos: 0,
            peek_task: None,
            peek_valid: false,
            par_threads: match config.engine_threads {
                0 => engine_threads_from_env(),
                n => n,
            },
            plan_slots: (0..config.num_pus).map(|_| None).collect(),
            plan_sets: SmallVec::new(),
            plan_mark: 0,
            plan_active: false,
            par_barriers: 0,
            par_plan_nanos: 0,
            config,
        }
    }

    /// The task at `next_pos`, generated once and reused until the
    /// sequencer moves (dispatch or squash rewind).
    fn peek_next(&mut self, source: &dyn TaskSource) -> Option<&Vec<Instr>> {
        if !self.peek_valid || self.peek_pos != self.next_pos {
            self.peek_task = source.task(TaskId(self.next_pos));
            self.peek_pos = self.next_pos;
            self.peek_valid = true;
        }
        self.peek_task.as_ref()
    }

    /// Attaches `tracer` to the engine (task-lifecycle events). The memory
    /// system has its own [`set_tracer`]-style hook; attach the same tracer
    /// there to interleave both streams in one ring.
    ///
    /// [`set_tracer`]: svc_sim::trace::Tracer
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a fault injector to the engine (spurious squashes). The
    /// memory system has its own [`set_faults`]-style hook; attach the
    /// same handle there so every site draws from one seeded schedule.
    ///
    /// [`set_faults`]: svc_sim::fault::Faults
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Attaches a cycle-accounting profiler to the engine (dispatch,
    /// execution, commit and squash attribution, plus the interval
    /// sampler). Attach a clone of the same handle to the memory system
    /// (its `set_profiler`-style hook) so per-access decompositions reach
    /// the same books; keep a clone yourself to read the
    /// [`report`](Profiler::report) after the run.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Enables the invariant watchdog: the memory system's
    /// [`check_invariants`](VersionedMemory::check_invariants) runs at
    /// every commit and squash boundary and additionally every `every`
    /// cycles (`0` disables the watchdog entirely, the default). Every
    /// violation is recorded (see [`violations`](Engine::violations)) and
    /// emitted as a `fault`-category trace event; execution continues.
    pub fn set_watchdog(&mut self, every: u64) {
        self.watchdog_every = every;
        // First periodic sweep one interval in (matching the sweep
        // schedule of a run started with the watchdog already set).
        self.next_watchdog = every;
    }

    /// Attaches a periodic snapshot consumer, driven at profiler-epoch
    /// boundaries (see [`EpochSink`]). Requires an enabled profiler with
    /// a non-zero sampling epoch to ever fire.
    pub fn set_epoch_sink(&mut self, sink: Box<dyn EpochSink>) {
        self.epoch_sink = Some(sink);
    }

    /// Detaches the epoch sink, if one was attached.
    pub fn take_epoch_sink(&mut self) -> Option<Box<dyn EpochSink>> {
        self.epoch_sink.take()
    }

    /// Invariant violations the watchdog has collected so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Consumes the engine, returning the memory system (for end-of-run
    /// inspection: `drain()`, `architectural()`).
    pub fn into_memory(self) -> M {
        self.mem
    }

    /// A reference to the memory system.
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// Runs `source` to completion (or to the configured instruction or
    /// cycle budget) and reports the results.
    pub fn run(&mut self, source: &dyn TaskSource) -> RunReport {
        let finished = self.run_until(source, None);
        debug_assert!(finished, "run_until(None) only returns on completion");
        self.finish()
    }

    /// The current simulated cycle of a run in progress (or just ended).
    pub fn cycle(&self) -> u64 {
        self.now.0
    }

    /// Drives the scheduler loop until the run completes (`true`) or the
    /// clock reaches `stop_at` (`false`; the engine is paused at a cycle
    /// boundary and a later `run_until` call continues with no observable
    /// difference — the pause cycle's watchdog sweep and profiler sample
    /// run on resumption, exactly once). `run_until(source, None)`
    /// followed by [`finish`](Engine::finish) is exactly
    /// [`run`](Engine::run).
    pub fn run_until(&mut self, source: &dyn TaskSource, stop_at: Option<u64>) -> bool {
        // Idle-cycle fast-forward: when no PU can make progress this
        // cycle, jump the clock to the earliest cycle anything can
        // happen instead of ticking empty cycles. `SVC_NO_FASTFORWARD=1`
        // forces cycle-by-cycle stepping (the reference behavior the
        // differential test compares against); an active fault injector
        // disables jumping too, because injection sites draw from their
        // schedule once per scheduler iteration, so skipping iterations
        // would change the fault timeline.
        let fast_forward = !std::env::var("SVC_NO_FASTFORWARD").is_ok_and(|v| v == "1");

        loop {
            let now = self.now;
            // Checkpoint boundary: yield *before* this cycle's sweeps and
            // events, so they happen exactly once — on the resumed side.
            if stop_at.is_some_and(|s| now.0 >= s) {
                return false;
            }
            // Periodic invariant sweep (watchdog enabled only).
            if self.watchdog_every > 0 && now.0 >= self.next_watchdog {
                let found = self.mem.check_invariants(now);
                self.record_violations(found, now);
                self.next_watchdog = now.0 + self.watchdog_every;
            }
            // Interval sampler (profiler enabled only).
            if self.profiler.sample_due(now) {
                let busy = self.mem.stats().bus_busy_cycles;
                let gauges = self.mem.profile_gauges(now);
                self.profiler
                    .sample(now, self.committed_instrs, self.squashes, busy, gauges);
                if let Some(sink) = &mut self.epoch_sink {
                    sink.on_epoch(&EpochSnapshot {
                        cycle: now.0,
                        committed_instrs: self.committed_instrs,
                        committed_tasks: self.committed_tasks,
                        squashes: self.squashes,
                        mem: self.mem.stats(),
                        gauges,
                    });
                }
            }
            // Termination checks.
            let any_running = self.pus.iter().any(|p| p.pos.is_some());
            let more_tasks = self.peek_next(source).is_some();
            if !any_running && !more_tasks {
                break;
            }
            if self.config.max_instructions > 0
                && self.committed_instrs >= self.config.max_instructions
            {
                break;
            }
            if now.0 >= self.config.max_cycles {
                self.hit_cycle_limit = true;
                break;
            }

            let mut progressed = false;

            // 1. Sequencer: dispatch the next predicted task to a free PU.
            if more_tasks && now >= self.dispatch_ready {
                // Prefer the position's round-robin home PU (gives
                // stack-frame lines PU affinity); fall back to any free PU.
                let want = (self.next_pos % self.config.num_pus as u64) as usize;
                let free = if self.pus[want].pos.is_none() {
                    Some(want)
                } else {
                    self.pus.iter().position(|p| p.pos.is_none())
                };
                if let Some(pu) = free {
                    self.dispatch(pu, self.next_pos, source, now);
                    self.next_pos += 1;
                    self.dispatch_ready = now + self.config.dispatch_cycles;
                    progressed = true;
                }
            }

            // Fault hook: a spurious squash tears down the youngest
            // running task — recoverable by construction (the sequencer
            // re-dispatches it), but it exercises the whole squash/repair
            // machinery under load.
            if self.faults.is_active() {
                if let Some(penalty) = self.faults.inject(FaultSite::SpuriousSquash) {
                    if let Some(victim) = self.pus.iter().filter_map(|p| p.pos).max() {
                        self.tracer.emit(now, Category::Fault, || {
                            TraceEvent::Fault(FaultEvent {
                                site: FaultSite::SpuriousSquash,
                                pu: None,
                                line: None,
                                penalty,
                            })
                        });
                        self.squash_from(victim, SquashCause::Fault, now);
                        progressed = true;
                    }
                }
            }

            // 2. Execute: PUs issue in program order (oldest task first).
            //    With more than one engine lane, the cycle's predicted
            //    accesses are planned in parallel first; the in-order
            //    loop below redeems those plans (or falls back inline),
            //    so the merge order stays canonical and every artifact
            //    is byte-identical to the sequential engine.
            self.prepare_plans(now);
            let order = self.pu_program_order();
            for pu in order {
                if self.pus[pu].pos.is_none() {
                    continue;
                }
                // Misprediction detection.
                if self.pus[pu].wrong && now >= self.pus[pu].detect_at {
                    let pos = self.pus[pu].pos.expect("checked");
                    self.mispredictions += 1;
                    *self.attempts.entry(pos).or_insert(0) += 1;
                    self.squash_from(pos, SquashCause::Misprediction, now);
                    progressed = true;
                    continue;
                }
                if now < self.pus[pu].ready_at || self.pus[pu].done {
                    continue;
                }
                progressed |= self.issue(pu, now);
            }
            // Plans never outlive their cycle.
            if self.plan_active {
                for s in self.plan_slots.iter_mut() {
                    *s = None;
                }
                self.plan_active = false;
            }

            // 3. Commit: the head task, if finished and correctly
            //    predicted, commits its speculative state.
            if let Some(pu) = self.head_pu() {
                let p = &self.pus[pu];
                if p.done && !p.wrong && now >= p.ready_at {
                    let n = p.instrs.len() as u64;
                    let task = p.pos.map(TaskId);
                    let latency = now.since(p.dispatched_at);
                    let done = self.mem.commit(PuId(pu), now);
                    self.tracer
                        .emit(now, Category::Task, || TraceEvent::TaskCommit {
                            pu: PuId(pu),
                            task: task.expect("committing PU has a task"),
                            instrs: n,
                        });
                    if self.watchdog_every > 0 {
                        let found = self.mem.check_invariants(now);
                        self.record_violations(found, now);
                    }
                    self.committed_instrs += n;
                    self.committed_tasks += 1;
                    self.task_lengths.record(n);
                    self.task_latency.record(latency);
                    self.profiler.on_commit(PuId(pu), now, done);
                    self.pus[pu] = PuState::idle();
                    self.pus[pu].ready_at = done;
                    progressed = true;
                }
            }

            // 4. Advance time: to the next cycle if something happened, or
            //    jump to the next event when everything is waiting.
            if progressed || !fast_forward || self.faults.is_active() {
                self.now = now + 1;
            } else {
                let mut next = Cycle(now.0 + 1);
                let mut wake = Cycle(u64::MAX);
                for p in &self.pus {
                    if p.pos.is_some() {
                        if p.wrong {
                            wake = Cycle(wake.0.min(p.detect_at.0));
                        }
                        wake = Cycle(wake.0.min(p.ready_at.0));
                    }
                }
                if more_tasks && self.pus.iter().any(|p| p.pos.is_none()) {
                    wake = Cycle(wake.0.min(self.dispatch_ready.0.max(next.0)));
                }
                // Never jump over an observability boundary: periodic
                // watchdog sweeps and profiler sample rows must land on
                // the same cycles as in a cycle-by-cycle run.
                if self.watchdog_every > 0 {
                    wake = Cycle(wake.0.min(self.next_watchdog));
                }
                if let Some(s) = self.profiler.next_sample_at() {
                    wake = Cycle(wake.0.min(s));
                }
                if wake.0 != u64::MAX {
                    next = next.max(wake);
                }
                if next.0 > now.0 + 1 {
                    self.ff_jumps += 1;
                    self.ff_skipped_cycles += next.0 - (now.0 + 1);
                }
                self.now = next;
            }
        }
        true
    }

    /// Closes out a completed run — final profiler sample, report
    /// assembly. Must follow a `run_until` call that returned `true`.
    pub fn finish(&mut self) -> RunReport {
        let now = self.now;
        if self.profiler.is_active() {
            let busy = self.mem.stats().bus_busy_cycles;
            let gauges = self.mem.profile_gauges(now);
            self.profiler
                .final_sample(now, self.committed_instrs, self.squashes, busy, gauges);
            let tasked: Vec<bool> = self.pus.iter().map(|p| p.pos.is_some()).collect();
            self.profiler.finish(now, &tasked);
        }

        RunReport {
            cycles: now.0,
            committed_instrs: self.committed_instrs,
            committed_tasks: self.committed_tasks,
            squashes: self.squashes,
            violation_squashes: self.violation_squashes,
            resource_squashes: self.resource_squashes,
            mispredictions: self.mispredictions,
            wasted_instrs: self.wasted_instrs,
            squash_recovery_cycles: self.squash_recovery_cycles,
            task_lengths: self.task_lengths.clone(),
            task_latency: self.task_latency.clone(),
            squash_depths: self.squash_depths.clone(),
            mem: self.mem.stats(),
            hit_cycle_limit: self.hit_cycle_limit,
            ff_jumps: self.ff_jumps,
            ff_skipped_cycles: self.ff_skipped_cycles,
        }
    }

    /// Parallel-planning telemetry: `(lanes, epoch_barriers, plan_nanos)`.
    /// Host-side observability only; never feeds simulated state.
    pub fn par_stats(&self) -> (u64, u64, u64) {
        (
            self.par_threads as u64,
            self.par_barriers,
            self.par_plan_nanos,
        )
    }

    /// Predicts the first memory operation `pu` would issue this cycle —
    /// a read-only replay of [`issue`](Self::issue)'s walk up to its
    /// first `Load`/`Store`. `None` when the PU is idle, stalled, about
    /// to be torn down, or issues only compute this cycle. Safe to be
    /// wrong in either direction: an unredeemed plan is dropped, an
    /// unplanned access takes the inline path.
    fn predict_mem_op(&self, pu: usize, now: Cycle) -> Option<PlannedOp> {
        let p = &self.pus[pu];
        if p.pos.is_none() || p.done || now < p.ready_at {
            return None;
        }
        if p.wrong && now >= p.detect_at {
            return None; // misprediction detection squashes it instead
        }
        let mut issued = 0;
        let mut pc = p.pc;
        while issued < self.config.issue_width {
            match *p.instrs.get(pc)? {
                Instr::Compute(c) => {
                    pc += 1;
                    issued += 1;
                    if c > 0 {
                        return None; // busy past this cycle before any memory op
                    }
                }
                Instr::Load(addr) => {
                    return (now >= p.port_free).then_some(PlannedOp::Load(addr));
                }
                Instr::Store(addr, value) => {
                    return (now >= p.port_free).then_some(PlannedOp::Store(addr, value));
                }
            }
        }
        None
    }

    /// Precomputes access plans for every PU predicted to touch memory
    /// this cycle, sharding the work over the worker pool. Runs between
    /// dispatch and the issue phase; [`take_plan`](Self::take_plan)
    /// redeems the results under the conflict guard.
    fn prepare_plans(&mut self, now: Cycle) {
        self.plan_active = false;
        if self.par_threads <= 1 {
            return;
        }
        let jobs: Vec<(PuId, PlannedOp)> = (0..self.pus.len())
            .filter_map(|pu| Some((PuId(pu), self.predict_mem_op(pu, now)?)))
            .collect();
        let t0 = std::time::Instant::now();
        let Some(tokens) = self.mem.plan_batch(self.par_threads, &jobs) else {
            return;
        };
        self.par_plan_nanos += t0.elapsed().as_nanos() as u64;
        self.par_barriers += 1;
        for s in self.plan_slots.iter_mut() {
            *s = None;
        }
        for ((pu, op), token) in jobs.into_iter().zip(tokens) {
            self.plan_slots[pu.index()] = Some((op, token));
        }
        self.plan_sets.clear();
        self.plan_mark = self.squashes;
        self.plan_active = true;
    }

    /// Redeems `pu`'s plan if it is still sound: planned in this cycle,
    /// no squash since planning, the op matches exactly, and no earlier
    /// memory op this cycle touched the plan's conflict set.
    fn take_plan(&mut self, pu: usize, op: PlannedOp) -> Option<PlanToken> {
        if !self.plan_active || self.plan_mark != self.squashes {
            return None;
        }
        let (planned, token) = self.plan_slots[pu].take()?;
        if planned != op || self.plan_sets.contains(&token.set) {
            return None;
        }
        Some(token)
    }

    /// Records a just-issued memory op's conflict set, staling any
    /// not-yet-redeemed plan that depends on the same set.
    fn note_mem_op(&mut self, addr: Addr) {
        if self.plan_active {
            let set = self.mem.conflict_set(addr);
            if !self.plan_sets.contains(&set) {
                self.plan_sets.push(set);
            }
        }
    }

    /// Issues up to `issue_width` instructions on `pu` at `now`. Returns
    /// whether anything happened.
    fn issue(&mut self, pu: usize, now: Cycle) -> bool {
        let mut issued = 0;
        let width = self.config.issue_width;
        while issued < width {
            let p = &self.pus[pu];
            if p.pc >= p.instrs.len() {
                self.pus[pu].done = true;
                return true;
            }
            match p.instrs[p.pc] {
                Instr::Compute(c) => {
                    self.pus[pu].pc += 1;
                    issued += 1;
                    if c > 0 {
                        self.pus[pu].ready_at = now + 1 + u64::from(c);
                        break;
                    }
                }
                Instr::Load(addr) => {
                    if now < self.pus[pu].port_free {
                        self.pus[pu].ready_at = self.pus[pu].port_free;
                        self.profiler
                            .on_port_block(PuId(pu), now, self.pus[pu].port_free);
                        break;
                    }
                    let result = match self.take_plan(pu, PlannedOp::Load(addr)) {
                        Some(token) => self.mem.load_planned(PuId(pu), addr, now, token),
                        None => self.mem.load(PuId(pu), addr, now),
                    };
                    self.note_mem_op(addr);
                    match result {
                        Ok(out) => {
                            let p = &self.pus[pu];
                            // Deterministic per-load dependence draw: a
                            // dependent use exposes the full latency; an
                            // independent load is fire-and-forget (the
                            // paper's non-blocking, MSHR-backed PUs).
                            let mut h = svc_sim::rng::SplitMix64::new(
                                self.config.seed ^ (p.pos.unwrap_or(0) << 20) ^ p.pc as u64,
                            );
                            let dep = (h.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
                                < self.config.load_dep_frac;
                            self.pus[pu].pc += 1;
                            self.pus[pu].port_free = now + 1;
                            let visible = if dep { out.done_at.0 } else { now.0 + 1 };
                            self.pus[pu].ready_at = Cycle(visible.max(now.0 + 1));
                            self.profiler.on_load(PuId(pu), now, self.pus[pu].ready_at);
                        }
                        Err(_) => self.stall(pu, now),
                    }
                    issued += 1;
                    break; // one memory operation per PU per cycle
                }
                Instr::Store(addr, value) => {
                    if now < self.pus[pu].port_free {
                        self.pus[pu].ready_at = self.pus[pu].port_free;
                        self.profiler
                            .on_port_block(PuId(pu), now, self.pus[pu].port_free);
                        break;
                    }
                    let result = match self.take_plan(pu, PlannedOp::Store(addr, value)) {
                        Some(token) => self.mem.store_planned(PuId(pu), addr, value, now, token),
                        None => self.mem.store(PuId(pu), addr, value, now),
                    };
                    self.note_mem_op(addr);
                    match result {
                        Ok(out) => {
                            self.pus[pu].pc += 1;
                            self.profiler.on_store(PuId(pu));
                            // Non-blocking for the pipeline; the store
                            // buffer absorbs roughly half the latency of
                            // reaching the memory structure, the rest
                            // shows as port pressure.
                            let tax = out.done_at.since(now).div_ceil(2);
                            self.pus[pu].port_free = now + tax;
                            self.pus[pu].ready_at = now + 1;
                            if let Some(v) = out.violation {
                                self.squash_from(v.victim.0, SquashCause::Violation, now);
                            }
                        }
                        Err(_) => self.stall(pu, now),
                    }
                    issued += 1;
                    break;
                }
            }
            if self.pus[pu].ready_at > now + 1 {
                break;
            }
        }
        if issued > 0 && self.pus[pu].ready_at <= now {
            self.pus[pu].ready_at = now + 1;
        }
        let p = &mut self.pus[pu];
        if p.pos.is_some() && p.pc >= p.instrs.len() {
            p.done = true;
        }
        issued > 0
    }

    /// Handles a replacement/structural stall: the head frees resources by
    /// squashing everything younger; others simply retry next cycle.
    fn stall(&mut self, pu: usize, now: Cycle) {
        let is_head = self.head_pu() == Some(pu);
        if is_head {
            if let Some(pos) = self.pus[pu].pos {
                // Squash strictly younger tasks to free speculative state.
                let younger = self
                    .pus
                    .iter()
                    .filter_map(|p| p.pos)
                    .filter(|&t| t > pos)
                    .min();
                if let Some(victim) = younger {
                    self.squash_from(victim, SquashCause::Resource, now);
                }
            }
        }
        self.pus[pu].ready_at = now + 1;
        self.profiler.on_stall(PuId(pu), now);
    }

    fn dispatch(&mut self, pu: usize, pos: u64, source: &dyn TaskSource, now: Cycle) {
        let attempt = *self.attempts.get(&pos).unwrap_or(&0);
        let wrong = self.config.predictor.mispredicts(TaskId(pos), attempt);
        let instrs = if wrong {
            self.garbage_task(pos, attempt)
        } else if self.peek_valid && self.peek_pos == pos && self.peek_task.is_some() {
            self.peek_valid = false;
            self.peek_task.take().expect("checked")
        } else {
            source.task(TaskId(pos)).expect("dispatched past the end")
        };
        self.tracer
            .emit(now, Category::Task, || TraceEvent::TaskDispatch {
                pu: PuId(pu),
                task: TaskId(pos),
                attempt,
                wrong_path: wrong,
            });
        self.mem.assign(PuId(pu), TaskId(pos));
        let ready = now.max(self.pus[pu].ready_at) + self.config.dispatch_cycles;
        self.profiler.on_dispatch(PuId(pu), now, ready);
        self.pus[pu] = PuState {
            pos: Some(pos),
            instrs,
            pc: 0,
            dispatched_at: now,
            ready_at: ready,
            port_free: ready,
            wrong,
            detect_at: now + self.config.predictor.detect_cycles.max(1),
            done: false,
        };
    }

    /// Squashes every task at position `victim` and younger (the paper's
    /// simple squash model), rewinding the sequencer to re-dispatch them.
    fn squash_from(&mut self, victim: u64, cause: SquashCause, now: Cycle) {
        match cause {
            SquashCause::Misprediction | SquashCause::Fault => {}
            SquashCause::Violation => self.violation_squashes += 1,
            SquashCause::Resource => self.resource_squashes += 1,
        }
        let trace_cause = match cause {
            SquashCause::Misprediction => svc_sim::trace::SquashCause::Misprediction,
            SquashCause::Violation => svc_sim::trace::SquashCause::Violation,
            SquashCause::Resource => svc_sim::trace::SquashCause::Resource,
            SquashCause::Fault => svc_sim::trace::SquashCause::Fault,
        };
        let mut hit: Vec<(usize, u64)> = self
            .pus
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.pos.map(|t| (i, t)))
            .filter(|&(_, t)| t >= victim)
            .collect();
        hit.sort_by_key(|&(_, t)| core::cmp::Reverse(t));
        if !hit.is_empty() {
            self.squash_depths.record(hit.len() as u64);
        }
        for &(pu, task) in &hit {
            let ready = self.pus[pu].ready_at;
            self.tracer
                .emit(now, Category::Task, || TraceEvent::TaskSquash {
                    pu: PuId(pu),
                    task: TaskId(task),
                    cause: trace_cause,
                    restart: TaskId(victim),
                    until: ready,
                });
            self.mem.squash_at(PuId(pu), now);
            if self.watchdog_every > 0 {
                let found = self.mem.check_post_squash(PuId(pu), now);
                self.record_violations(found, now);
            }
            // Wasted-work metering: the instructions this task had already
            // executed are thrown away, and the PU stays blocked on the
            // latency of whatever access it was squashed under.
            self.wasted_instrs += self.pus[pu].pc as u64;
            self.squash_recovery_cycles += ready.since(now);
            if self.profiler.is_active() {
                let p = &self.pus[pu];
                let touched = p.instrs[..p.pc.min(p.instrs.len())]
                    .iter()
                    .filter_map(|i| match i {
                        Instr::Load(a) => Some(*a),
                        Instr::Store(a, _) => Some(*a),
                        Instr::Compute(_) => None,
                    });
                self.profiler.note_wasted(touched);
                self.profiler.on_squash(PuId(pu), now, ready);
            }
            self.pus[pu] = PuState::idle();
            self.pus[pu].ready_at = ready;
            self.squashes += 1;
        }
        self.next_pos = self.next_pos.min(victim);
    }

    /// Records watchdog findings: each is kept for
    /// [`violations`](Engine::violations) and emitted as a trace event.
    fn record_violations(&mut self, found: Vec<InvariantViolation>, now: Cycle) {
        for v in found {
            self.tracer
                .emit(now, Category::Fault, || TraceEvent::InvariantViolation {
                    kind: v.kind.name(),
                    pu: v.pu,
                    line: v.line,
                    detail: v.detail.clone(),
                });
            self.violations.push(v);
        }
    }

    /// The PU running the oldest task, if any.
    fn head_pu(&self) -> Option<usize> {
        self.pus
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.pos.map(|t| (i, t)))
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i)
    }

    /// PU indices ordered oldest task first (idle PUs excluded). Runs
    /// once per scheduler iteration, so it stays allocation-free up to
    /// the inline capacity.
    fn pu_program_order(&self) -> SmallVec<usize, 8> {
        let mut v: SmallVec<(usize, u64), 8> = self
            .pus
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.pos.map(|t| (i, t)))
            .collect();
        v.sort_unstable_by_key(|&(_, t)| t);
        v.iter().map(|&(i, _)| i).collect()
    }

    /// Deterministic wrong-path work for a mispredicted dispatch.
    fn garbage_task(&self, pos: u64, attempt: u32) -> Vec<Instr> {
        let mut rng = Xoshiro256::seed_from(
            self.config.seed ^ 0xBAD ^ pos.wrapping_mul(0x9E37_79B9) ^ u64::from(attempt) << 32,
        );
        let len = rng.gen_index(4..20);
        (0..len)
            .map(|_| {
                let r = rng.gen_f64();
                if r < 0.25 {
                    Instr::Load(Addr(rng.gen_range(0..self.config.garbage_addr_space)))
                } else if r < 0.35 {
                    Instr::Store(
                        Addr(rng.gen_range(0..self.config.garbage_addr_space)),
                        Word(rng.next_u64()),
                    )
                } else {
                    Instr::Compute((rng.gen_range(0..2)) as u8)
                }
            })
            .collect()
    }
}

impl svc_types::Checkpointable for PuState {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.pos.save_state(w);
        self.instrs.save_state(w);
        self.pc.save_state(w);
        self.dispatched_at.save_state(w);
        self.ready_at.save_state(w);
        self.port_free.save_state(w);
        self.wrong.save_state(w);
        self.detect_at.save_state(w);
        self.done.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.pos.restore_state(r)?;
        self.instrs.restore_state(r)?;
        self.pc.restore_state(r)?;
        self.dispatched_at.restore_state(r)?;
        self.ready_at.restore_state(r)?;
        self.port_free.restore_state(r)?;
        self.wrong.restore_state(r)?;
        self.detect_at.restore_state(r)?;
        self.done.restore_state(r)?;
        if self.pc > self.instrs.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "PU pc {} beyond task of {} instructions",
                self.pc,
                self.instrs.len()
            )));
        }
        Ok(())
    }
}

impl svc_types::Checkpointable for RunReport {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.cycles.save_state(w);
        self.committed_instrs.save_state(w);
        self.committed_tasks.save_state(w);
        self.squashes.save_state(w);
        self.violation_squashes.save_state(w);
        self.resource_squashes.save_state(w);
        self.mispredictions.save_state(w);
        self.wasted_instrs.save_state(w);
        self.squash_recovery_cycles.save_state(w);
        self.task_lengths.save_state(w);
        self.task_latency.save_state(w);
        self.squash_depths.save_state(w);
        self.mem.save_state(w);
        self.hit_cycle_limit.save_state(w);
        self.ff_jumps.save_state(w);
        self.ff_skipped_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.cycles.restore_state(r)?;
        self.committed_instrs.restore_state(r)?;
        self.committed_tasks.restore_state(r)?;
        self.squashes.restore_state(r)?;
        self.violation_squashes.restore_state(r)?;
        self.resource_squashes.restore_state(r)?;
        self.mispredictions.restore_state(r)?;
        self.wasted_instrs.restore_state(r)?;
        self.squash_recovery_cycles.restore_state(r)?;
        self.task_lengths.restore_state(r)?;
        self.task_latency.restore_state(r)?;
        self.squash_depths.restore_state(r)?;
        self.mem.restore_state(r)?;
        self.hit_cycle_limit.restore_state(r)?;
        self.ff_jumps.restore_state(r)?;
        self.ff_skipped_cycles.restore_state(r)
    }
}

/// Engine checkpointing covers the memory system and the full scheduler
/// state — per-PU execution cursors, the sequencer, every report counter
/// and histogram, attached fault streams, the profiler's accumulators,
/// and the run cursor — so a `run_until` paused at a cycle boundary can
/// be serialized and resumed with no observable difference.
///
/// Not serialized: the tracer ring and the epoch sink (observers, not
/// simulation state — reattach after restore if wanted) and the task
/// source (reconstructed from config; sources are contractually
/// deterministic). The peek memo is invalidated on restore and re-asked
/// of the source.
impl<M: VersionedMemory + svc_types::Checkpointable> svc_types::Checkpointable for Engine<M> {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.mem.save_state(w);
        w.put_usize(self.pus.len());
        for pu in &self.pus {
            pu.save_state(w);
        }
        self.attempts.save_state(w);
        self.next_pos.save_state(w);
        self.dispatch_ready.save_state(w);
        self.squashes.save_state(w);
        self.violation_squashes.save_state(w);
        self.resource_squashes.save_state(w);
        self.mispredictions.save_state(w);
        self.wasted_instrs.save_state(w);
        self.squash_recovery_cycles.save_state(w);
        self.task_lengths.save_state(w);
        self.task_latency.save_state(w);
        self.squash_depths.save_state(w);
        self.faults.save_state(w);
        self.profiler.save_state(w);
        self.violations.save_state(w);
        self.now.save_state(w);
        self.committed_instrs.save_state(w);
        self.committed_tasks.save_state(w);
        self.hit_cycle_limit.save_state(w);
        self.next_watchdog.save_state(w);
        self.ff_jumps.save_state(w);
        self.ff_skipped_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.mem.restore_state(r)?;
        let n = r.take_usize()?;
        if n != self.pus.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "checkpoint has {n} PUs, engine has {}",
                self.pus.len()
            )));
        }
        for pu in &mut self.pus {
            pu.restore_state(r)?;
        }
        self.attempts.restore_state(r)?;
        self.next_pos.restore_state(r)?;
        self.dispatch_ready.restore_state(r)?;
        self.squashes.restore_state(r)?;
        self.violation_squashes.restore_state(r)?;
        self.resource_squashes.restore_state(r)?;
        self.mispredictions.restore_state(r)?;
        self.wasted_instrs.restore_state(r)?;
        self.squash_recovery_cycles.restore_state(r)?;
        self.task_lengths.restore_state(r)?;
        self.task_latency.restore_state(r)?;
        self.squash_depths.restore_state(r)?;
        self.faults.restore_state(r)?;
        self.profiler.restore_state(r)?;
        self.violations.restore_state(r)?;
        self.now.restore_state(r)?;
        self.committed_instrs.restore_state(r)?;
        self.committed_tasks.restore_state(r)?;
        self.hit_cycle_limit.restore_state(r)?;
        self.next_watchdog.restore_state(r)?;
        self.ff_jumps.restore_state(r)?;
        self.ff_skipped_cycles.restore_state(r)?;
        // The memo caches a lookup against a task source the checkpoint
        // does not carry; drop it so the next peek re-asks the source.
        self.peek_task = None;
        self.peek_valid = false;
        Ok(())
    }
}
