use svc_sim::rng::SplitMix64;
use svc_types::TaskId;

/// The control-flow (task) predictor model.
///
/// The paper's sequencer uses a path-based predictor with target/address
/// tables (§4.2); per DESIGN.md substitution 3, this reproduction models
/// only its *consequence*: each dispatch of a task position is correct
/// with probability `accuracy`, decided deterministically from
/// `(seed, position, attempt)` so that squash-and-replay is reproducible.
/// A mispredicted position runs garbage work until the misprediction is
/// detected `detect_cycles` after dispatch, then squashes (§2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorModel {
    /// Probability a dispatch is correct (e.g. 0.95).
    pub accuracy: f64,
    /// Cycles from dispatching a wrong task to detecting the
    /// misprediction.
    pub detect_cycles: u64,
    /// Seed decorrelating the prediction stream from the workload.
    pub seed: u64,
}

impl PredictorModel {
    /// A perfect predictor (never mispredicts).
    pub fn perfect() -> PredictorModel {
        PredictorModel {
            accuracy: 1.0,
            detect_cycles: 0,
            seed: 0,
        }
    }

    /// Whether dispatching `task` on its `attempt`-th try mispredicts.
    /// Deterministic in all arguments.
    pub fn mispredicts(&self, task: TaskId, attempt: u32) -> bool {
        if self.accuracy >= 1.0 {
            return false;
        }
        let mut g = SplitMix64::new(
            self.seed ^ task.0.wrapping_mul(0x9E37_79B9) ^ u64::from(attempt) << 40,
        );
        let u = (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u >= self.accuracy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_mispredicts() {
        let p = PredictorModel::perfect();
        assert!((0..1000).all(|i| !p.mispredicts(TaskId(i), 0)));
    }

    #[test]
    fn accuracy_is_respected() {
        let p = PredictorModel {
            accuracy: 0.9,
            detect_cycles: 10,
            seed: 42,
        };
        let n = 20_000;
        let wrong = (0..n).filter(|&i| p.mispredicts(TaskId(i), 0)).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "mispredict rate {rate}");
    }

    #[test]
    fn deterministic_per_attempt() {
        let p = PredictorModel {
            accuracy: 0.5,
            detect_cycles: 10,
            seed: 1,
        };
        for i in 0..100 {
            assert_eq!(p.mispredicts(TaskId(i), 0), p.mispredicts(TaskId(i), 0));
            assert_eq!(p.mispredicts(TaskId(i), 3), p.mispredicts(TaskId(i), 3));
        }
        // Different attempts give a fresh draw somewhere.
        assert!((0..100).any(|i| p.mispredicts(TaskId(i), 0) != p.mispredicts(TaskId(i), 1)));
    }
}
