//! The hierarchical (multiscalar-style) execution engine.
//!
//! Implements the execution model of paper §2.1: the dynamic instruction
//! stream is partitioned into *tasks*; a sequencer predicts the next task
//! in the sequence and assigns it to a free processing unit (PU); the
//! predicted tasks execute speculatively in parallel, buffering their
//! memory state in a [`VersionedMemory`](svc_types::VersionedMemory) (the
//! SVC, the ARB, or the ideal memory); tasks commit head-first, and
//! squash on task mispredictions and memory-dependence violations.
//!
//! The engine is generic over the memory system — this is what lets one
//! harness regenerate every figure of the paper's evaluation with both
//! the SVC and the ARB.
//!
//! Modelling notes (substitutions from the paper's cycle-accurate
//! multiscalar simulator are listed in DESIGN.md §2):
//!
//! * PUs retire up to `issue_width` instructions per cycle, in order;
//!   loads stall the PU for their latency minus a small overlap credit
//!   (standing in for the paper's 2-issue out-of-order PUs); stores are
//!   non-blocking.
//! * The task predictor is a configurable-accuracy model: a mispredicted
//!   position executes deterministic garbage work (including wrong-path
//!   memory traffic) until the misprediction is detected, then everything
//!   from that position squashes and restarts — §2.1's squash model.
//! * Violations reported by the memory system squash the victim task and
//!   everything younger, which then re-execute.
//!
//! # Example
//!
//! ```
//! use svc_multiscalar::{Engine, EngineConfig, Instr, VecTaskSource};
//! use svc::IdealMemory;
//! use svc_types::{Addr, Word};
//!
//! // Two tiny tasks: task 1 speculatively reads what task 0 wrote.
//! let tasks = vec![
//!     vec![Instr::Store(Addr(0), Word(7)), Instr::Compute(1)],
//!     vec![Instr::Load(Addr(0)), Instr::Compute(1)],
//! ];
//! let source = VecTaskSource::new(tasks);
//! let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
//! let report = engine.run(&source);
//! assert_eq!(report.committed_tasks, 2);
//! assert!(report.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod predictor;
mod task;

pub use engine::{
    engine_threads_from_env, Engine, EngineConfig, EpochSink, EpochSnapshot, RunReport,
};
pub use predictor::PredictorModel;
pub use task::{Instr, TaskSource, VecTaskSource};
