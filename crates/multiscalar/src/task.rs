use svc_types::{Addr, TaskId, Word};

/// One instruction of a task, as the engine models it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Non-memory work occupying the PU for the given number of cycles
    /// beyond its issue slot (0 = single-cycle ALU work).
    Compute(u8),
    /// A load from a word address.
    Load(Addr),
    /// A store of a value to a word address.
    Store(Addr, Word),
}

impl Default for Instr {
    fn default() -> Instr {
        Instr::Compute(0)
    }
}

impl svc_types::Checkpointable for Instr {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        match self {
            Instr::Compute(c) => {
                w.put_u8(0);
                w.put_u8(*c);
            }
            Instr::Load(addr) => {
                w.put_u8(1);
                addr.save_state(w);
            }
            Instr::Store(addr, value) => {
                w.put_u8(2);
                addr.save_state(w);
                value.save_state(w);
            }
        }
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        *self = match r.take_u8()? {
            0 => Instr::Compute(r.take_u8()?),
            1 => Instr::Load(r.take::<Addr>()?),
            2 => {
                let addr = r.take::<Addr>()?;
                let value = r.take::<Word>()?;
                Instr::Store(addr, value)
            }
            tag => {
                return Err(svc_types::CkptError::corrupt(format!(
                    "unknown Instr tag {tag}"
                )))
            }
        };
        Ok(())
    }
}

/// A deterministic source of tasks: the dynamic task sequence of a
/// program.
///
/// Determinism in `task(id)` is a hard requirement: squashed tasks are
/// re-dispatched by id and must re-execute exactly the same instructions.
pub trait TaskSource {
    /// The instructions of task `id`, or `None` past the end of the
    /// program. Must return the same list every time it is asked for the
    /// same `id`.
    fn task(&self, id: TaskId) -> Option<Vec<Instr>>;

    /// A human-readable name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// A [`TaskSource`] over an explicit vector of tasks — the simplest
/// source, used by tests and small examples.
#[derive(Debug, Clone)]
pub struct VecTaskSource {
    tasks: Vec<Vec<Instr>>,
    name: String,
}

impl VecTaskSource {
    /// Wraps an explicit task list.
    pub fn new(tasks: Vec<Vec<Instr>>) -> VecTaskSource {
        VecTaskSource {
            tasks,
            name: "vec".to_string(),
        }
    }

    /// Sets the report name.
    pub fn with_name(mut self, name: &str) -> VecTaskSource {
        self.name = name.to_string();
        self
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the source has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl TaskSource for VecTaskSource {
    fn task(&self, id: TaskId) -> Option<Vec<Instr>> {
        self.tasks.get(id.0 as usize).cloned()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_is_deterministic_and_bounded() {
        let src = VecTaskSource::new(vec![vec![Instr::Compute(0)], vec![Instr::Load(Addr(1))]])
            .with_name("t");
        assert_eq!(src.name(), "t");
        assert_eq!(src.len(), 2);
        assert!(!src.is_empty());
        assert_eq!(src.task(TaskId(0)), src.task(TaskId(0)));
        assert_eq!(src.task(TaskId(1)).unwrap(), vec![Instr::Load(Addr(1))]);
        assert_eq!(src.task(TaskId(2)), None);
    }
}
