//! Engine behaviour tests over the three memory systems (ideal, SVC,
//! ARB): sequential semantics, squash/replay, prediction effects, and
//! basic performance ordering.

use svc::{IdealMemory, SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_multiscalar::{Engine, EngineConfig, Instr, PredictorModel, VecTaskSource};
use svc_types::{Addr, TaskId, VersionedMemory, Word};

/// A program whose tasks pass a value down a chain: task i reads cell
/// i-1 *first* and writes cell i *last*. The eager load almost always
/// beats the producer's late store, forcing violations and replays.
fn chain_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let mut t = Vec::new();
            if i > 0 {
                t.push(Instr::Load(Addr(i - 1)));
            }
            t.extend([Instr::Compute(1); 4]);
            t.push(Instr::Store(Addr(i), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(tasks).with_name("chain")
}

/// A reuse-friendly program: every task reads a small shared read-only
/// table many times and writes a couple of private cells. This is the
/// hit-dominated regime where private 1-cycle caches shine (paper §4.4).
fn readonly_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let mut t = Vec::new();
            for k in 0..12u64 {
                t.push(Instr::Load(Addr(k % 16)));
                t.push(Instr::Compute(0));
            }
            t.push(Instr::Store(Addr(1024 + i), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(tasks).with_name("readonly")
}

/// An embarrassingly parallel program: each task works on its own block.
fn parallel_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let base = i * 64;
            vec![
                Instr::Load(Addr(base)),
                Instr::Compute(0),
                Instr::Store(Addr(base), Word(i + 1)),
                Instr::Load(Addr(base + 1)),
                Instr::Compute(1),
                Instr::Store(Addr(base + 1), Word(i + 2)),
            ]
        })
        .collect();
    VecTaskSource::new(tasks).with_name("parallel")
}

fn run_on<M: VersionedMemory>(mem: M, src: &VecTaskSource, cfg: EngineConfig) -> (f64, M) {
    let mut engine = Engine::new(cfg, mem);
    let report = engine.run(src);
    assert!(!report.hit_cycle_limit, "run did not converge");
    (report.ipc(), engine.into_memory())
}

#[test]
fn chain_commits_sequential_semantics_on_all_memories() {
    let src = chain_program(40);
    let cfg = EngineConfig::default();
    let (_, mut ideal) = run_on(IdealMemory::new(4, 1), &src, cfg);
    let (_, mut svc) = run_on(SvcSystem::new(SvcConfig::final_design(4)), &src, cfg);
    let (_, mut arb) = run_on(ArbSystem::new(ArbConfig::paper(4, 1, 32)), &src, cfg);
    ideal.drain();
    svc.drain();
    arb.drain();
    for i in 0..40 {
        let expect = Word(i + 1);
        assert_eq!(ideal.architectural(Addr(i)), expect, "ideal cell {i}");
        assert_eq!(svc.architectural(Addr(i)), expect, "svc cell {i}");
        assert_eq!(arb.architectural(Addr(i)), expect, "arb cell {i}");
    }
}

#[test]
fn chain_violations_squash_and_replay() {
    let src = chain_program(32);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 32);
    assert!(
        report.mem.violations > 0,
        "eager cross-task loads must violate at least once"
    );
    assert!(report.squashes >= report.mem.violations);
}

#[test]
fn parallel_program_commits_everything() {
    let src = parallel_program(50);
    let mut engine = Engine::new(
        EngineConfig::default(),
        SvcSystem::new(SvcConfig::final_design(4)),
    );
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 50);
    assert_eq!(report.committed_instrs, 50 * 6);
    assert_eq!(report.mem.violations, 0, "no cross-task dependences");
}

#[test]
fn parallel_ipc_beats_single_pu() {
    let src = parallel_program(64);
    let mut cfg = EngineConfig::default();
    let (ipc4, _) = run_on(IdealMemory::new(4, 1), &src, cfg);
    cfg.num_pus = 1;
    let (ipc1, _) = run_on(IdealMemory::new(1, 1), &src, cfg);
    assert!(
        ipc4 > ipc1 * 2.0,
        "4 PUs should clearly beat 1 (got {ipc4:.2} vs {ipc1:.2})"
    );
}

#[test]
fn mispredictions_cost_performance_but_not_correctness() {
    let src = parallel_program(60);
    let mut cfg = EngineConfig::default();
    let (ipc_perfect, _) = run_on(IdealMemory::new(4, 1), &src, cfg);
    cfg.predictor = PredictorModel {
        accuracy: 0.8,
        detect_cycles: 12,
        seed: 3,
    };
    let mut engine = Engine::new(cfg, IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 60, "all tasks still commit");
    assert!(report.mispredictions > 0);
    assert!(
        report.ipc() < ipc_perfect,
        "mispredictions must cost cycles ({} vs {ipc_perfect})",
        report.ipc()
    );
    // And the final memory is still correct.
    let mut mem = engine.into_memory();
    mem.drain();
    for i in 0..60 {
        assert_eq!(mem.architectural(Addr(i * 64)), Word(i + 1));
    }
}

#[test]
fn svc_one_cycle_hit_beats_slow_arb_on_hit_friendly_work() {
    // The headline effect of Figures 19/20: private 1-cycle hits vs a
    // shared structure with multi-cycle hits, on hit-dominated work.
    let src = readonly_program(100);
    let cfg = EngineConfig::default();
    let (svc_ipc, _) = run_on(SvcSystem::new(SvcConfig::final_design(4)), &src, cfg);
    let (arb4_ipc, _) = run_on(ArbSystem::new(ArbConfig::paper(4, 4, 32)), &src, cfg);
    assert!(
        svc_ipc > arb4_ipc,
        "SVC(1) {svc_ipc:.2} should beat ARB(4) {arb4_ipc:.2}"
    );
}

#[test]
fn contention_free_arb_wins_on_cold_miss_dominated_work() {
    // The flip side the paper's Table 2 shows: distributing storage costs
    // the SVC hit rate, and a cold-footprint program (every task touches
    // fresh lines) is dominated by misses and bus occupancy, where the
    // ARB's unlimited-bandwidth shared cache does better.
    let src = parallel_program(100);
    let cfg = EngineConfig::default();
    let (svc_ipc, _) = run_on(SvcSystem::new(SvcConfig::final_design(4)), &src, cfg);
    let (arb1_ipc, _) = run_on(ArbSystem::new(ArbConfig::paper(4, 1, 32)), &src, cfg);
    assert!(
        arb1_ipc > svc_ipc,
        "ARB(1) {arb1_ipc:.2} should beat SVC {svc_ipc:.2} on cold misses"
    );
}

#[test]
fn arb_ipc_degrades_with_hit_latency() {
    let src = parallel_program(100);
    let cfg = EngineConfig::default();
    let mut last = f64::INFINITY;
    for hit in [1, 2, 3, 4] {
        let (ipc, _) = run_on(ArbSystem::new(ArbConfig::paper(4, hit, 32)), &src, cfg);
        assert!(
            ipc < last,
            "IPC must fall as ARB hit latency rises (hit={hit}: {ipc:.3} vs {last:.3})"
        );
        last = ipc;
    }
}

#[test]
fn deterministic_runs() {
    let src = chain_program(24);
    let cfg = EngineConfig {
        predictor: PredictorModel {
            accuracy: 0.85,
            detect_cycles: 8,
            seed: 11,
        },
        ..EngineConfig::default()
    };
    let mut e1 = Engine::new(cfg, SvcSystem::new(SvcConfig::final_design(4)));
    let mut e2 = Engine::new(cfg, SvcSystem::new(SvcConfig::final_design(4)));
    let r1 = e1.run(&src);
    let r2 = e2.run(&src);
    assert_eq!(r1, r2, "same seed, same run");
}

#[test]
fn instruction_budget_stops_early() {
    let src = parallel_program(1000);
    let cfg = EngineConfig {
        max_instructions: 120,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(cfg, IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert!(report.committed_instrs >= 120);
    assert!(report.committed_tasks < 1000);
}

#[test]
fn empty_source_reports_zero() {
    let src = VecTaskSource::new(vec![]);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 0);
    assert_eq!(report.cycles, 0);
    assert_eq!(report.ipc(), 0.0);
}

#[test]
fn single_task_program() {
    let src = VecTaskSource::new(vec![vec![
        Instr::Store(Addr(0), Word(5)),
        Instr::Load(Addr(0)),
        Instr::Compute(2),
    ]]);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 1);
    assert_eq!(report.committed_instrs, 3);
    let mut mem = engine.into_memory();
    mem.drain();
    assert_eq!(mem.architectural(Addr(0)), Word(5));
}

#[test]
fn more_tasks_than_task_ids_is_fine() {
    // Source shorter than PU count: only some PUs ever used.
    let src = parallel_program(2);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 2);
}

#[test]
fn task_source_determinism_guard() {
    // The engine relies on task(id) being stable; VecTaskSource must obey.
    let src = chain_program(8);
    use svc_multiscalar::TaskSource;
    for i in 0..8 {
        assert_eq!(src.task(TaskId(i)), src.task(TaskId(i)));
    }
}
