//! Tests of the engine's timing and policy machinery: dispatch affinity,
//! wrong-path determinism, idle fast-forwarding, and the reported
//! breakdowns.

use svc::{IdealMemory, SvcConfig, SvcSystem};
use svc_multiscalar::{Engine, EngineConfig, Instr, PredictorModel, VecTaskSource};
use svc_types::{Addr, Word};

/// Tasks that each store to a per-position slot and then read it back:
/// with round-robin PU affinity the second access is a guaranteed local
/// hit in the SVC, so affinity is observable through the hit counters.
fn affinity_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let slot = Addr((i % 4) * 4);
            vec![
                Instr::Load(slot),
                Instr::Compute(1),
                Instr::Compute(1),
                Instr::Store(slot, Word(i + 1)),
            ]
        })
        .collect();
    VecTaskSource::new(tasks)
}

#[test]
fn dispatch_affinity_gives_slot_locality() {
    // Snarfing is disabled: it would hand every PU a copy of each fill,
    // clearing the X bit and forcing stores onto the bus (see the
    // companion test below for that interaction).
    let mut cfg = SvcConfig::final_design(4);
    cfg.snarfing = false;
    let src = affinity_program(400);
    let mut engine = Engine::new(EngineConfig::default(), SvcSystem::new(cfg));
    let report = engine.run(&src);
    assert_eq!(report.committed_tasks, 400);
    // With affinity, each slot stays in one PU's cache: stores are X-bit
    // local and half of all accesses avoid the bus entirely.
    let local = report.mem.local_hits as f64 / report.mem.accesses() as f64;
    assert!(local > 0.4, "local-hit ratio {local:.2} with PU affinity");
    // Without affinity-friendly slots the same config loses the locality:
    // rotate the slot by one position per epoch, so each PU always needs
    // the slot its neighbour wrote last epoch.
    let rotated: Vec<Vec<Instr>> = (0..400u64)
        .map(|i| {
            let slot = Addr(((i + i / 4) % 4) * 4);
            vec![
                Instr::Load(slot),
                Instr::Compute(1),
                Instr::Compute(1),
                Instr::Store(slot, Word(i + 1)),
            ]
        })
        .collect();
    let mut cfg2 = SvcConfig::final_design(4);
    cfg2.snarfing = false;
    let mut engine = Engine::new(EngineConfig::default(), SvcSystem::new(cfg2));
    let rotated_report = engine.run(&VecTaskSource::new(rotated));
    let rotated_local = rotated_report.mem.local_hits as f64 / rotated_report.mem.accesses() as f64;
    assert!(
        local > rotated_local,
        "affinity locality ({local:.2}) must beat rotated slots ({rotated_local:.2})"
    );
}

#[test]
fn snarfing_trades_store_locality_for_load_spreading() {
    // With snarfing on, every fill is copied into the other caches: loads
    // of shared data get cheaper, but private slots lose their X bit and
    // every store pays a bus transaction. Both effects are measurable.
    let src = affinity_program(400);
    let mut on_cfg = SvcConfig::final_design(4);
    on_cfg.snarfing = true;
    let mut off_cfg = on_cfg;
    off_cfg.snarfing = false;
    let mut on = Engine::new(EngineConfig::default(), SvcSystem::new(on_cfg));
    let on_report = on.run(&src);
    let mut off = Engine::new(EngineConfig::default(), SvcSystem::new(off_cfg));
    let off_report = off.run(&src);
    assert!(on_report.mem.snarfs > 0);
    assert_eq!(off_report.mem.snarfs, 0);
    assert!(
        on_report.mem.local_hits < off_report.mem.local_hits,
        "snarfed copies clear exclusivity: {} vs {} local hits",
        on_report.mem.local_hits,
        off_report.mem.local_hits
    );
}

#[test]
fn wrong_path_work_is_deterministic() {
    let src = affinity_program(200);
    let mk = || {
        let cfg = EngineConfig {
            predictor: PredictorModel {
                accuracy: 0.7,
                detect_cycles: 10,
                seed: 99,
            },
            seed: 99,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg, SvcSystem::new(SvcConfig::final_design(4)));
        e.run(&src)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "same seeds, same wrong-path work, same report");
    assert!(a.mispredictions > 0, "30% misprediction rate must show");
}

#[test]
fn idle_fast_forward_does_not_distort_time() {
    // One task with a single long compute: the run must take (roughly)
    // that many cycles, whether the engine steps or jumps.
    let src = VecTaskSource::new(vec![vec![Instr::Compute(200), Instr::Compute(0)]]);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert!(
        (200..260).contains(&report.cycles),
        "a 201-cycle task took {} cycles",
        report.cycles
    );
}

#[test]
fn squash_cause_breakdown_is_reported() {
    // Violation squashes: a tight producer-consumer chain.
    let chain: Vec<Vec<Instr>> = (0..60u64)
        .map(|i| {
            let mut t = Vec::new();
            if i > 0 {
                t.push(Instr::Load(Addr(i - 1)));
            }
            t.extend([Instr::Compute(1); 3]);
            t.push(Instr::Store(Addr(i), Word(i + 1)));
            t
        })
        .collect();
    let src = VecTaskSource::new(chain);
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert!(report.violation_squashes > 0);
    assert_eq!(report.mispredictions, 0, "perfect predictor");
    assert!(report.squashes >= report.violation_squashes);
}

#[test]
fn task_length_histogram_matches_committed_work() {
    let src = affinity_program(100); // all tasks are 4 instructions
    let mut engine = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let report = engine.run(&src);
    assert_eq!(report.task_lengths.total(), 100);
    assert_eq!(report.task_lengths.bucket(0), 100, "all in the 0..8 bucket");
    assert_eq!(report.avg_task_len(), 4.0);
}

#[test]
fn issue_width_bounds_throughput() {
    // Pure compute tasks: IPC per PU cannot exceed the issue width.
    let tasks: Vec<Vec<Instr>> = (0..100).map(|_| vec![Instr::Compute(0); 32]).collect();
    let src = VecTaskSource::new(tasks);
    for width in [1usize, 2, 4] {
        let cfg = EngineConfig {
            issue_width: width,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(cfg, IdealMemory::new(4, 1));
        let report = engine.run(&src);
        let bound = (width * 4) as f64;
        assert!(
            report.ipc() <= bound + 1e-9,
            "IPC {} exceeds {width}-wide x 4 PUs",
            report.ipc()
        );
        if width > 1 {
            // Wider issue must actually help on pure compute.
            let narrow_cfg = EngineConfig {
                issue_width: width / 2,
                ..EngineConfig::default()
            };
            let mut narrow = Engine::new(narrow_cfg, IdealMemory::new(4, 1));
            let narrow_report = narrow.run(&src);
            assert!(report.ipc() > narrow_report.ipc());
        }
    }
}

#[test]
fn store_port_pressure_shows_in_timing() {
    // Store-dense tasks: a memory system with slow stores must yield a
    // slower run than the 1-cycle ideal.
    let tasks: Vec<Vec<Instr>> = (0..200u64)
        .map(|i| {
            (0..8)
                .map(|k| Instr::Store(Addr(i * 8 + k), Word(k)))
                .collect()
        })
        .collect();
    let src = VecTaskSource::new(tasks);
    let mut fast = Engine::new(EngineConfig::default(), IdealMemory::new(4, 1));
    let fast_ipc = fast.run(&src).ipc();
    let mut slow = Engine::new(EngineConfig::default(), IdealMemory::new(4, 6));
    let slow_ipc = slow.run(&src).ipc();
    assert!(
        fast_ipc > slow_ipc * 1.3,
        "6-cycle stores ({slow_ipc:.2}) must trail 1-cycle stores ({fast_ipc:.2})"
    );
}
