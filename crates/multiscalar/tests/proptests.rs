//! Property-based tests of the execution engine: any generated program,
//! with any predictor accuracy, commits every task exactly once, in
//! order, with a correct final memory image.

use proptest::prelude::*;
use svc::IdealMemory;
use svc_multiscalar::{Engine, EngineConfig, Instr, PredictorModel, VecTaskSource};
use svc_types::{Addr, VersionedMemory, Word};

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                (0u64..32).prop_map(|a| Instr::Load(Addr(a))),
                (0u64..32, 1u64..1000).prop_map(|(a, v)| Instr::Store(Addr(a), Word(v))),
                (0u8..3).prop_map(Instr::Compute),
            ],
            1..8,
        ),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_commits_everything_correctly(
        program in program_strategy(),
        accuracy in 0.6f64..1.0,
        seed in 0u64..100_000,
        pus in 1usize..5,
    ) {
        // Serial model of the program.
        let mut serial = std::collections::HashMap::new();
        for task in &program {
            for op in task {
                if let Instr::Store(a, v) = op {
                    serial.insert(*a, *v);
                }
            }
        }
        let instrs: u64 = program.iter().map(|t| t.len() as u64).sum();
        let n = program.len() as u64;
        let src = VecTaskSource::new(program);
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: PredictorModel {
                accuracy,
                detect_cycles: 8,
                seed,
            },
            seed,
            garbage_addr_space: 32, // pollute the same address space
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(cfg, IdealMemory::new(pus, 1));
        let report = engine.run(&src);
        prop_assert!(!report.hit_cycle_limit);
        prop_assert_eq!(report.committed_tasks, n);
        prop_assert_eq!(report.committed_instrs, instrs);
        prop_assert!(report.ipc() > 0.0 || n == 0);
        let mut mem = engine.into_memory();
        mem.drain();
        for (a, v) in serial {
            prop_assert_eq!(mem.architectural(a), v, "address {}", a);
        }
    }
}
