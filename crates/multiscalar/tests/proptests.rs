//! Property-based tests of the execution engine: any generated program,
//! with any predictor accuracy, commits every task exactly once, in
//! order, with a correct final memory image — and with a profiler
//! attached, the stall-attribution conservation invariant holds under
//! the default idle-cycle fast-forwarding scheduler (bulk-credited
//! jumps must account for exactly the cycles they skip).

use proptest::prelude::*;
use svc::{IdealMemory, SvcConfig, SvcSystem};
use svc_multiscalar::{Engine, EngineConfig, Instr, PredictorModel, VecTaskSource};
use svc_sim::profile::Profiler;
use svc_types::{Addr, VersionedMemory, Word};

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                (0u64..32).prop_map(|a| Instr::Load(Addr(a))),
                (0u64..32, 1u64..1000).prop_map(|(a, v)| Instr::Store(Addr(a), Word(v))),
                (0u8..3).prop_map(Instr::Compute),
            ],
            1..8,
        ),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_commits_everything_correctly(
        program in program_strategy(),
        accuracy in 0.6f64..1.0,
        seed in 0u64..100_000,
        pus in 1usize..5,
    ) {
        // Serial model of the program.
        let mut serial = std::collections::HashMap::new();
        for task in &program {
            for op in task {
                if let Instr::Store(a, v) = op {
                    serial.insert(*a, *v);
                }
            }
        }
        let instrs: u64 = program.iter().map(|t| t.len() as u64).sum();
        let n = program.len() as u64;
        let src = VecTaskSource::new(program);
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: PredictorModel {
                accuracy,
                detect_cycles: 8,
                seed,
            },
            seed,
            garbage_addr_space: 32, // pollute the same address space
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(cfg, IdealMemory::new(pus, 1));
        let report = engine.run(&src);
        prop_assert!(!report.hit_cycle_limit);
        prop_assert_eq!(report.committed_tasks, n);
        prop_assert_eq!(report.committed_instrs, instrs);
        prop_assert!(report.ipc() > 0.0 || n == 0);
        let mut mem = engine.into_memory();
        mem.drain();
        for (a, v) in serial {
            prop_assert_eq!(mem.architectural(a), v, "address {}", a);
        }
    }

    /// With a live profiler, every PU-cycle is attributed exactly once.
    /// The environment is untouched here, so the engine runs its default
    /// fast-forwarding scheduler: idle jumps are common on the SVC (long
    /// fills stall every PU at once) and each jump bulk-credits the
    /// profiler's stall windows — conservation catches any cycle the
    /// jump loses or double-counts.
    #[test]
    fn profile_conservation_holds_under_fast_forward(
        program in program_strategy(),
        accuracy in 0.6f64..1.0,
        seed in 0u64..100_000,
        pus in 1usize..5,
        epoch in 16u64..256,
    ) {
        let src = VecTaskSource::new(program);
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: PredictorModel {
                accuracy,
                detect_cycles: 8,
                seed,
            },
            seed,
            garbage_addr_space: 32,
            ..EngineConfig::default()
        };
        let profiler = Profiler::new(pus, epoch);
        let mut system = SvcSystem::new(SvcConfig::final_design(pus));
        system.set_profiler(profiler.clone());
        let mut engine = Engine::new(cfg, system);
        engine.set_profiler(profiler.clone());
        let report = engine.run(&src);
        prop_assert!(!report.hit_cycle_limit);
        let p = profiler.report().expect("live profiler yields a report");
        prop_assert_eq!(p.cycles, report.cycles);
        prop_assert!(
            p.conservation_ok(),
            "expected {} attributed {}",
            p.expected(),
            p.attributed()
        );
    }
}
