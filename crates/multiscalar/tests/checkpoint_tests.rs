//! Engine checkpoint/restore: a run paused at a cycle boundary,
//! serialized, restored into a freshly built engine, and continued must
//! be indistinguishable from an uninterrupted run — same report, same
//! final serialized state.

use svc::{SvcConfig, SvcSystem};
use svc_multiscalar::{Engine, EngineConfig, Instr, VecTaskSource};
use svc_sim::fault::{FaultConfig, Faults};
use svc_sim::profile::Profiler;
use svc_types::{Addr, Checkpointable, CkptError, CkptReader, CkptWriter, Word};

const PUS: usize = 4;

/// Value-passing chain: forces violations, squashes, and replays, so a
/// checkpoint taken mid-run carries non-trivial speculative state.
fn chain_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let mut t = Vec::new();
            if i > 0 {
                t.push(Instr::Load(Addr(i - 1)));
            }
            t.extend([Instr::Compute(1); 4]);
            t.push(Instr::Store(Addr(i), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(tasks).with_name("chain")
}

struct Attach {
    faults: Option<(FaultConfig, u64)>,
    profiler: bool,
    watchdog: u64,
}

impl Attach {
    fn plain() -> Attach {
        Attach {
            faults: None,
            profiler: false,
            watchdog: 0,
        }
    }

    fn full() -> Attach {
        Attach {
            faults: Some((FaultConfig::uniform(0.02), 0xFA11)),
            profiler: true,
            watchdog: 64,
        }
    }

    /// Builds the engine exactly as a resuming process would: from
    /// config alone, attachments recreated, no run state.
    fn build(&self) -> Engine<SvcSystem> {
        let mut system = SvcSystem::new(SvcConfig::final_design(PUS));
        let faults = match &self.faults {
            Some((cfg, seed)) => Faults::new(cfg, *seed),
            None => Faults::disabled(),
        };
        let profiler = if self.profiler {
            Profiler::new(PUS, 128)
        } else {
            Profiler::disabled()
        };
        system.set_faults(faults.clone());
        system.set_profiler(profiler.clone());
        let engine_cfg = EngineConfig {
            num_pus: PUS,
            seed: 7,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(engine_cfg, system);
        engine.set_faults(faults);
        engine.set_profiler(profiler);
        engine.set_watchdog(self.watchdog);
        engine
    }
}

fn snapshot(engine: &Engine<SvcSystem>) -> Vec<u8> {
    let mut w = CkptWriter::new();
    engine.save_state(&mut w);
    w.into_bytes()
}

fn restore(engine: &mut Engine<SvcSystem>, bytes: &[u8]) -> Result<(), CkptError> {
    let mut r = CkptReader::new(bytes);
    engine.restore_state(&mut r)?;
    r.finish()
}

/// Reference: one uninterrupted run.
fn reference(attach: &Attach, src: &VecTaskSource) -> (svc_multiscalar::RunReport, Vec<u8>) {
    let mut engine = attach.build();
    let report = engine.run(src);
    let state = snapshot(&engine);
    (report, state)
}

#[test]
fn pause_resume_without_serialization_is_invisible() {
    let src = chain_program(40);
    let attach = Attach::plain();
    let (want, want_state) = reference(&attach, &src);

    let mut engine = attach.build();
    let mut stop = 3u64;
    while !engine.run_until(&src, Some(stop)) {
        stop += 17;
    }
    let got = engine.finish();
    assert_eq!(got, want, "chopped run diverged from uninterrupted run");
    assert_eq!(snapshot(&engine), want_state);
}

#[test]
fn checkpoint_restore_continue_matches_uninterrupted() {
    let src = chain_program(40);
    for attach in [Attach::plain(), Attach::full()] {
        let (want, want_state) = reference(&attach, &src);

        // Run a while, checkpoint, and throw the engine away.
        let mut first = attach.build();
        let finished = first.run_until(&src, Some(25));
        assert!(!finished, "program should outlast 25 cycles");
        let bytes = snapshot(&first);
        drop(first);

        // A fresh process: rebuild from config, restore, continue.
        let mut resumed = attach.build();
        restore(&mut resumed, &bytes).expect("restore");
        // Save-after-restore must reproduce the exact bytes (full
        // round-trip stability, not just behavioral equivalence).
        assert_eq!(snapshot(&resumed), bytes);
        while !resumed.run_until(&src, Some(resumed.cycle() + 100)) {}
        let got = resumed.finish();
        assert_eq!(got, want, "resumed run diverged from uninterrupted run");
        assert_eq!(snapshot(&resumed), want_state);
    }
}

#[test]
fn restore_rejects_truncation_everywhere() {
    let src = chain_program(40);
    let attach = Attach::full();
    let mut engine = attach.build();
    assert!(!engine.run_until(&src, Some(40)));
    let bytes = snapshot(&engine);
    // Every proper prefix must fail loudly, never restore garbage.
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        let mut fresh = attach.build();
        assert!(
            restore(&mut fresh, &bytes[..cut]).is_err(),
            "prefix of {cut} bytes restored without error"
        );
    }
}

#[test]
fn restore_rejects_geometry_mismatch() {
    let src = chain_program(40);
    let mut engine = Attach::plain().build();
    assert!(!engine.run_until(&src, Some(25)));
    let bytes = snapshot(&engine);

    // An engine over a different PU count must refuse the payload.
    let system = SvcSystem::new(SvcConfig::final_design(2));
    let mut other = Engine::new(
        EngineConfig {
            num_pus: 2,
            seed: 7,
            ..EngineConfig::default()
        },
        system,
    );
    assert!(restore(&mut other, &bytes).is_err());
}

#[test]
fn restore_rejects_attachment_mismatch() {
    let src = chain_program(40);
    let mut engine = Attach::full().build();
    assert!(!engine.run_until(&src, Some(25)));
    let bytes = snapshot(&engine);

    // Resuming without the fault streams the checkpoint carries must be
    // an error, not a silently different simulation.
    let mut bare = Attach::plain().build();
    assert!(restore(&mut bare, &bytes).is_err());
}
