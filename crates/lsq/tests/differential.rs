//! The LSQ baseline must agree with the oracle like every other
//! `VersionedMemory` (DESIGN.md invariant 5).

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Workload};
use svc_lsq::{LsqConfig, LsqMemory};

#[test]
fn differential_seeded() {
    for seed in 0..20 {
        let wl = Workload::random(seed, 24, 16, 4);
        run_lockstep(&wl, LsqMemory::new(LsqConfig::default()), seed);
    }
}

#[test]
fn differential_tiny_queues() {
    for seed in 100..110 {
        let wl = Workload::random(seed, 20, 24, 4);
        let cfg = LsqConfig {
            store_entries: 8,
            load_entries: 8,
            ..LsqConfig::default()
        };
        run_lockstep(&wl, LsqMemory::new(cfg), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lsq_matches_oracle(
        seed in 0u64..1_000_000,
        tasks in 2usize..24,
        addr_space in 4u64..40,
        pus in 2usize..5,
    ) {
        let wl = Workload::random(seed, tasks, addr_space, pus);
        let cfg = LsqConfig {
            num_pus: pus,
            ..LsqConfig::default()
        };
        run_lockstep(&wl, LsqMemory::new(cfg), seed);
    }
}
