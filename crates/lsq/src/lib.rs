//! The centralized load/store-queue baseline.
//!
//! Paper §1: "Most modern microprocessors dispatch instructions from a
//! single instruction stream, and issue load and store instructions from a
//! common set of hardware buffers ... the hardware maintains a
//! time-ordering of loads and stores via simple queue mechanisms, coupled
//! with address comparison logic. The presence of store queues provides a
//! simple form of speculative versioning. However ... load-store queues
//! are not designed to support speculative versioning in hierarchical
//! organizations."
//!
//! [`LsqMemory`] generalizes that mechanism to the task model so it can be
//! compared head-to-head with the ARB and the SVC: one *centralized*
//! store queue holds every uncommitted store (ordered by task, then by
//! arrival); loads associatively search it for the youngest older store
//! (store-to-load forwarding) and are recorded in a load queue for
//! violation detection; commits retire the head task's stores, in order,
//! to a backing cache. Like the ARB it is a shared structure — every
//! access pays its port latency — and unlike the ARB its *capacity* is
//! the number of buffered stores, not tracked addresses, so store-rich
//! speculation fills it quickly. Those two costs are precisely the
//! paper's motivation for the SVC.
//!
//! # Example
//!
//! ```
//! use svc_lsq::{LsqConfig, LsqMemory};
//! use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};
//!
//! let mut lsq = LsqMemory::new(LsqConfig::default());
//! lsq.assign(PuId(0), TaskId(0));
//! lsq.assign(PuId(1), TaskId(1));
//! lsq.store(PuId(0), Addr(4), Word(9), Cycle(0))?;
//! let out = lsq.load(PuId(1), Addr(4), Cycle(1))?;
//! assert_eq!(out.value, Word(9)); // forwarded from the store queue
//! # Ok::<(), svc_types::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use svc_mem::{CacheArray, CacheGeometry, Slot};
use svc_types::{
    AccessError, Addr, Cycle, DataSource, LoadOutcome, MemStats, PuId, StoreOutcome,
    TaskAssignments, TaskId, VersionedMemory, Violation, Word,
};

/// Configuration of the [`LsqMemory`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqConfig {
    /// Number of processing units sharing the queue.
    pub num_pus: usize,
    /// Store-queue entries (uncommitted stores buffered). The classic
    /// scaling limit: a full queue stalls the storing PU.
    pub store_entries: usize,
    /// Load-queue entries (speculative loads remembered for violation
    /// detection).
    pub load_entries: usize,
    /// Latency of reaching the shared queue structure (its port), like
    /// the ARB's hit latency.
    pub hit_cycles: u64,
    /// Additional penalty when the backing cache misses to memory.
    pub memory_cycles: u64,
    /// Geometry of the backing data cache holding retired state.
    pub cache_geometry: CacheGeometry,
}

impl Default for LsqConfig {
    fn default() -> LsqConfig {
        LsqConfig {
            num_pus: 4,
            store_entries: 64,
            load_entries: 64,
            hit_cycles: 1,
            memory_cycles: 10,
            // 32KB direct-mapped, 16-byte lines, like the ARB's backing.
            cache_geometry: CacheGeometry::new(2048, 1, 4, 4),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    task: TaskId,
    seq: u64, // arrival order, for same-task ordering
    addr: Addr,
    value: Word,
}

#[derive(Debug, Clone, Copy)]
struct LoadEntry {
    task: TaskId,
    addr: Addr,
}

/// Tag-only resident line of the backing cache (data lives in `Backing`;
/// the array models capacity and conflicts for miss accounting).
#[derive(Debug, Clone, Default)]
struct ResidentLine {
    line: Option<svc_types::LineId>,
}

impl Slot for ResidentLine {
    fn held_line(&self) -> Option<svc_types::LineId> {
        self.line
    }
}

/// The centralized LSQ memory system. See the crate docs.
#[derive(Debug, Clone)]
pub struct LsqMemory {
    config: LsqConfig,
    assignments: TaskAssignments,
    stores: Vec<StoreEntry>,
    loads: Vec<LoadEntry>,
    cache: svc_mem::Backing,
    // Tag array of the backing cache: capacity and conflict behaviour for
    // miss accounting (the data itself is always consistent in `cache`).
    resident: CacheArray<ResidentLine>,
    seq: u64,
    stats: MemStats,
}

impl LsqMemory {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if any capacity in `config` is zero.
    pub fn new(config: LsqConfig) -> LsqMemory {
        assert!(config.num_pus > 0 && config.store_entries > 0 && config.load_entries > 0);
        LsqMemory {
            assignments: TaskAssignments::new(config.num_pus),
            stores: Vec::new(),
            loads: Vec::new(),
            cache: svc_mem::Backing::flat(config.memory_cycles),
            resident: CacheArray::new(config.cache_geometry),
            seq: 0,
            stats: MemStats::default(),
            config,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &LsqConfig {
        &self.config
    }

    /// Buffered (uncommitted) stores right now — the occupancy that
    /// limits speculation depth.
    pub fn buffered_stores(&self) -> usize {
        self.stores.len()
    }

    fn task_of(&self, pu: PuId) -> Result<TaskId, AccessError> {
        self.assignments.task_of(pu).ok_or(AccessError::NoTask(pu))
    }

    /// Youngest store older than or equal to `task` for `addr`.
    fn forward(&self, addr: Addr, task: TaskId) -> Option<Word> {
        self.stores
            .iter()
            .filter(|e| e.addr == addr && !task.is_older_than(e.task))
            .max_by_key(|e| (e.task, e.seq))
            .map(|e| e.value)
    }
}

impl VersionedMemory for LsqMemory {
    fn num_pus(&self) -> usize {
        self.config.num_pus
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.assignments.assign(pu, task);
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        let task = self.task_of(pu)?;
        // The head (oldest) task is non-speculative: no older store can
        // ever violate its loads, so they need no load-queue entry. This
        // also guarantees the head can always make progress, whatever the
        // queue occupancy — the liveness property real processors get
        // from retiring the oldest instructions unconditionally.
        let is_head = self.assignments.head() == Some(pu);
        if !is_head && self.loads.len() >= self.config.load_entries {
            // Retired loads are pruned at commit; a full queue stalls.
            self.stats.replacement_stalls += 1;
            return Err(AccessError::Structural("load queue full"));
        }
        self.stats.loads += 1;
        // Record for violation detection unless the task already stored
        // here (own store shields the load).
        let own = self.stores.iter().any(|e| e.addr == addr && e.task == task);
        if !own && !is_head {
            self.loads.push(LoadEntry { task, addr });
        }
        if let Some(value) = self.forward(addr, task) {
            self.stats.local_hits += 1;
            return Ok(LoadOutcome {
                value,
                done_at: now + self.config.hit_cycles,
                source: DataSource::LocalHit,
            });
        }
        // Backing cache, then memory.
        let value = self.cache.read(addr);
        let line = self.config.cache_geometry.line_of(addr);
        if let Some(r) = self.resident.find(line) {
            self.resident.touch(r);
            self.stats.local_hits += 1;
            Ok(LoadOutcome {
                value,
                done_at: now + self.config.hit_cycles,
                source: DataSource::LocalHit,
            })
        } else {
            let r = self.resident.victim_way(line);
            *self.resident.slot_mut(r) = ResidentLine { line: Some(line) };
            self.resident.touch(r);
            self.stats.next_level_fills += 1;
            Ok(LoadOutcome {
                value,
                done_at: now + self.config.hit_cycles + self.config.memory_cycles,
                source: DataSource::NextLevel,
            })
        }
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        let task = self.task_of(pu)?;
        let is_head = self.assignments.head() == Some(pu);
        if !is_head && self.stores.len() >= self.config.store_entries {
            self.stats.replacement_stalls += 1;
            return Err(AccessError::Structural("store queue full"));
        }
        self.stats.stores += 1;
        self.stats.local_hits += 1;
        if is_head {
            // Non-speculative store: retire straight to the backing cache
            // (the head can never squash), keeping the head un-stallable.
            // Queued stores this task issued to the same address before it
            // became head are superseded in program order — drop them so
            // commit cannot replay an older value over this one.
            self.stores.retain(|e| !(e.task == task && e.addr == addr));
            self.cache.write(addr, value);
            let line = self.config.cache_geometry.line_of(addr);
            if self.resident.find(line).is_none() {
                let r = self.resident.victim_way(line);
                *self.resident.slot_mut(r) = ResidentLine { line: Some(line) };
                self.resident.touch(r);
            }
            self.stats.writebacks += 1;
        } else {
            self.seq += 1;
            self.stores.push(StoreEntry {
                task,
                seq: self.seq,
                addr,
                value,
            });
        }
        // Violation: the oldest younger load to this address without a
        // shielding store in between.
        let victim = self
            .loads
            .iter()
            .filter(|l| l.addr == addr && task.is_older_than(l.task))
            .filter(|l| {
                !self.stores.iter().any(|s| {
                    s.addr == addr && task.is_older_than(s.task) && s.task.is_older_than(l.task)
                })
            })
            .map(|l| l.task)
            .min();
        if victim.is_some() {
            self.stats.violations += 1;
        }
        Ok(StoreOutcome {
            done_at: now + self.config.hit_cycles,
            violation: victim.map(|victim| Violation { victim, addr }),
        })
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        let mut done = now + self.config.hit_cycles;
        if let Some(task) = self.assignments.task_of(pu) {
            // Retire this task's stores in arrival order: this is the
            // drain the paper calls out as a commit-time cost for shared
            // structures — each retiring store is a cache write.
            let mut retiring: Vec<StoreEntry> = self
                .stores
                .iter()
                .copied()
                .filter(|e| e.task == task)
                .collect();
            retiring.sort_by_key(|e| e.seq);
            for e in &retiring {
                self.cache.write(e.addr, e.value);
                let line = self.config.cache_geometry.line_of(e.addr);
                if self.resident.find(line).is_none() {
                    let r = self.resident.victim_way(line);
                    *self.resident.slot_mut(r) = ResidentLine { line: Some(line) };
                    self.resident.touch(r);
                }
                self.stats.writebacks += 1;
                done += 1; // one drain slot per store
            }
            self.stores.retain(|e| e.task != task);
            self.loads.retain(|l| l.task != task);
        }
        self.assignments.release(pu);
        done
    }

    fn squash(&mut self, pu: PuId) {
        if let Some(task) = self.assignments.task_of(pu) {
            let before = self.stores.len();
            self.stores.retain(|e| e.task != task);
            self.stats.squash_invalidations += (before - self.stores.len()) as u64;
            self.loads.retain(|l| l.task != task);
        }
        self.assignments.release(pu);
    }

    fn drain(&mut self) {
        // Committed state already lives in the backing store.
    }

    fn architectural(&self, addr: Addr) -> Word {
        self.cache.peek(addr)
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsq() -> LsqMemory {
        let mut m = LsqMemory::new(LsqConfig::default());
        for i in 0..4 {
            m.assign(PuId(i), TaskId(i as u64));
        }
        m
    }

    #[test]
    fn forwards_youngest_older_store() {
        let mut m = lsq();
        m.store(PuId(0), Addr(4), Word(10), Cycle(0)).unwrap();
        m.store(PuId(2), Addr(4), Word(30), Cycle(0)).unwrap();
        assert_eq!(m.load(PuId(1), Addr(4), Cycle(1)).unwrap().value, Word(10));
        assert_eq!(m.load(PuId(3), Addr(4), Cycle(1)).unwrap().value, Word(30));
        // Same-task double store: the later one wins.
        m.store(PuId(0), Addr(4), Word(11), Cycle(2)).unwrap();
        assert_eq!(m.load(PuId(1), Addr(4), Cycle(3)).unwrap().value, Word(11));
    }

    #[test]
    fn detects_violations_with_shielding() {
        let mut m = lsq();
        m.load(PuId(2), Addr(8), Cycle(0)).unwrap();
        let st = m.store(PuId(0), Addr(8), Word(1), Cycle(1)).unwrap();
        assert_eq!(st.violation.unwrap().victim, TaskId(2));
        // A version in between shields.
        let mut m = lsq();
        m.store(PuId(1), Addr(8), Word(7), Cycle(0)).unwrap();
        m.load(PuId(2), Addr(8), Cycle(1)).unwrap();
        let st = m.store(PuId(0), Addr(8), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn own_store_shields_own_load() {
        let mut m = lsq();
        m.store(PuId(2), Addr(8), Word(9), Cycle(0)).unwrap();
        assert_eq!(m.load(PuId(2), Addr(8), Cycle(1)).unwrap().value, Word(9));
        let st = m.store(PuId(0), Addr(8), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn capacity_stalls_speculative_tasks() {
        let cfg = LsqConfig {
            store_entries: 2,
            ..LsqConfig::default()
        };
        let mut m = LsqMemory::new(cfg);
        m.assign(PuId(0), TaskId(0)); // head: exempt from capacity
        m.assign(PuId(1), TaskId(1)); // speculative: bounded
        m.store(PuId(1), Addr(0), Word(1), Cycle(0)).unwrap();
        m.store(PuId(1), Addr(4), Word(2), Cycle(0)).unwrap();
        let e = m.store(PuId(1), Addr(8), Word(3), Cycle(0)).unwrap_err();
        assert!(matches!(e, AccessError::Structural(_)));
        assert_eq!(m.buffered_stores(), 2);
        // The head sails through regardless.
        m.store(PuId(0), Addr(8), Word(9), Cycle(1)).unwrap();
    }

    #[test]
    fn commit_drains_queued_stores_in_order_and_charges_time() {
        let mut m = lsq();
        // Task 1 is speculative: its stores queue.
        m.store(PuId(1), Addr(0), Word(1), Cycle(0)).unwrap();
        m.store(PuId(1), Addr(0), Word(2), Cycle(1)).unwrap();
        m.store(PuId(1), Addr(4), Word(3), Cycle(2)).unwrap();
        assert_eq!(m.buffered_stores(), 3);
        // Head (task 0) commits cheaply, then task 1's commit drains.
        m.commit(PuId(0), Cycle(5));
        let done = m.commit(PuId(1), Cycle(10));
        assert_eq!(done, Cycle(10) + 1 + 3, "port + one slot per store");
        assert_eq!(
            m.architectural(Addr(0)),
            Word(2),
            "program order within task"
        );
        assert_eq!(m.architectural(Addr(4)), Word(3));
        assert_eq!(m.buffered_stores(), 0);
    }

    #[test]
    fn squash_discards_buffered_state() {
        let mut m = lsq();
        m.store(PuId(2), Addr(0), Word(9), Cycle(0)).unwrap();
        m.load(PuId(3), Addr(4), Cycle(0)).unwrap();
        m.squash(PuId(2));
        m.squash(PuId(3));
        m.assign(PuId(2), TaskId(2));
        assert_eq!(
            m.load(PuId(2), Addr(0), Cycle(1)).unwrap().value,
            Word::ZERO
        );
        let st = m.store(PuId(0), Addr(4), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none(), "squashed load forgotten");
    }

    #[test]
    fn head_is_never_stalled_by_queue_capacity() {
        let cfg = LsqConfig {
            store_entries: 2,
            load_entries: 2,
            ..LsqConfig::default()
        };
        let mut m = LsqMemory::new(cfg);
        m.assign(PuId(0), TaskId(0)); // head
        for i in 0..10u64 {
            m.store(PuId(0), Addr(i), Word(i + 1), Cycle(i)).unwrap();
            m.load(PuId(0), Addr(i), Cycle(i)).unwrap();
        }
        assert_eq!(m.buffered_stores(), 0, "head stores retire directly");
        for i in 0..10u64 {
            assert_eq!(m.architectural(Addr(i)), Word(i + 1));
        }
    }

    #[test]
    fn becoming_head_mid_task_keeps_program_order() {
        let mut m = LsqMemory::new(LsqConfig::default());
        m.assign(PuId(0), TaskId(0));
        m.assign(PuId(1), TaskId(1));
        // Task 1 stores speculatively (queued)...
        m.store(PuId(1), Addr(4), Word(1), Cycle(0)).unwrap();
        // ...task 0 commits, making task 1 the head...
        m.commit(PuId(0), Cycle(1));
        // ...and task 1 overwrites the same address (direct).
        m.store(PuId(1), Addr(4), Word(2), Cycle(2)).unwrap();
        m.commit(PuId(1), Cycle(3));
        assert_eq!(
            m.architectural(Addr(4)),
            Word(2),
            "the queued older store must not replay over the newer one"
        );
    }

    #[test]
    fn miss_accounting_uses_line_residency() {
        let mut m = lsq();
        let a = m.load(PuId(0), Addr(0), Cycle(0)).unwrap();
        assert_eq!(a.source, DataSource::NextLevel);
        let b = m.load(PuId(1), Addr(1), Cycle(1)).unwrap();
        assert_eq!(b.source, DataSource::LocalHit, "same 4-word line");
        assert_eq!(m.stats().next_level_fills, 1);
    }
}
