//! End-to-end tests for the analyzer against *real* traced + profiled
//! runs of the SVC final design — not hand-built fixtures.
//!
//! Covers the observability guarantees the analyzer advertises:
//! byte-identical `svc-analysis/v1` output run-to-run and across
//! worker-thread counts (the in-process mirror of
//! `SVC_EXPERIMENT_THREADS=1/2/8`), the JSONL round trip, the
//! self-contained HTML report, and the conservation property that
//! cascade cost never exceeds the profiler's `wasted_exec +
//! squash_recovery` stall buckets for the same run.

use svc::{SvcConfig, SvcSystem};
use svc_analyze::analysis::{render_text, AnalyzeConfig};
use svc_analyze::input::parse_trace_jsonl;
use svc_analyze::{analyze_records, html};
use svc_bench::report::Json;
use svc_multiscalar::{Engine, EngineConfig};
use svc_sim::profile::{ProfileReport, Profiler};
use svc_sim::trace::{render_jsonl, Category, Record, Tracer};
use svc_workloads::kernels;

const PUS: usize = 4;
const EPOCH: u64 = 1024;

/// One pinned cell: the false-sharing kernel on the 4x8KB final design,
/// fully traced and profiled. Everything downstream of this is a pure
/// function of (seed, budget).
fn traced_run(seed: u64, budget: u64) -> (Vec<Record>, ProfileReport) {
    let tracer = Tracer::new(Category::ALL, 1 << 20);
    let profiler = Profiler::new(PUS, EPOCH);
    let mut svc_cfg = SvcConfig::final_design(PUS);
    svc_cfg.geometry = SvcConfig::paper_geometry(8);
    let mut system = SvcSystem::new(svc_cfg);
    system.set_tracer(tracer.clone());
    system.set_profiler(profiler.clone());
    let engine_cfg = EngineConfig {
        num_pus: PUS,
        max_instructions: budget,
        seed,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg, system);
    engine.set_tracer(tracer.clone());
    engine.set_profiler(profiler.clone());
    let source = kernels::false_sharing(256, 6);
    let _report = engine.run(&source);
    let profile = profiler.report().expect("profiler ran to completion");
    (tracer.records(), profile)
}

fn doc_bytes(seed: u64, budget: u64) -> String {
    let (records, profile) = traced_run(seed, budget);
    analyze_records(&records, 0, Some(&profile), &AnalyzeConfig::default()).render()
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing key {key}"));
    }
    cur.as_f64().expect("numeric leaf")
}

#[test]
fn analysis_doc_is_byte_identical_across_runs_and_thread_counts() {
    let golden = doc_bytes(7, 4000);
    assert!(golden.contains("\"schema\": \"svc-analysis/v1\""));

    // Repeat the identical cell from pools of 1, 2 and 8 worker
    // threads — the in-process equivalent of running the experiment
    // grid at SVC_EXPERIMENT_THREADS=1/2/8. Every worker must produce
    // the golden bytes regardless of scheduling.
    for workers in [1usize, 2, 8] {
        let handles: Vec<_> = (0..workers)
            .map(|_| std::thread::spawn(|| doc_bytes(7, 4000)))
            .collect();
        for h in handles {
            let got = h.join().expect("worker panicked");
            assert_eq!(got, golden, "analysis diverged at {workers} workers");
        }
    }
}

#[test]
fn jsonl_round_trip_preserves_every_analysis_section() {
    let (records, profile) = traced_run(11, 4000);
    let jsonl = render_jsonl(&records);
    let loaded = parse_trace_jsonl(&jsonl);
    assert_eq!(
        loaded.records.len() as u64 + loaded.skipped,
        records.len() as u64,
        "reader must account for every trace line"
    );

    // Unmodeled categories may be skipped, but every *analysis* section
    // is computed from modeled events only, so the offline path must
    // agree exactly with the in-process path.
    let cfg = AnalyzeConfig::default();
    let direct = analyze_records(&records, 0, Some(&profile), &cfg);
    let offline = analyze_records(&loaded.records, loaded.skipped, Some(&profile), &cfg);
    for section in ["cascades", "lifetimes", "contention", "conservation"] {
        let a = direct.get(section).expect(section).render();
        let b = offline.get(section).expect(section).render();
        assert_eq!(
            a, b,
            "section {section} changed across the JSONL round trip"
        );
    }
}

#[test]
fn html_report_is_self_contained_with_expected_anchors() {
    let (records, profile) = traced_run(3, 3000);
    let doc = analyze_records(&records, 0, Some(&profile), &AnalyzeConfig::default());
    let page = html::render_html(&doc, "integration smoke");

    assert!(page.starts_with("<!DOCTYPE html>"));
    assert!(page.trim_end().ends_with("</html>"));
    for anchor in [
        "id=\"summary\"",
        "id=\"cascades\"",
        "id=\"lifetimes\"",
        "id=\"contention\"",
        "id=\"conservation\"",
    ] {
        assert!(page.contains(anchor), "missing anchor {anchor}");
    }
    assert!(page.contains("<svg"), "report should inline SVG charts");
    assert!(page.contains("<table"), "report should inline tables");
    // Self-contained: no external stylesheets, scripts or images.
    for banned in ["http://", "https://", "<script", "<link", "<img"] {
        assert!(!page.contains(banned), "external asset marker {banned:?}");
    }

    // The text renderer covers the same document.
    let text = render_text(&doc);
    for heading in ["cascade", "lifetime", "contention"] {
        assert!(
            text.to_lowercase().contains(heading),
            "text report missing {heading} section"
        );
    }
}

#[test]
fn cascade_cost_is_bounded_by_profiler_stall_buckets() {
    // Property, over several seeds of a violation-heavy kernel: the
    // analyzer's cascade cost (re-executed work + recovery blackout)
    // can never exceed what the profiler charged to the same two stall
    // buckets. Equality is allowed; exceeding it would mean the
    // analyzer invented wasted cycles the machine never spent.
    let mut total_cascades = 0.0;
    for seed in [1u64, 2, 5, 11, 42] {
        let (records, profile) = traced_run(seed, 5000);
        let doc = analyze_records(&records, 0, Some(&profile), &AnalyzeConfig::default());

        let cost = num(&doc, &["cascades", "total_cost"]);
        let bound = num(&doc, &["conservation", "bound"]);
        let wasted = num(&doc, &["conservation", "wasted_exec_bucket"]);
        let recovery = num(&doc, &["conservation", "squash_recovery_bucket"]);
        assert_eq!(bound, wasted + recovery);
        assert!(
            cost <= bound,
            "seed {seed}: cascade cost {cost} exceeds profiler bound {bound}"
        );
        assert_eq!(
            doc.get("conservation").and_then(|c| c.get("within_bound")),
            Some(&Json::Bool(true))
        );
        total_cascades += num(&doc, &["cascades", "count"]);
    }
    // The kernel is built to violate: the property must not pass
    // vacuously on squash-free runs.
    assert!(
        total_cascades > 0.0,
        "expected at least one squash cascade across the seed sweep"
    );
}
