//! Self-contained HTML rendering of `svc-analysis/v1` documents: one
//! file, inline CSS and inline SVG, no external assets, so the report
//! can be archived next to the run artifacts and opened anywhere.

use svc_bench::report::Json;
use svc_sim::forensics::LIFETIME_STATES;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(0.0)
}

fn int(v: Option<&Json>) -> u64 {
    num(v) as u64
}

/// A horizontal bar chart as inline SVG: one bar per `(label, value)`.
fn svg_bars(rows: &[(String, u64)], unit: &str) -> String {
    use std::fmt::Write as _;
    if rows.is_empty() {
        return String::new();
    }
    let max = rows.iter().map(|r| r.1).max().unwrap_or(0).max(1);
    let bar_h = 18;
    let gap = 4;
    let label_w = 180;
    let chart_w = 420;
    let h = rows.len() * (bar_h + gap);
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" role=\"img\">",
        w = label_w + chart_w + 80,
    );
    for (i, (label, value)) in rows.iter().enumerate() {
        let y = i * (bar_h + gap);
        let w = (*value as u128 * chart_w as u128 / max as u128) as u64;
        let _ = write!(
            out,
            "<text x=\"{lx}\" y=\"{ty}\" text-anchor=\"end\" class=\"lbl\">{label}</text>\
             <rect x=\"{bx}\" y=\"{y}\" width=\"{w}\" height=\"{bar_h}\" class=\"bar\"/>\
             <text x=\"{vx}\" y=\"{ty}\" class=\"val\">{value}{unit}</text>",
            lx = label_w - 6,
            ty = y + bar_h - 4,
            bx = label_w,
            vx = label_w + w as usize + 6,
            label = esc(label),
        );
    }
    out.push_str("</svg>");
    out
}

/// The contention heatmap as inline SVG: epochs on x, address sets on
/// y, cell darkness proportional to bus-busy cycles.
fn svg_heatmap(cells: &[Json]) -> String {
    use std::fmt::Write as _;
    if cells.is_empty() {
        return String::new();
    }
    let mut max_busy = 1u64;
    let mut max_set = 0u64;
    let mut max_epoch = 0u64;
    for c in cells {
        max_busy = max_busy.max(int(c.get("busy")));
        max_set = max_set.max(int(c.get("set")));
        max_epoch = max_epoch.max(int(c.get("epoch")));
    }
    let cell = 12u64;
    let w = (max_epoch + 1) * cell + 60;
    let h = (max_set + 1) * cell + 20;
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" role=\"img\">"
    );
    for c in cells {
        let busy = int(c.get("busy"));
        let x = int(c.get("epoch")) * cell + 40;
        let y = int(c.get("set")) * cell;
        // 9 shades, darkest = hottest.
        let shade = 0xe8u64.saturating_sub(busy * 0xc0 / max_busy);
        let _ = write!(
            out,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{cell}\" height=\"{cell}\" \
             fill=\"rgb({shade},{shade},255)\"><title>set {s} epoch {e}: {busy} busy cycles\
             </title></rect>",
            s = int(c.get("set")),
            e = int(c.get("epoch")),
        );
    }
    let _ = write!(
        out,
        "<text x=\"0\" y=\"12\" class=\"lbl\">set</text>\
         <text x=\"40\" y=\"{ty}\" class=\"lbl\">epoch &rarr;</text></svg>",
        ty = h - 4
    );
    out
}

fn table_open(out: &mut String, headers: &[&str]) {
    out.push_str("<table><thead><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", esc(h)));
    }
    out.push_str("</tr></thead><tbody>");
}

fn table_row(out: &mut String, cells: &[String]) {
    out.push_str("<tr>");
    for c in cells {
        out.push_str(&format!("<td>{}</td>", esc(c)));
    }
    out.push_str("</tr>");
}

fn cascade_html(out: &mut String, doc: &Json) {
    use std::fmt::Write as _;
    let Some(c) = doc.get("cascades") else { return };
    let _ = write!(
        out,
        "<section id=\"cascades\"><h2>Squash cascades</h2>\
         <p>{count} cascades from {chains} violation chains: \
         <b>{wasted}</b> wasted-execution + <b>{rec}</b> recovery \
         = <b>{cost}</b> PU-cycles attributed.</p>",
        count = int(c.get("count")),
        chains = int(c.get("chains")),
        wasted = int(c.get("wasted_exec_cycles")),
        rec = int(c.get("recovery_cycles")),
        cost = int(c.get("total_cost")),
    );
    let ranked = c.get("ranked").and_then(Json::as_arr).unwrap_or(&[]);
    let bars: Vec<(String, u64)> = ranked
        .iter()
        .map(|g| {
            (
                format!(
                    "cycle {} line {}",
                    int(g.get("root_cycle")),
                    int(g.get("line"))
                ),
                int(g.get("total_cost")),
            )
        })
        .collect();
    out.push_str(&svg_bars(&bars, " cyc"));
    if !ranked.is_empty() {
        table_open(
            out,
            &[
                "#",
                "root cycle",
                "addr",
                "line",
                "chains",
                "wasted",
                "recovery",
                "cost",
            ],
        );
        for (i, g) in ranked.iter().enumerate() {
            table_row(
                out,
                &[
                    format!("{}", i + 1),
                    int(g.get("root_cycle")).to_string(),
                    int(g.get("addr")).to_string(),
                    int(g.get("line")).to_string(),
                    int(g.get("members")).to_string(),
                    int(g.get("wasted_exec_cycles")).to_string(),
                    int(g.get("recovery_cycles")).to_string(),
                    int(g.get("total_cost")).to_string(),
                ],
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
}

fn lifetime_html(out: &mut String, doc: &Json) {
    use std::fmt::Write as _;
    let Some(l) = doc.get("lifetimes") else {
        return;
    };
    let totals = l.get("totals");
    let _ = write!(
        out,
        "<section id=\"lifetimes\"><h2>Version lifetimes</h2>\
         <p>{lines} lines: {vol} VOL events ({sp} splices, {pu} purges), \
         {sn} snarfs, {fr} flash reverts, up to {mv} live versions.</p>",
        lines = int(l.get("lines_seen")),
        vol = int(totals.and_then(|t| t.get("vol_events"))),
        sp = int(totals.and_then(|t| t.get("splices"))),
        pu = int(totals.and_then(|t| t.get("purges"))),
        sn = int(totals.and_then(|t| t.get("snarfs"))),
        fr = int(totals.and_then(|t| t.get("flash_reverts"))),
        mv = int(totals.and_then(|t| t.get("max_versions"))),
    );
    let lines = l.get("lines").and_then(Json::as_arr).unwrap_or(&[]);
    if !lines.is_empty() {
        let mut headers = vec!["line"];
        headers.extend(LIFETIME_STATES);
        headers.extend(["load cyc", "store cyc", "max ver", "vol", "snarf", "revert"]);
        table_open(out, &headers);
        for row in lines {
            let states = row.get("states");
            let mut cells = vec![int(row.get("line")).to_string()];
            for s in LIFETIME_STATES {
                cells.push(int(states.and_then(|st| st.get(s))).to_string());
            }
            for k in [
                "load_cycles",
                "store_cycles",
                "max_versions",
                "vol_events",
                "snarfs",
                "flash_reverts",
            ] {
                cells.push(int(row.get(k)).to_string());
            }
            table_row(out, &cells);
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
}

fn contention_html(out: &mut String, doc: &Json) {
    use std::fmt::Write as _;
    let Some(c) = doc.get("contention") else {
        return;
    };
    let _ = write!(
        out,
        "<section id=\"contention\"><h2>Bus contention</h2>\
         <p>{ops} transactions, {busy} bus-busy cycles, binned by \
         address set &times; {epoch}-cycle profiler epoch.</p>",
        ops = int(c.get("transactions")),
        busy = int(c.get("bus_busy_cycles")),
        epoch = int(c.get("epoch")),
    );
    out.push_str(&svg_heatmap(
        c.get("cells").and_then(Json::as_arr).unwrap_or(&[]),
    ));
    let pus = c.get("per_pu").and_then(Json::as_arr).unwrap_or(&[]);
    if !pus.is_empty() {
        let with_wait = pus[0].get("bus_wait").is_some();
        let mut headers = vec!["pu", "busy cycles", "transactions"];
        if with_wait {
            headers.push("attributed bus wait");
        }
        table_open(out, &headers);
        for p in pus {
            let mut cells = vec![
                format!("pu{}", int(p.get("pu"))),
                int(p.get("busy")).to_string(),
                int(p.get("ops")).to_string(),
            ];
            if with_wait {
                cells.push(int(p.get("bus_wait")).to_string());
            }
            table_row(out, &cells);
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
}

fn conservation_html(out: &mut String, doc: &Json) {
    use std::fmt::Write as _;
    let Some(cv) = doc.get("conservation") else {
        return;
    };
    let ok = matches!(cv.get("within_bound"), Some(Json::Bool(true)));
    let _ = write!(
        out,
        "<section id=\"conservation\"><h2>Conservation</h2>\
         <p class=\"{cls}\">cascade cost {cost} &le; wasted_exec {we} + \
         squash_recovery {sr} = {bound} &mdash; {verdict}</p></section>",
        cls = if ok { "ok" } else { "bad" },
        cost = int(cv.get("cascade_cost")),
        we = int(cv.get("wasted_exec_bucket")),
        sr = int(cv.get("squash_recovery_bucket")),
        bound = int(cv.get("bound")),
        verdict = if ok { "OK" } else { "VIOLATED" },
    );
}

fn compare_html(out: &mut String, doc: &Json) {
    use std::fmt::Write as _;
    let Some(c) = doc.get("compare") else { return };
    let label = |side: &str| {
        c.get(side)
            .and_then(|s| s.get("label"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let _ = write!(
        out,
        "<section id=\"compare\"><h2>Run comparison</h2>\
         <p>a = <code>{a}</code> &nbsp; b = <code>{b}</code></p>",
        a = esc(&label("a")),
        b = esc(&label("b")),
    );
    for f in c.get("findings").and_then(Json::as_arr).unwrap_or(&[]) {
        let _ = write!(
            out,
            "<p class=\"bad\">{}</p>",
            esc(f.as_str().unwrap_or("?"))
        );
    }
    for run in c.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
        let _ = write!(
            out,
            "<h3>{}</h3>",
            esc(run.get("key").and_then(Json::as_str).unwrap_or("?"))
        );
        table_open(out, &["metric", "a", "b", "delta"]);
        if let Some(metrics) = run.get("metrics").and_then(Json::as_obj) {
            for (name, m) in metrics {
                let g = |k: &str| num(m.get(k));
                table_row(
                    out,
                    &[
                        name.clone(),
                        format!("{}", g("a")),
                        format!("{}", g("b")),
                        format!("{}", g("delta")),
                    ],
                );
            }
        }
        out.push_str("</tbody></table>");
    }
    if let Some(buckets) = c.get("buckets").and_then(Json::as_obj) {
        out.push_str("<h3>Profiler buckets</h3>");
        table_open(out, &["bucket", "a", "b", "delta"]);
        for (name, m) in buckets {
            let g = |k: &str| num(m.get(k));
            table_row(
                out,
                &[
                    name.clone(),
                    format!("{}", g("a")),
                    format!("{}", g("b")),
                    format!("{}", g("delta")),
                ],
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
}

/// Renders an `svc-analysis/v1` document (analysis or comparison) as a
/// single self-contained HTML page.
pub fn render_html(doc: &Json, title: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#1a1a2e}}\
         h1,h2{{border-bottom:1px solid #ccd;padding-bottom:.2rem}}\
         table{{border-collapse:collapse;margin:.8rem 0}}\
         th,td{{border:1px solid #ccd;padding:.2rem .6rem;text-align:right}}\
         th:first-child,td:first-child{{text-align:left}}\
         .bar{{fill:#4a6fa5}}.lbl{{font-size:11px;fill:#555}}.val{{font-size:11px;fill:#333}}\
         .ok{{color:#176b37}}.bad{{color:#a11c1c}}\
         code{{background:#eef;padding:0 .3rem}}\
         </style></head><body><h1>{title}</h1>",
        title = esc(title),
    );
    if let Some(t) = doc.get("trace") {
        let _ = write!(
            out,
            "<p id=\"summary\">{ev} trace events to cycle {end} \
             ({wpl} words/line, {sets} address sets).</p>",
            ev = int(t.get("events")),
            end = int(t.get("end_cycle")),
            wpl = int(t.get("words_per_line")),
            sets = int(t.get("sets")),
        );
    }
    cascade_html(&mut out, doc);
    lifetime_html(&mut out, doc);
    contention_html(&mut out, doc);
    conservation_html(&mut out, doc);
    compare_html(&mut out, doc);
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_markup() {
        assert_eq!(esc("<a&b>\"c'"), "&lt;a&amp;b&gt;&quot;c&#39;");
    }

    #[test]
    fn bars_scale_to_max() {
        let svg = svg_bars(&[("x".into(), 10), ("y".into(), 5)], "");
        assert!(svg.contains("width=\"420\""), "{svg}");
        assert!(svg.contains("width=\"210\""), "{svg}");
    }
}
