//! Offline analytics over the harness's run artifacts: trace JSONL,
//! `svc-profile/v1` profiles and experiment/run result documents.
//!
//! Three analyses, all pure functions producing deterministic
//! `svc-analysis/v1` JSON (see [`analysis::analyze`]):
//!
//! - **Squash-cascade attribution** — [`svc_sim::forensics`]'s violation
//!   chains grouped into cascade trees (a squash that re-triggers
//!   violations joins its trigger's cascade), each costed in PU-cycles
//!   of re-executed work plus recovery blackout.
//! - **Version lifetimes** — per-line time in the paper's five
//!   line states (`I`/`AC`/`AD`/`PC`/`PD`), live-version counts, VOL
//!   splice/purge churn, snarfs and flash reverts.
//! - **Bus contention** — bus-busy cycles binned by address set ×
//!   profiler epoch, with the profiler's `bus_wait` bucket attributed
//!   proportionally to each bin's occupancy.
//!
//! [`compare`] diffs two runs (or whole experiment documents) and
//! explains metric deltas via stall-bucket and squash-structure shifts;
//! [`html`] renders any document as one self-contained HTML page.
//!
//! The `svc-analyze` binary fronts all of this; `svc-sim run --analyze`
//! calls [`analyze_records`] in-process on the trace it just captured.

pub mod analysis;
pub mod compare;
pub mod html;
pub mod input;

use svc_bench::report::Json;
use svc_sim::profile::ProfileReport;
use svc_sim::trace::Record;

/// In-process entry point: analyze already-decoded trace records with
/// an optional live profile (no JSON round trip).
pub fn analyze_records(
    records: &[Record],
    skipped: u64,
    profile: Option<&ProfileReport>,
    cfg: &analysis::AnalyzeConfig,
) -> Json {
    let join = profile.map(input::ProfileJoin::from_report);
    analysis::analyze(records, skipped, join.as_ref(), cfg)
}
