//! The analyses themselves: squash-cascade attribution, version-lifetime
//! accounting, bus-contention heatmaps, and the conservation check that
//! ties cascade costs back to the profiler's stall buckets.
//!
//! Everything here is a pure function from trace records (plus an
//! optional profile join) to a deterministic `svc-analysis/v1` JSON
//! document — byte-identical output for identical inputs, so the
//! documents can be diffed and golden-tested.

use std::collections::BTreeMap;

use svc_bench::report::{Json, SCHEMA_ANALYSIS};
use svc_sim::forensics::{self, LIFETIME_STATES};
use svc_sim::profile::{Bucket, DEFAULT_EPOCH};
use svc_sim::table::Table;
use svc_sim::trace::{Record, TraceEvent};

use crate::input::ProfileJoin;

/// Default line geometry when no `--wpl` override is given (the paper
/// configuration's 32-byte lines).
pub const DEFAULT_WORDS_PER_LINE: u64 = 8;
/// Default address-set count for the contention heatmap.
pub const DEFAULT_SETS: u64 = 64;
/// Cascades serialized in full detail, ranked by total cost.
pub const RANKED_CASCADES: usize = 32;
/// Member chains detailed per ranked cascade.
pub const CHAIN_DETAIL: usize = 8;
/// Lifetime rows serialized (the busiest lines by VOL activity).
pub const LIFETIME_TOP_N: usize = 64;

/// Knobs for [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeConfig {
    /// Words per cache line (address → line mapping).
    pub words_per_line: u64,
    /// Address sets for the contention heatmap (`line % sets`).
    pub sets: u64,
}

impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig {
            words_per_line: DEFAULT_WORDS_PER_LINE,
            sets: DEFAULT_SETS,
        }
    }
}

/// The last simulated cycle the trace is evidence for: the profile's
/// cycle count when available, otherwise the latest completion time any
/// record mentions.
fn end_cycle(records: &[Record], profile: Option<&ProfileJoin>) -> u64 {
    if let Some(p) = profile {
        if p.cycles > 0 {
            return p.cycles;
        }
    }
    let mut end = 0;
    for r in records {
        end = end.max(r.cycle);
        match &r.event {
            TraceEvent::BusTransaction { done, .. } => end = end.max(done.0),
            TraceEvent::Access { done_at, .. } => end = end.max(done_at.0),
            TraceEvent::TaskSquash { until, .. } => end = end.max(until.0),
            _ => {}
        }
    }
    end
}

fn cascade_section(records: &[Record], cfg: &AnalyzeConfig, end: u64) -> (Json, u64) {
    let chains = forensics::squash_chains(records, cfg.words_per_line);
    let costs = forensics::chain_costs(records, &chains, end);
    let groups = forensics::cascades(&chains, &costs);

    let mut wasted = 0u64;
    let mut recovery = 0u64;
    for g in &groups {
        wasted += g.wasted_exec_cycles;
        recovery += g.recovery_cycles;
    }
    let total = wasted + recovery;

    let mut ranked = Vec::new();
    for g in groups.iter().take(RANKED_CASCADES) {
        let root = &chains[g.members[0]];
        let mut members = Vec::new();
        for &i in g.members.iter().take(CHAIN_DETAIL) {
            let c = &chains[i];
            members.push(
                Json::obj()
                    .set("cycle", c.cycle.into())
                    .set("addr", c.addr.0.into())
                    .set("line", c.line.0.into())
                    .set("store_pu", (c.store_pu.0 as u64).into())
                    .set("store_task", c.store_task.0.into())
                    .set("victim", c.victim.0.into())
                    .set(
                        "squashed",
                        Json::Arr(c.squashed.iter().map(|(_, t)| t.0.into()).collect()),
                    ),
            );
        }
        ranked.push(
            Json::obj()
                .set("root_cycle", root.cycle.into())
                .set("addr", root.addr.0.into())
                .set("line", root.line.0.into())
                .set("members", (g.members.len() as u64).into())
                .set("wasted_exec_cycles", g.wasted_exec_cycles.into())
                .set("recovery_cycles", g.recovery_cycles.into())
                .set("total_cost", g.total_cost().into())
                .set("chains", Json::Arr(members)),
        );
    }

    let section = Json::obj()
        .set("chains", (chains.len() as u64).into())
        .set("count", (groups.len() as u64).into())
        .set("wasted_exec_cycles", wasted.into())
        .set("recovery_cycles", recovery.into())
        .set("total_cost", total.into())
        .set("ranked", Json::Arr(ranked));
    (section, total)
}

fn lifetime_section(records: &[Record], end: u64) -> Json {
    let mut lifetimes = forensics::line_lifetimes(records, end);
    // Busiest lines first (VOL churn, then sheer occupancy), line id as
    // the deterministic tiebreak.
    lifetimes.sort_by(|a, b| {
        let act = |l: &forensics::LineLifetime| (l.vol_events, l.load_cycles + l.store_cycles);
        act(b).cmp(&act(a)).then(a.line.0.cmp(&b.line.0))
    });

    let mut totals = forensics::LineLifetime::default();
    for l in &lifetimes {
        totals.vol_events += l.vol_events;
        totals.splices += l.splices;
        totals.purges += l.purges;
        totals.snarfs += l.snarfs;
        totals.flash_reverts += l.flash_reverts;
        totals.version_sum += l.version_sum;
        totals.max_versions = totals.max_versions.max(l.max_versions);
    }

    let row = |l: &forensics::LineLifetime| {
        let mut states = Json::obj();
        for (name, cycles) in LIFETIME_STATES.iter().zip(l.state_cycles) {
            states = states.set(name, cycles.into());
        }
        Json::obj()
            .set("line", l.line.0.into())
            .set("states", states)
            .set("load_cycles", l.load_cycles.into())
            .set("store_cycles", l.store_cycles.into())
            .set("stale_cycles", l.stale_cycles.into())
            .set("max_versions", l.max_versions.into())
            .set(
                "avg_versions",
                if l.vol_events > 0 {
                    (l.version_sum as f64 / l.vol_events as f64).into()
                } else {
                    Json::Num(0.0)
                },
            )
            .set("vol_events", l.vol_events.into())
            .set("splices", l.splices.into())
            .set("purges", l.purges.into())
            .set("snarfs", l.snarfs.into())
            .set("flash_reverts", l.flash_reverts.into())
    };

    Json::obj()
        .set("lines_seen", (lifetimes.len() as u64).into())
        .set(
            "totals",
            Json::obj()
                .set("vol_events", totals.vol_events.into())
                .set("splices", totals.splices.into())
                .set("purges", totals.purges.into())
                .set("snarfs", totals.snarfs.into())
                .set("flash_reverts", totals.flash_reverts.into())
                .set("max_versions", totals.max_versions.into()),
        )
        .set(
            "lines",
            Json::Arr(lifetimes.iter().take(LIFETIME_TOP_N).map(row).collect()),
        )
}

fn contention_section(
    records: &[Record],
    cfg: &AnalyzeConfig,
    profile: Option<&ProfileJoin>,
) -> Json {
    let epoch = profile
        .map(|p| p.epoch)
        .filter(|&e| e > 0)
        .unwrap_or(DEFAULT_EPOCH);

    // (set, epoch-index) -> (busy cycles, transactions)
    let mut cells: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
    let mut per_pu: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut total_busy = 0u64;
    let mut total_ops = 0u64;
    let mut unattributed_busy = 0u64;
    for r in records {
        let TraceEvent::BusTransaction {
            pu,
            line,
            start,
            done,
            ..
        } = &r.event
        else {
            continue;
        };
        let busy = done.0.saturating_sub(start.0);
        total_busy += busy;
        total_ops += 1;
        if let Some(p) = pu {
            let e = per_pu.entry(p.0 as u64).or_default();
            e.0 += busy;
            e.1 += 1;
        }
        match line {
            Some(l) => {
                let cell = cells.entry((l.0 % cfg.sets, start.0 / epoch)).or_default();
                cell.0 += busy;
                cell.1 += 1;
            }
            None => unattributed_busy += busy,
        }
    }

    // Attribute the profiler's bus_wait bucket to cells proportionally
    // to their share of occupancy: a cell that kept the bus busy for a
    // third of all busy cycles is charged a third of the waiting.
    let bus_wait = profile.map(|p| p.total(Bucket::BusWait));
    let wait_share = |busy: u64| -> Option<u64> {
        let wait = bus_wait?;
        if total_busy == 0 {
            return Some(0);
        }
        Some((wait as u128 * busy as u128 / total_busy as u128) as u64)
    };

    let cell_rows: Vec<Json> = cells
        .iter()
        .map(|(&(set, epoch_idx), &(busy, ops))| {
            let mut row = Json::obj()
                .set("set", set.into())
                .set("epoch", epoch_idx.into())
                .set("busy", busy.into())
                .set("ops", ops.into());
            if let Some(w) = wait_share(busy) {
                row = row.set("bus_wait", w.into());
            }
            row
        })
        .collect();
    let pu_rows: Vec<Json> = per_pu
        .iter()
        .map(|(&pu, &(busy, ops))| {
            let mut row = Json::obj()
                .set("pu", pu.into())
                .set("busy", busy.into())
                .set("ops", ops.into());
            if let Some(w) = wait_share(busy) {
                row = row.set("bus_wait", w.into());
            }
            row
        })
        .collect();

    let mut section = Json::obj()
        .set("epoch", epoch.into())
        .set("sets", cfg.sets.into())
        .set("transactions", total_ops.into())
        .set("bus_busy_cycles", total_busy.into());
    if unattributed_busy > 0 {
        section = section.set("unattributed_busy", unattributed_busy.into());
    }
    if let Some(wait) = bus_wait {
        section = section.set("bus_wait_cycles", wait.into());
    }
    section
        .set("cells", Json::Arr(cell_rows))
        .set("per_pu", Json::Arr(pu_rows))
}

/// Runs every analysis over a trace and serializes the results as a
/// `svc-analysis/v1` document.
pub fn analyze(
    records: &[Record],
    skipped: u64,
    profile: Option<&ProfileJoin>,
    cfg: &AnalyzeConfig,
) -> Json {
    let end = end_cycle(records, profile);
    let (cascades, cascade_cost) = cascade_section(records, cfg, end);

    let mut trace_meta = Json::obj()
        .set("events", (records.len() as u64).into())
        .set("end_cycle", end.into())
        .set("words_per_line", cfg.words_per_line.into())
        .set("sets", cfg.sets.into());
    if skipped > 0 {
        trace_meta = trace_meta.set("skipped_lines", skipped.into());
    }

    let mut doc = Json::obj()
        .set("schema", SCHEMA_ANALYSIS.into())
        .set("trace", trace_meta)
        .set("cascades", cascades)
        .set("lifetimes", lifetime_section(records, end))
        .set("contention", contention_section(records, cfg, profile));

    if let Some(p) = profile {
        // Every cascade's cost is a lower bound on the cycles the
        // profiler binned as wasted execution + squash recovery; the
        // sum over all cascades must stay under the bucket totals.
        let wasted = p.total(Bucket::WastedExec);
        let recovery = p.total(Bucket::SquashRecovery);
        let bound = wasted + recovery;
        doc = doc.set(
            "conservation",
            Json::obj()
                .set("cascade_cost", cascade_cost.into())
                .set("wasted_exec_bucket", wasted.into())
                .set("squash_recovery_bucket", recovery.into())
                .set("bound", bound.into())
                .set("within_bound", (cascade_cost <= bound).into()),
        );
    }
    doc
}

fn f(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(0.0)
}

fn n(v: Option<&Json>) -> u64 {
    f(v) as u64
}

/// Renders an `svc-analysis/v1` document as text tables (the non-`--json`
/// output of `svc-analyze trace` / `report`).
pub fn render_text(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    if let Some(t) = doc.get("trace") {
        let _ = writeln!(
            out,
            "trace      {} events, end cycle {}, {} words/line, {} sets",
            n(t.get("events")),
            n(t.get("end_cycle")),
            n(t.get("words_per_line")),
            n(t.get("sets")),
        );
    }

    if let Some(c) = doc.get("cascades") {
        let _ = writeln!(
            out,
            "cascades   {} (from {} squash chains): {} wasted-exec + {} recovery = {} cycles",
            n(c.get("count")),
            n(c.get("chains")),
            n(c.get("wasted_exec_cycles")),
            n(c.get("recovery_cycles")),
            n(c.get("total_cost")),
        );
        let ranked = c.get("ranked").and_then(Json::as_arr).unwrap_or(&[]);
        if !ranked.is_empty() {
            let mut table = Table::new(vec![
                "#".into(),
                "root cycle".into(),
                "addr".into(),
                "line".into(),
                "chains".into(),
                "wasted".into(),
                "recovery".into(),
                "cost".into(),
            ]);
            for (i, g) in ranked.iter().enumerate() {
                table.row(vec![
                    format!("{}", i + 1),
                    n(g.get("root_cycle")).to_string(),
                    n(g.get("addr")).to_string(),
                    n(g.get("line")).to_string(),
                    n(g.get("members")).to_string(),
                    n(g.get("wasted_exec_cycles")).to_string(),
                    n(g.get("recovery_cycles")).to_string(),
                    n(g.get("total_cost")).to_string(),
                ]);
            }
            out.push_str(&table.render());
        }
    }

    if let Some(l) = doc.get("lifetimes") {
        let totals = l.get("totals");
        let _ = writeln!(
            out,
            "lifetimes  {} lines: {} VOL events ({} splices, {} purges), {} snarfs, {} flash reverts, max {} versions",
            n(l.get("lines_seen")),
            n(totals.and_then(|t| t.get("vol_events"))),
            n(totals.and_then(|t| t.get("splices"))),
            n(totals.and_then(|t| t.get("purges"))),
            n(totals.and_then(|t| t.get("snarfs"))),
            n(totals.and_then(|t| t.get("flash_reverts"))),
            n(totals.and_then(|t| t.get("max_versions"))),
        );
        let lines = l.get("lines").and_then(Json::as_arr).unwrap_or(&[]);
        if !lines.is_empty() {
            let mut head = vec!["line".to_string()];
            head.extend(LIFETIME_STATES.iter().map(|s| s.to_string()));
            head.extend(
                ["load cyc", "store cyc", "max ver", "vol", "snarf", "revert"]
                    .iter()
                    .map(|s| s.to_string()),
            );
            let mut table = Table::new(head);
            for row in lines {
                let states = row.get("states");
                let mut cells = vec![n(row.get("line")).to_string()];
                cells.extend(
                    LIFETIME_STATES
                        .iter()
                        .map(|s| n(states.and_then(|st| st.get(s))).to_string()),
                );
                cells.push(n(row.get("load_cycles")).to_string());
                cells.push(n(row.get("store_cycles")).to_string());
                cells.push(n(row.get("max_versions")).to_string());
                cells.push(n(row.get("vol_events")).to_string());
                cells.push(n(row.get("snarfs")).to_string());
                cells.push(n(row.get("flash_reverts")).to_string());
                table.row(cells);
            }
            out.push_str(&table.render());
        }
    }

    if let Some(c) = doc.get("contention") {
        let _ = writeln!(
            out,
            "contention {} bus transactions, {} busy cycles (epoch {}, {} sets)",
            n(c.get("transactions")),
            n(c.get("bus_busy_cycles")),
            n(c.get("epoch")),
            n(c.get("sets")),
        );
        let cells = c.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
        if !cells.is_empty() {
            let with_wait = cells[0].get("bus_wait").is_some();
            let mut head = vec![
                "set".to_string(),
                "epoch".to_string(),
                "busy".to_string(),
                "ops".to_string(),
            ];
            if with_wait {
                head.push("bus wait".to_string());
            }
            let mut table = Table::new(head);
            // Hottest cells first in the text view; the document itself
            // stays in (set, epoch) order for diffing.
            let mut sorted: Vec<&Json> = cells.iter().collect();
            sorted.sort_by_key(|cell| std::cmp::Reverse(n(cell.get("busy"))));
            for cell in sorted.into_iter().take(16) {
                let mut row = vec![
                    n(cell.get("set")).to_string(),
                    n(cell.get("epoch")).to_string(),
                    n(cell.get("busy")).to_string(),
                    n(cell.get("ops")).to_string(),
                ];
                if with_wait {
                    row.push(n(cell.get("bus_wait")).to_string());
                }
                table.row(row);
            }
            out.push_str(&table.render());
        }
    }

    if let Some(cv) = doc.get("conservation") {
        let _ = writeln!(
            out,
            "conservation: cascade cost {} <= wasted_exec {} + squash_recovery {} -- {}",
            n(cv.get("cascade_cost")),
            n(cv.get("wasted_exec_bucket")),
            n(cv.get("squash_recovery_bucket")),
            if matches!(cv.get("within_bound"), Some(Json::Bool(true))) {
                "OK"
            } else {
                "VIOLATED"
            },
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_sim::trace::{AccessOp, SquashCause, VolEntry, VolOp};
    use svc_types::{Addr, Cycle, LineId, PuId, TaskId};

    fn rec(cycle: u64, seq: u64, event: TraceEvent) -> Record {
        Record { cycle, seq, event }
    }

    fn fixture() -> Vec<Record> {
        vec![
            rec(
                2,
                0,
                TraceEvent::TaskDispatch {
                    pu: PuId(1),
                    task: TaskId(2),
                    attempt: 1,
                    wrong_path: false,
                },
            ),
            rec(
                4,
                1,
                TraceEvent::BusTransaction {
                    op: svc_sim::trace::BusOp::Read,
                    pu: Some(PuId(1)),
                    line: Some(LineId(16)),
                    start: Cycle(4),
                    done: Cycle(9),
                    extra: 0,
                },
            ),
            rec(
                5,
                2,
                TraceEvent::Access {
                    pu: PuId(1),
                    task: TaskId(2),
                    op: AccessOp::Load,
                    addr: Addr(128),
                    source: "next-level",
                    done_at: Cycle(9),
                },
            ),
            rec(
                10,
                3,
                TraceEvent::VolReorder {
                    line: LineId(16),
                    op: VolOp::Splice,
                    order: vec![
                        VolEntry {
                            pu: PuId(0),
                            task: Some(TaskId(1)),
                            version: true,
                        },
                        VolEntry {
                            pu: PuId(1),
                            task: Some(TaskId(2)),
                            version: true,
                        },
                    ],
                },
            ),
            rec(
                12,
                4,
                TraceEvent::Violation {
                    pu: PuId(0),
                    task: TaskId(1),
                    victim: TaskId(2),
                    addr: Addr(128),
                },
            ),
            rec(
                12,
                5,
                TraceEvent::TaskSquash {
                    pu: PuId(1),
                    task: TaskId(2),
                    cause: SquashCause::Violation,
                    restart: TaskId(2),
                    until: Cycle(18),
                },
            ),
        ]
    }

    #[test]
    fn analysis_doc_is_deterministic_and_complete() {
        let records = fixture();
        let cfg = AnalyzeConfig::default();
        let a = analyze(&records, 0, None, &cfg).render();
        let b = analyze(&records, 0, None, &cfg).render();
        assert_eq!(a, b);
        let doc = svc_bench::report::parse(&a).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_ANALYSIS)
        );
        let cascades = doc.get("cascades").unwrap();
        assert_eq!(n(cascades.get("count")), 1);
        assert_eq!(n(cascades.get("chains")), 1);
        // One squashed task, blackout [12, 18), one uncovered issue
        // cycle at 5 (the load window [6, 9) does not cover its own
        // issue cycle).
        assert_eq!(n(cascades.get("recovery_cycles")), 6);
        assert_eq!(n(cascades.get("wasted_exec_cycles")), 1);
        let contention = doc.get("contention").unwrap();
        assert_eq!(n(contention.get("transactions")), 1);
        assert_eq!(n(contention.get("bus_busy_cycles")), 5);
        let lifetimes = doc.get("lifetimes").unwrap();
        assert_eq!(n(lifetimes.get("totals").unwrap().get("splices")), 1);
    }

    #[test]
    fn conservation_uses_profile_buckets() {
        let records = fixture();
        let mut profile = ProfileJoin {
            cycles: 40,
            num_pus: 4,
            epoch: 16,
            totals: Default::default(),
        };
        profile.totals.insert("wasted_exec".into(), 10);
        profile.totals.insert("squash_recovery".into(), 10);
        profile.totals.insert("bus_wait".into(), 20);
        let doc = analyze(&records, 0, Some(&profile), &AnalyzeConfig::default());
        let cv = doc.get("conservation").unwrap();
        assert_eq!(n(cv.get("cascade_cost")), 7);
        assert_eq!(n(cv.get("bound")), 20);
        assert!(matches!(cv.get("within_bound"), Some(Json::Bool(true))));
        // The single cell carries all of the attributed bus_wait.
        let cells = doc
            .get("contention")
            .unwrap()
            .get("cells")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(n(cells[0].get("bus_wait")), 20);
        assert_eq!(n(cells[0].get("epoch")), 0);
        assert_eq!(n(cells[0].get("set")), 16);
    }

    #[test]
    fn text_rendering_mentions_every_section() {
        let records = fixture();
        let doc = analyze(&records, 0, None, &AnalyzeConfig::default());
        let text = render_text(&doc);
        for needle in ["trace", "cascades", "lifetimes", "contention"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
