//! Cross-run regression forensics: pair the runs of two result
//! documents, diff their metrics, and explain the deltas in terms of
//! squash/stall structure (optionally joined against the two runs'
//! profiler bucket totals).
//!
//! Accepts both document shapes the harness produces: `svc-sim run
//! --json` output (a single run object) and `svc-experiments/v1|v2`
//! documents (a `runs` array).

use svc_bench::report::{Json, SCHEMA_ANALYSIS};
use svc_sim::profile::Bucket;
use svc_sim::table::Table;

use crate::input::ProfileJoin;

/// Metrics diffed per paired run: name, where it lives, and whether an
/// increase is a regression (for the findings heuristic).
const RUN_METRICS: [(&str, Place, bool); 10] = [
    ("ipc", Place::Top, false),
    ("miss_ratio", Place::Top, true),
    ("bus_utilization", Place::Top, true),
    ("squashes", Place::Top, true),
    ("wasted_instrs", Place::Top, true),
    ("cycles", Place::Report, true),
    ("committed_instrs", Place::Report, false),
    ("violation_squashes", Place::Report, true),
    ("resource_squashes", Place::Report, true),
    ("squash_recovery_cycles", Place::Report, true),
];

#[derive(Clone, Copy, PartialEq)]
enum Place {
    /// Top-level field of the run object.
    Top,
    /// Field of the nested `report` object.
    Report,
}

fn metric_of(run: &Json, name: &str, place: Place) -> Option<f64> {
    match place {
        Place::Top => run.get(name)?.as_f64(),
        Place::Report => run.get("report")?.get(name)?.as_f64(),
    }
}

/// A run's identity within a document: `workload/memory/seed`.
fn run_key(run: &Json) -> String {
    let s = |k: &str| run.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let seed = run
        .get("seed")
        .and_then(Json::as_f64)
        .map(|v| format!("{}", v as u64))
        .unwrap_or_else(|| "?".into());
    format!("{}/{}/{}", s("workload"), s("memory"), seed)
}

/// The run objects inside a document, in document order.
fn runs_of(doc: &Json) -> Result<Vec<&Json>, String> {
    if let Some(runs) = doc.get("runs").and_then(Json::as_arr) {
        return Ok(runs.iter().collect());
    }
    if doc.get("workload").is_some() {
        return Ok(vec![doc]);
    }
    Err(format!(
        "document is neither an experiment result (schema {:?}) nor `svc-sim run --json` output",
        doc.get("schema").and_then(Json::as_str).unwrap_or("?")
    ))
}

fn pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (b - a) / a
    }
}

/// Diffs two result documents. `profiles` optionally joins the runs'
/// `svc-profile/v1` bucket totals into the explanation.
pub fn compare(
    label_a: &str,
    doc_a: &Json,
    label_b: &str,
    doc_b: &Json,
    profiles: Option<(&ProfileJoin, &ProfileJoin)>,
) -> Result<Json, String> {
    let runs_a = runs_of(doc_a).map_err(|e| format!("{label_a}: {e}"))?;
    let runs_b = runs_of(doc_b).map_err(|e| format!("{label_b}: {e}"))?;

    let mut findings: Vec<String> = Vec::new();
    let mut paired = Vec::new();
    let mut unmatched = 0u64;
    for ra in &runs_a {
        let key = run_key(ra);
        let Some(rb) = runs_b.iter().find(|rb| run_key(rb) == key) else {
            unmatched += 1;
            continue;
        };

        let mut metrics = Json::obj();
        let mut suspects: Vec<(f64, String)> = Vec::new();
        let mut ipc_delta_pct = 0.0;
        for (name, place, worse_if_up) in RUN_METRICS {
            let (Some(va), Some(vb)) = (metric_of(ra, name, place), metric_of(rb, name, place))
            else {
                continue;
            };
            let delta = vb - va;
            metrics = metrics.set(
                name,
                Json::obj()
                    .set("a", va.into())
                    .set("b", vb.into())
                    .set("delta", delta.into()),
            );
            if name == "ipc" {
                ipc_delta_pct = pct(va, vb);
            } else if worse_if_up && delta > 0.0 {
                let rel = pct(va, vb);
                suspects.push((
                    rel,
                    format!("{name} +{rel:.1}% ({} -> {})", fmt_num(va), fmt_num(vb)),
                ));
            }
        }
        let regressed = ipc_delta_pct < -0.1;
        if regressed {
            suspects.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            let why: Vec<String> = suspects.into_iter().take(3).map(|(_, s)| s).collect();
            let why = if why.is_empty() {
                "no stall-side counter moved".to_string()
            } else {
                why.join(", ")
            };
            findings.push(format!("{key}: ipc {ipc_delta_pct:+.1}% -- {why}"));
        }
        paired.push(
            Json::obj()
                .set("key", key.into())
                .set("regressed", regressed.into())
                .set("metrics", metrics),
        );
    }

    let mut section = Json::obj()
        .set(
            "a",
            Json::obj()
                .set("label", label_a.into())
                .set("runs", (runs_a.len() as u64).into()),
        )
        .set(
            "b",
            Json::obj()
                .set("label", label_b.into())
                .set("runs", (runs_b.len() as u64).into()),
        );
    if unmatched > 0 {
        section = section.set("unmatched_runs", unmatched.into());
    }
    section = section.set("runs", Json::Arr(paired));

    if let Some((pa, pb)) = profiles {
        let mut buckets = Json::obj();
        let mut top: Option<(i128, Bucket)> = None;
        for b in Bucket::EVERY {
            let (va, vb) = (pa.total(b), pb.total(b));
            let delta = vb as i128 - va as i128;
            buckets = buckets.set(
                b.name(),
                Json::obj()
                    .set("a", va.into())
                    .set("b", vb.into())
                    .set("delta", Json::Num(delta as f64)),
            );
            let grew = !matches!(b, Bucket::Commit) && delta > 0;
            if grew && top.is_none_or(|(best, _)| delta > best) {
                top = Some((delta, b));
            }
        }
        section = section.set("buckets", buckets);
        if let Some((delta, b)) = top {
            findings.push(format!(
                "profiler: {} grew by {delta} PU-cycles ({} -> {}), the largest stall-side shift",
                b.name(),
                pa.total(b),
                pb.total(b)
            ));
        }
    }

    section = section.set(
        "findings",
        Json::Arr(findings.iter().map(|s| s.as_str().into()).collect()),
    );
    Ok(Json::obj()
        .set("schema", SCHEMA_ANALYSIS.into())
        .set("compare", section))
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Renders a comparison document as text tables.
pub fn render_compare_text(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(c) = doc.get("compare") else {
        return "not a comparison document\n".into();
    };
    let label = |side: &str| {
        c.get(side)
            .and_then(|s| s.get("label"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let _ = writeln!(out, "compare    a={}  b={}", label("a"), label("b"));
    for run in c.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
        let key = run.get("key").and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(out, "run {key}");
        let mut table = Table::new(vec![
            "metric".into(),
            "a".into(),
            "b".into(),
            "delta".into(),
        ]);
        if let Some(metrics) = run.get("metrics").and_then(Json::as_obj) {
            for (name, m) in metrics {
                let g = |k: &str| m.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                table.row(vec![
                    name.clone(),
                    fmt_num(g("a")),
                    fmt_num(g("b")),
                    fmt_num(g("delta")),
                ]);
            }
        }
        out.push_str(&table.render());
    }
    if let Some(buckets) = c.get("buckets").and_then(Json::as_obj) {
        let _ = writeln!(out, "profiler buckets (PU-cycles)");
        let mut table = Table::new(vec![
            "bucket".into(),
            "a".into(),
            "b".into(),
            "delta".into(),
        ]);
        for (name, m) in buckets {
            let g = |k: &str| m.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            table.row(vec![
                name.clone(),
                fmt_num(g("a")),
                fmt_num(g("b")),
                fmt_num(g("delta")),
            ]);
        }
        out.push_str(&table.render());
    }
    let findings = c.get("findings").and_then(Json::as_arr).unwrap_or(&[]);
    if findings.is_empty() {
        let _ = writeln!(out, "findings   none (no run regressed)");
    } else {
        for f in findings {
            let _ = writeln!(out, "finding    {}", f.as_str().unwrap_or("?"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_bench::report;

    fn run_doc(ipc: f64, squashes: u64, recovery: u64) -> Json {
        Json::obj()
            .set("workload", "mcf".into())
            .set("memory", "svc".into())
            .set("seed", 42u64.into())
            .set("ipc", ipc.into())
            .set("miss_ratio", 0.1.into())
            .set("bus_utilization", 0.5.into())
            .set("squashes", squashes.into())
            .set("wasted_instrs", (squashes * 10).into())
            .set(
                "report",
                Json::obj()
                    .set("cycles", 1000u64.into())
                    .set("committed_instrs", (1000.0 * ipc).into())
                    .set("violation_squashes", squashes.into())
                    .set("resource_squashes", 0u64.into())
                    .set("squash_recovery_cycles", recovery.into()),
            )
    }

    #[test]
    fn explains_an_injected_slowdown() {
        let a = run_doc(1.5, 10, 100);
        let b = run_doc(1.0, 40, 420);
        let doc = compare("a.json", &a, "b.json", &b, None).unwrap();
        let c = doc.get("compare").unwrap();
        let findings = c.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        let text = findings[0].as_str().unwrap();
        assert!(text.contains("mcf/svc/42"), "{text}");
        assert!(text.contains("squash"), "{text}");
        // Deterministic rendering, parseable round trip.
        let rendered = doc.render();
        assert_eq!(report::parse(&rendered).unwrap().render(), rendered);
        let tables = render_compare_text(&doc);
        assert!(tables.contains("ipc"), "{tables}");
    }

    #[test]
    fn experiment_docs_pair_runs_by_key() {
        let exp = |ipc| {
            Json::obj()
                .set("schema", report::SCHEMA_EXPERIMENT.into())
                .set("runs", Json::Arr(vec![run_doc(ipc, 5, 50)]))
        };
        let doc = compare("a", &exp(1.0), "b", &exp(1.0), None).unwrap();
        let c = doc.get("compare").unwrap();
        assert_eq!(
            c.get("runs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        let findings = c.get("findings").and_then(Json::as_arr).unwrap();
        assert!(findings.is_empty());
    }

    #[test]
    fn bucket_join_names_the_largest_stall_shift() {
        use std::collections::BTreeMap;
        let mk = |wait: u64| {
            let mut totals = BTreeMap::new();
            totals.insert("commit".to_string(), 500);
            totals.insert("bus_wait".to_string(), wait);
            crate::input::ProfileJoin {
                cycles: 1000,
                num_pus: 4,
                epoch: 0,
                totals,
            }
        };
        let (pa, pb) = (mk(40), mk(400));
        let a = run_doc(1.0, 5, 50);
        let doc = compare("a", &a, "b", &a, Some((&pa, &pb))).unwrap();
        let findings = doc
            .get("compare")
            .unwrap()
            .get("findings")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].as_str().unwrap().contains("bus_wait"));
    }
}
