//! Artifact ingestion: trace JSONL back into [`Record`]s, and
//! `svc-profile/v1` documents into the join points the analyses need.
//!
//! The JSONL reader is deliberately lenient: lines whose `ev` tag it does
//! not model (coherence-baseline transitions, fault-injector events) are
//! counted rather than rejected, so a trace from a newer writer — or one
//! interleaved with other output — still loads.

use std::collections::BTreeMap;

use svc_bench::report::{self, Json};
use svc_sim::profile::Bucket;
use svc_sim::trace::{
    intern_access_source, AccessOp, BusOp, LineBits, PlanKind, PlanSummary, Record, SquashCause,
    TraceEvent, VolEntry, VolOp,
};
use svc_types::{Addr, Cycle, LineId, PuId, TaskId};

/// A trace re-read from JSONL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadedTrace {
    /// The reconstructed records, in file order.
    pub records: Vec<Record>,
    /// Non-empty lines that did not reconstruct (unknown `ev` tag,
    /// missing fields, or non-JSON content).
    pub skipped: u64,
}

fn num(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key)?.as_f64().map(|x| x as u64)
}

fn string<'j>(obj: &'j Json, key: &str) -> Option<&'j str> {
    obj.get(key)?.as_str()
}

fn boolean(obj: &Json, key: &str) -> Option<bool> {
    match obj.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn bits(obj: &Json, key: &str) -> Option<LineBits> {
    let b = obj.get(key)?;
    Some(LineBits {
        valid: num(b, "v")?,
        store: num(b, "s")?,
        load: num(b, "l")?,
        committed: num(b, "c")? != 0,
        stale: num(b, "t")? != 0,
        arch: num(b, "a")? != 0,
        exclusive: num(b, "x")? != 0,
    })
}

fn vol_order(obj: &Json) -> Option<Vec<VolEntry>> {
    let mut order = Vec::new();
    for e in obj.get("order")?.as_arr()? {
        order.push(VolEntry {
            pu: PuId(num(e, "pu")? as usize),
            task: num(e, "task").map(TaskId),
            version: boolean(e, "ver")?,
        });
    }
    Some(order)
}

/// Reconstructs one JSONL object into an event, or `None` for tags the
/// analyzer does not model.
fn event_of(obj: &Json) -> Option<TraceEvent> {
    Some(match string(obj, "ev")? {
        "bus" => TraceEvent::BusTransaction {
            op: BusOp::from_name(string(obj, "op")?)?,
            pu: num(obj, "pu").map(|p| PuId(p as usize)),
            line: num(obj, "line").map(LineId),
            start: Cycle(num(obj, "start")?),
            done: Cycle(num(obj, "done")?),
            extra: num(obj, "extra")?,
        },
        "mshr_alloc" => TraceEvent::MshrAllocate {
            pu: PuId(num(obj, "pu")? as usize),
            line: LineId(num(obj, "line")?),
            data_ready: Cycle(num(obj, "ready")?),
            stalled: num(obj, "stalled")?,
        },
        "mshr_combine" => TraceEvent::MshrCombine {
            pu: PuId(num(obj, "pu")? as usize),
            line: LineId(num(obj, "line")?),
            data_ready: Cycle(num(obj, "ready")?),
        },
        "mshr_retire" => TraceEvent::MshrRetire {
            pu: PuId(num(obj, "pu")? as usize),
            line: LineId(num(obj, "line")?),
        },
        "wb_push" => TraceEvent::WritebackPush {
            pu: PuId(num(obj, "pu")? as usize),
            accepted: Cycle(num(obj, "accepted")?),
            stalled: num(obj, "stalled")?,
            occupancy: num(obj, "occ")? as usize,
        },
        "line" => TraceEvent::LineTransition {
            pu: PuId(num(obj, "pu")? as usize),
            line: LineId(num(obj, "line")?),
            from: bits(obj, "from")?,
            to: bits(obj, "to")?,
        },
        "vol" => TraceEvent::VolReorder {
            line: LineId(num(obj, "line")?),
            op: VolOp::from_name(string(obj, "op")?)?,
            order: vol_order(obj)?,
        },
        "plan" => {
            let mut victims = Vec::new();
            for v in obj.get("victims")?.as_arr()? {
                victims.push(TaskId(v.as_f64()? as u64));
            }
            TraceEvent::VclPlan(PlanSummary {
                kind: PlanKind::from_name(string(obj, "kind")?)?,
                pu: PuId(num(obj, "pu")? as usize),
                task: num(obj, "task").map(TaskId),
                line: LineId(num(obj, "line")?),
                fill_from_cache: num(obj, "fill_cache")? as u32,
                fill_from_memory: num(obj, "fill_mem")? as u32,
                flush: num(obj, "flush")? as u32,
                purge: num(obj, "purge")? as u32,
                invalidate: num(obj, "inval")? as u32,
                update: num(obj, "update")? as u32,
                snarfers: num(obj, "snarf")? as u32,
                victims,
                arch: boolean(obj, "arch")?,
            })
        }
        "access" => TraceEvent::Access {
            pu: PuId(num(obj, "pu")? as usize),
            task: TaskId(num(obj, "task")?),
            op: AccessOp::from_name(string(obj, "op")?)?,
            addr: Addr(num(obj, "addr")?),
            source: intern_access_source(string(obj, "src")?),
            done_at: Cycle(num(obj, "done")?),
        },
        "violation" => TraceEvent::Violation {
            pu: PuId(num(obj, "pu")? as usize),
            task: TaskId(num(obj, "task")?),
            victim: TaskId(num(obj, "victim")?),
            addr: Addr(num(obj, "addr")?),
        },
        "dispatch" => TraceEvent::TaskDispatch {
            pu: PuId(num(obj, "pu")? as usize),
            task: TaskId(num(obj, "task")?),
            attempt: num(obj, "attempt")? as u32,
            wrong_path: boolean(obj, "wrong")?,
        },
        "commit" => TraceEvent::TaskCommit {
            pu: PuId(num(obj, "pu")? as usize),
            task: TaskId(num(obj, "task")?),
            instrs: num(obj, "instrs")?,
        },
        "squash" => TraceEvent::TaskSquash {
            pu: PuId(num(obj, "pu")? as usize),
            task: TaskId(num(obj, "task")?),
            cause: SquashCause::from_name(string(obj, "cause")?)?,
            restart: TaskId(num(obj, "restart")?),
            // Traces written before the squash-recovery window was
            // recorded carry no `until`: a zero-length blackout.
            until: Cycle(num(obj, "until").unwrap_or_else(|| num(obj, "cycle").unwrap_or(0))),
        },
        _ => return None,
    })
}

/// Parses a trace JSONL document (as written by `svc-sim run
/// --trace-out`) back into records.
pub fn parse_trace_jsonl(text: &str) -> LoadedTrace {
    let mut out = LoadedTrace::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = report::parse(line).ok().and_then(|obj| {
            Some(Record {
                cycle: num(&obj, "cycle")?,
                seq: num(&obj, "seq")?,
                event: event_of(&obj)?,
            })
        });
        match parsed {
            Some(r) => out.records.push(r),
            None => out.skipped += 1,
        }
    }
    out
}

/// The slice of a profile the analyses join against: run extent, epoch
/// and the summed stall buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileJoin {
    /// Total simulated cycles.
    pub cycles: u64,
    /// PUs profiled.
    pub num_pus: u64,
    /// Sampling epoch (0 = sampling was off).
    pub epoch: u64,
    /// Bucket totals over all PUs, by stable bucket name.
    pub totals: BTreeMap<String, u64>,
}

impl ProfileJoin {
    /// One bucket's total (0 if absent).
    pub fn total(&self, bucket: Bucket) -> u64 {
        self.totals.get(bucket.name()).copied().unwrap_or(0)
    }

    /// Builds the join directly from an in-process report (the `svc-sim
    /// run --analyze` path, no JSON round-trip).
    pub fn from_report(p: &svc_sim::profile::ProfileReport) -> ProfileJoin {
        let totals = p.totals();
        ProfileJoin {
            cycles: p.cycles,
            num_pus: p.num_pus as u64,
            epoch: p.epoch,
            totals: Bucket::EVERY
                .into_iter()
                .map(|b| (b.name().to_string(), totals[b as usize]))
                .collect(),
        }
    }
}

/// Extracts the join points from a `svc-profile/v1` document (the first
/// run's profile — `svc-sim` writes exactly one).
pub fn parse_profile_doc(doc: &Json) -> Result<ProfileJoin, String> {
    let schema = string(doc, "schema").unwrap_or("?");
    if schema != report::SCHEMA_PROFILE {
        return Err(format!(
            "expected a {} document, got schema {schema:?}",
            report::SCHEMA_PROFILE
        ));
    }
    let run = doc
        .get("runs")
        .and_then(Json::as_arr)
        .and_then(<[Json]>::first)
        .ok_or("profile document has no runs")?;
    let p = run.get("profile").ok_or("run entry has no profile")?;
    let mut totals = BTreeMap::new();
    if let Some(fields) = p.get("total").and_then(Json::as_obj) {
        for (name, value) in fields {
            totals.insert(name.clone(), value.as_f64().unwrap_or(0.0) as u64);
        }
    }
    Ok(ProfileJoin {
        cycles: num(p, "cycles").ok_or("profile has no cycles")?,
        num_pus: num(p, "num_pus").unwrap_or(0),
        epoch: num(p, "epoch").unwrap_or(0),
        totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_sim::trace::{render_jsonl, Category, Tracer};

    #[test]
    fn jsonl_round_trips_through_the_reader() {
        let t = Tracer::new(Category::ALL, 64);
        t.emit(Cycle(3), Category::Bus, || TraceEvent::BusTransaction {
            op: BusOp::Read,
            pu: Some(PuId(1)),
            line: Some(LineId(7)),
            start: Cycle(3),
            done: Cycle(6),
            extra: 2,
        });
        t.emit(Cycle(5), Category::Access, || TraceEvent::Access {
            pu: PuId(0),
            task: TaskId(4),
            op: AccessOp::Store,
            addr: Addr(129),
            source: "accepted",
            done_at: Cycle(9),
        });
        t.emit(Cycle(6), Category::Vol, || TraceEvent::VolReorder {
            line: LineId(2),
            op: VolOp::Splice,
            order: vec![VolEntry {
                pu: PuId(1),
                task: Some(TaskId(2)),
                version: true,
            }],
        });
        t.emit(Cycle(7), Category::Line, || TraceEvent::LineTransition {
            pu: PuId(2),
            line: LineId(2),
            from: LineBits::default(),
            to: LineBits {
                valid: 0b11,
                store: 0b1,
                load: 0,
                committed: false,
                stale: true,
                arch: false,
                exclusive: true,
            },
        });
        t.emit(Cycle(8), Category::Task, || TraceEvent::TaskSquash {
            pu: PuId(1),
            task: TaskId(2),
            cause: SquashCause::Violation,
            restart: TaskId(2),
            until: Cycle(12),
        });
        let records = t.records();
        let loaded = parse_trace_jsonl(&render_jsonl(&records));
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.records, records);
    }

    #[test]
    fn unknown_lines_are_counted_not_fatal() {
        let text = "not json\n{\"cycle\":1,\"seq\":0,\"cat\":\"fault\",\"ev\":\"fault\",\
                    \"site\":\"bus_drop\",\"penalty\":4}\n\
                    {\"cycle\":2,\"seq\":1,\"cat\":\"task\",\"ev\":\"commit\",\"pu\":0,\
                    \"task\":3,\"instrs\":10}\n";
        let loaded = parse_trace_jsonl(text);
        assert_eq!(loaded.skipped, 2);
        assert_eq!(loaded.records.len(), 1);
    }

    #[test]
    fn squash_without_until_defaults_to_its_cycle() {
        let text = "{\"cycle\":9,\"seq\":0,\"cat\":\"task\",\"ev\":\"squash\",\"pu\":1,\
                    \"task\":2,\"cause\":\"violation\",\"restart\":2}\n";
        let loaded = parse_trace_jsonl(text);
        assert_eq!(loaded.records.len(), 1);
        assert!(matches!(
            loaded.records[0].event,
            TraceEvent::TaskSquash {
                until: Cycle(9),
                ..
            }
        ));
    }

    #[test]
    fn profile_join_reads_bucket_totals() {
        let doc = report::parse(
            r#"{"schema":"svc-profile/v1","runs":[{"workload":"w","profile":
                {"num_pus":4,"cycles":1000,"epoch":64,
                 "total":{"commit":100,"wasted_exec":7,"squash_recovery":13}}}]}"#,
        )
        .unwrap();
        let join = parse_profile_doc(&doc).unwrap();
        assert_eq!(join.cycles, 1000);
        assert_eq!(join.epoch, 64);
        assert_eq!(join.total(Bucket::WastedExec), 7);
        assert_eq!(join.total(Bucket::SquashRecovery), 13);
        assert_eq!(join.total(Bucket::BusWait), 0);
    }
}
