//! `svc-analyze`: offline trace/profile analytics and cross-run
//! regression forensics.
//!
//! ```text
//! svc-analyze trace TRACE.jsonl [--profile P.json] [--wpl N] [--sets N]
//!                               [--json] [--html] [--out FILE]
//! svc-analyze compare A.json B.json [--profile PA.json PB.json]
//!                               [--json] [--html] [--out FILE]
//! svc-analyze report DOC.json  [--html] [--out FILE]
//! ```
//!
//! `trace` ingests a JSONL trace (as written by `svc-sim run
//! --trace-out`) and emits an `svc-analysis/v1` document; `compare`
//! diffs two result documents (`svc-sim run --json` output or
//! `svc-experiments/v1|v2` files); `report` re-renders an existing
//! `svc-analysis/v1` document as text tables or self-contained HTML.
//! Exit codes follow the harness convention: 2 usage, 3 I/O,
//! 4 invariant.

use std::process::ExitCode;

use svc_analyze::analysis::{self, AnalyzeConfig};
use svc_analyze::{compare, html, input};
use svc_bench::cli::{exit_report, CliError};
use svc_bench::report::{self, Json};

const USAGE: &str = "usage: svc-analyze <command> [args]
  trace TRACE.jsonl [--profile P.json] [--wpl N] [--sets N] [--json] [--html] [--out FILE]
  compare A.json B.json [--profile PA.json PB.json] [--json] [--html] [--out FILE]
  report DOC.json [--html] [--out FILE]";

/// How the resulting document leaves the process.
#[derive(Default)]
struct Output {
    json: bool,
    html: bool,
    out: Option<String>,
}

impl Output {
    /// Writes/prints `doc`, rendering text tables via `render` unless
    /// `--json` / `--html` asked for another shape.
    fn emit(
        &self,
        doc: &Json,
        title: &str,
        render: impl Fn(&Json) -> String,
    ) -> Result<(), CliError> {
        let body = if self.html {
            html::render_html(doc, title)
        } else if self.json || self.out.is_some() {
            doc.render()
        } else {
            render(doc)
        };
        match &self.out {
            Some(path) => {
                report::write_atomic(std::path::Path::new(path), body.as_bytes())
                    .map_err(|e| CliError::io(path, e))?;
                eprintln!("analysis: -> {path}");
                Ok(())
            }
            None => {
                print!("{body}");
                Ok(())
            }
        }
    }
}

fn read_doc(path: &str) -> Result<Json, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    report::parse(&text).map_err(|e| CliError::Invariant(format!("{path}: {e}")))
}

fn read_profile(path: &str) -> Result<input::ProfileJoin, CliError> {
    input::parse_profile_doc(&read_doc(path)?)
        .map_err(|e| CliError::Invariant(format!("{path}: {e}")))
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value
        .parse::<u64>()
        .map_err(|_| CliError::Usage(format!("{flag} wants a number, got {value:?}")))
        .and_then(|v| {
            if v == 0 {
                Err(CliError::Usage(format!("{flag} must be nonzero")))
            } else {
                Ok(v)
            }
        })
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let mut trace_path: Option<&str> = None;
    let mut profile_path: Option<&str> = None;
    let mut cfg = AnalyzeConfig::default();
    let mut output = Output::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::Usage(format!("{arg} wants a value")))
        };
        match arg.as_str() {
            "--profile" => profile_path = Some(value()?),
            "--wpl" => cfg.words_per_line = parse_u64("--wpl", value()?)?,
            "--sets" => cfg.sets = parse_u64("--sets", value()?)?,
            "--json" => output.json = true,
            "--html" => output.html = true,
            "--out" => output.out = Some(value()?.to_string()),
            _ if !arg.starts_with('-') && trace_path.is_none() => {
                trace_path = Some(arg.as_str());
            }
            _ => return Err(CliError::Usage(format!("unknown trace argument {arg:?}"))),
        }
    }
    let path = trace_path.ok_or_else(|| CliError::Usage("trace wants a TRACE.jsonl".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let loaded = input::parse_trace_jsonl(&text);
    if loaded.records.is_empty() {
        return Err(CliError::Invariant(format!(
            "{path}: no trace records decoded ({} lines skipped)",
            loaded.skipped
        )));
    }
    let profile = profile_path.map(read_profile).transpose()?;
    let doc = analysis::analyze(&loaded.records, loaded.skipped, profile.as_ref(), &cfg);
    output.emit(&doc, &format!("svc-analyze: {path}"), analysis::render_text)
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    let mut inputs: Vec<&str> = Vec::new();
    let mut profiles: Vec<&str> = Vec::new();
    let mut output = Output::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::Usage(format!("{arg} wants a value")))
        };
        match arg.as_str() {
            "--profile" => {
                profiles.push(value()?);
                profiles.push(value()?);
            }
            "--json" => output.json = true,
            "--html" => output.html = true,
            "--out" => output.out = Some(value()?.to_string()),
            _ if !arg.starts_with('-') && inputs.len() < 2 => inputs.push(arg.as_str()),
            _ => return Err(CliError::Usage(format!("unknown compare argument {arg:?}"))),
        }
    }
    let [a, b] = inputs[..] else {
        return Err(CliError::Usage(
            "compare wants exactly A.json B.json".into(),
        ));
    };
    let (doc_a, doc_b) = (read_doc(a)?, read_doc(b)?);
    let joined = match profiles[..] {
        [] => None,
        [pa, pb] => Some((read_profile(pa)?, read_profile(pb)?)),
        _ => {
            return Err(CliError::Usage(
                "--profile wants exactly two files (one per side), given once".into(),
            ))
        }
    };
    let doc = compare::compare(
        a,
        &doc_a,
        b,
        &doc_b,
        joined.as_ref().map(|(pa, pb)| (pa, pb)),
    )
    .map_err(CliError::Invariant)?;
    output.emit(
        &doc,
        &format!("svc-analyze: {a} vs {b}"),
        compare::render_compare_text,
    )
}

fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let mut input_path: Option<&str> = None;
    let mut output = Output::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--html" => output.html = true,
            "--json" => output.json = true,
            "--out" => {
                output.out = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage("--out wants a value".into()))?,
                );
            }
            _ if !arg.starts_with('-') && input_path.is_none() => input_path = Some(arg.as_str()),
            _ => return Err(CliError::Usage(format!("unknown report argument {arg:?}"))),
        }
    }
    let path = input_path.ok_or_else(|| CliError::Usage("report wants a DOC.json".into()))?;
    let doc = read_doc(path)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != report::SCHEMA_ANALYSIS {
        return Err(CliError::Invariant(format!(
            "{path}: expected a {} document, got schema {schema:?}",
            report::SCHEMA_ANALYSIS
        )));
    }
    let render = |d: &Json| {
        if d.get("compare").is_some() {
            compare::render_compare_text(d)
        } else {
            analysis::render_text(d)
        }
    };
    output.emit(&doc, &format!("svc-analyze: {path}"), render)
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage(format!("missing command\n{USAGE}")));
    };
    match cmd.as_str() {
        "trace" => cmd_trace(rest),
        "compare" => cmd_compare(rest),
        "report" => cmd_report(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    exit_report(run())
}
