//! The Address Resolution Buffer (ARB) — the paper's baseline.
//!
//! The ARB (Franklin & Sohi, IEEE ToC 1996; SVC paper §1, §4) is the
//! *shared-buffer* solution to speculative versioning for hierarchical
//! processors: a fully-associative buffer in front of a shared L1 data
//! cache. Each row tracks one address, with a load bit, a store bit and a
//! value per *stage* (one stage per processing unit, plus one extra
//! *architectural* stage that absorbs committed versions — the paper's
//! mitigation for the ARB's commit-time burst, §4: "we mitigate the commit
//! time bottlenecks by using an extra stage, that contains architectural
//! data").
//!
//! Following the paper's evaluation setup, the model is deliberately
//! generous to the ARB: bandwidth is unlimited (no bank or crossbar
//! contention is modelled) and the commit path from any stage to the
//! architectural stage is free; the *only* cost every access pays is the
//! configurable hit latency (1–4 cycles) of reaching the shared structure
//! through the interconnect — the exact effect Figures 19/20 isolate.
//!
//! # Example
//!
//! ```
//! use svc_arb::{ArbConfig, ArbSystem};
//! use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};
//!
//! let mut arb = ArbSystem::new(ArbConfig::paper(4, 2, 32));
//! arb.assign(PuId(0), TaskId(0));
//! arb.assign(PuId(1), TaskId(1));
//! arb.store(PuId(0), Addr(8), Word(7), Cycle(0))?;
//! let out = arb.load(PuId(1), Addr(8), Cycle(5))?;
//! assert_eq!(out.value, Word(7)); // bypassed from task 0's stage
//! assert_eq!(out.done_at, Cycle(7)); // 2-cycle hit latency
//! # Ok::<(), svc_types::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod system;

pub use cache::SharedCache;
pub use system::{ArbConfig, ArbSystem};
