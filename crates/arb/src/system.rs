//! The ARB proper: rows of per-stage load/store bits and values, an
//! architectural stage, and the shared backing cache.

use std::collections::HashMap;

use smallvec::SmallVec;
use svc_mem::{CacheGeometry, MainMemory};
use svc_sim::profile::{AccessProfile, Profiler};
use svc_sim::trace::{AccessOp, Category, TraceEvent, Tracer};
use svc_types::{
    AccessError, Addr, Cycle, DataSource, InvariantKind, InvariantViolation, LoadOutcome,
    MemGauges, MemStats, ModelCheckable, Mutation, PuId, StateHasher, StoreOutcome,
    TaskAssignments, TaskId, VersionedMemory, Violation, Word,
};

/// Configuration of an [`ArbSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbConfig {
    /// Number of processing units (= speculative stages).
    pub num_pus: usize,
    /// Fully-associative row capacity (the paper uses 256).
    pub rows: usize,
    /// Latency of every ARB/data-cache access, in cycles — the cost of
    /// crossing the interconnect to the shared structure. The paper
    /// evaluates 1 to 4.
    pub hit_cycles: u64,
    /// Additional penalty when the backing cache misses to the next level
    /// (the paper uses 10).
    pub memory_cycles: u64,
    /// Geometry of the shared backing data cache.
    pub cache_geometry: CacheGeometry,
}

impl ArbConfig {
    /// The paper's configuration: 256 rows, a direct-mapped backing cache
    /// of `cache_kb` KB in 16-byte lines, `hit_cycles` access latency and
    /// a 10-cycle next-level penalty.
    ///
    /// # Panics
    ///
    /// Panics if `cache_kb` does not give a power-of-two number of lines.
    pub fn paper(num_pus: usize, hit_cycles: u64, cache_kb: usize) -> ArbConfig {
        let lines = cache_kb * 1024 / 16;
        ArbConfig {
            num_pus,
            rows: 256,
            hit_cycles,
            memory_cycles: 10,
            cache_geometry: CacheGeometry::new(lines, 1, 4, 4),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stage {
    loaded: bool,
    stored: bool,
    value: Word,
}

#[derive(Debug, Clone)]
struct Row {
    addr: Addr,
    stages: Vec<Stage>,
    arch: Option<Word>,
}

impl Row {
    fn new(addr: Addr, num_pus: usize) -> Row {
        Row {
            addr,
            stages: vec![Stage::default(); num_pus],
            arch: None,
        }
    }

    fn is_speculative(&self) -> bool {
        self.stages.iter().any(|s| s.loaded || s.stored)
    }
}

/// The Address Resolution Buffer memory system. See the crate docs.
#[derive(Debug, Clone)]
pub struct ArbSystem {
    config: ArbConfig,
    rows: Vec<Row>,
    index: HashMap<Addr, usize>,
    free: Vec<usize>,
    assignments: TaskAssignments,
    cache: crate::SharedCache,
    memory: MainMemory,
    stats: MemStats,
    tracer: Tracer,
    profiler: Profiler,
}

impl ArbSystem {
    /// Builds an ARB from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_pus` or `rows` is zero.
    pub fn new(config: ArbConfig) -> ArbSystem {
        assert!(config.num_pus > 0 && config.rows > 0);
        ArbSystem {
            rows: Vec::with_capacity(config.rows),
            index: HashMap::new(),
            free: Vec::new(),
            assignments: TaskAssignments::new(config.num_pus),
            cache: crate::SharedCache::new(config.cache_geometry),
            memory: MainMemory::new(),
            stats: MemStats::default(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            config,
        }
    }

    /// Attaches a cycle-accounting profiler handle. The ARB has no
    /// snooping bus, so only next-level fill penalties are reported; the
    /// shared-structure access latency profiles as generic memory time.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &ArbConfig {
        &self.config
    }

    /// Attaches `tracer` to this system. Loads and stores appear as
    /// `access`-category events; detected dependence violations as
    /// `task`-category [`TraceEvent::Violation`] events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of rows currently tracking speculative state (for tests).
    pub fn speculative_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_speculative()).count()
    }

    fn task_of(&self, pu: PuId) -> Result<TaskId, AccessError> {
        self.assignments.task_of(pu).ok_or(AccessError::NoTask(pu))
    }

    /// Finds or allocates the row for `addr`.
    ///
    /// # Errors
    ///
    /// `Structural` if every row holds speculative state (the requesting
    /// PU must stall and retry, as in the original ARB).
    fn row_for(&mut self, addr: Addr) -> Result<usize, AccessError> {
        if let Some(&i) = self.index.get(&addr) {
            return Ok(i);
        }
        let i = if let Some(i) = self.free.pop() {
            i
        } else if self.rows.len() < self.config.rows {
            self.rows.push(Row::new(addr, self.config.num_pus));
            self.index.insert(addr, self.rows.len() - 1);
            return Ok(self.rows.len() - 1);
        } else {
            // Reclaim a non-speculative row, flushing its architectural
            // version to the data cache.
            let Some(i) = self.rows.iter().position(|r| !r.is_speculative()) else {
                self.stats.replacement_stalls += 1;
                return Err(AccessError::Structural("all ARB rows are speculative"));
            };
            let old = &mut self.rows[i];
            if let Some(v) = old.arch.take() {
                let addr = old.addr;
                self.cache.write(addr, v, &mut self.memory);
                self.stats.writebacks += 1;
            }
            self.index.remove(&self.rows[i].addr);
            i
        };
        self.rows[i] = Row::new(addr, self.config.num_pus);
        self.index.insert(addr, i);
        Ok(i)
    }

    /// Deliberately corrupts the ARB row tracking `addr`: its recorded
    /// address is flipped so the index no longer agrees with the row.
    /// Returns `false` if no row tracks `addr`. **Watchdog drill only.**
    #[doc(hidden)]
    pub fn fault_corrupt_row(&mut self, addr: Addr) -> bool {
        let Some(&i) = self.index.get(&addr) else {
            return false;
        };
        self.rows[i].addr = Addr(addr.0 ^ 1);
        true
    }

    /// PUs ordered oldest-task-first, as `(stage index, task)`.
    fn stage_order(&self) -> SmallVec<(usize, TaskId), 8> {
        self.assignments
            .program_order()
            .into_iter()
            .map(|pu| (pu.index(), self.assignments.task_of(pu).expect("ordered")))
            .collect()
    }
}

impl VersionedMemory for ArbSystem {
    fn num_pus(&self) -> usize {
        self.config.num_pus
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.assignments.assign(pu, task);
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        let task = self.task_of(pu)?;
        let row_idx = self.row_for(addr)?;
        self.stats.loads += 1;
        let order = self.stage_order();
        let row = &mut self.rows[row_idx];

        // Own version first (a load after the task's own store).
        if row.stages[pu.index()].stored {
            self.stats.local_hits += 1;
            let done = now + self.config.hit_cycles;
            self.tracer
                .emit(now, Category::Access, || TraceEvent::Access {
                    pu,
                    task,
                    op: AccessOp::Load,
                    addr,
                    source: "local",
                    done_at: done,
                });
            return Ok(LoadOutcome {
                value: row.stages[pu.index()].value,
                done_at: done,
                source: DataSource::LocalHit,
            });
        }
        // The disambiguation search: closest previous stage with a store
        // (the ARB's backward stage walk).
        let mut bypass: Option<Word> = None;
        for &(stage, t) in order.iter().rev() {
            if t.is_older_than(task) && row.stages[stage].stored {
                bypass = Some(row.stages[stage].value);
                break;
            }
        }
        row.stages[pu.index()].loaded = true;
        let (value, done, source) = match bypass.or(row.arch) {
            Some(v) => {
                self.stats.local_hits += 1;
                (v, now + self.config.hit_cycles, DataSource::LocalHit)
            }
            None => {
                // Fall through to the shared data cache.
                let access = self.cache.read(addr, &mut self.memory);
                if access.missed {
                    self.stats.next_level_fills += 1;
                    if self.profiler.is_active() {
                        self.profiler.note_access(
                            pu,
                            AccessProfile {
                                mem_latency: self.config.memory_cycles,
                                ..AccessProfile::default()
                            },
                        );
                    }
                    (
                        access.value,
                        now + self.config.hit_cycles + self.config.memory_cycles,
                        DataSource::NextLevel,
                    )
                } else {
                    self.stats.local_hits += 1;
                    (
                        access.value,
                        now + self.config.hit_cycles,
                        DataSource::LocalHit,
                    )
                }
            }
        };
        let source_name = match source {
            DataSource::LocalHit => "local",
            DataSource::Transfer => "transfer",
            DataSource::NextLevel => "next-level",
        };
        self.tracer
            .emit(now, Category::Access, || TraceEvent::Access {
                pu,
                task,
                op: AccessOp::Load,
                addr,
                source: source_name,
                done_at: done,
            });
        Ok(LoadOutcome {
            value,
            done_at: done,
            source,
        })
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        let task = self.task_of(pu)?;
        let row_idx = self.row_for(addr)?;
        self.stats.stores += 1;
        self.stats.local_hits += 1;
        let order = self.stage_order();
        let row = &mut self.rows[row_idx];
        row.stages[pu.index()].stored = true;
        row.stages[pu.index()].value = value;

        // Forward walk: the oldest younger stage with an exposed load, not
        // shadowed by an intervening store, is violated.
        let mut victim: Option<TaskId> = None;
        for &(stage, t) in order.iter() {
            if !task.is_older_than(t) {
                continue;
            }
            if row.stages[stage].loaded {
                victim = Some(t);
                break;
            }
            if row.stages[stage].stored && !Mutation::ArbIgnoresShadow.enabled() {
                break; // the next version shadows everything younger
            }
        }
        let done = now + self.config.hit_cycles;
        self.tracer
            .emit(now, Category::Access, || TraceEvent::Access {
                pu,
                task,
                op: AccessOp::Store,
                addr,
                source: "accepted",
                done_at: done,
            });
        if let Some(victim) = victim {
            self.stats.violations += 1;
            self.tracer
                .emit(now, Category::Task, || TraceEvent::Violation {
                    pu,
                    task,
                    victim,
                    addr,
                });
        }
        Ok(StoreOutcome {
            done_at: done,
            violation: victim.map(|victim| Violation { victim, addr }),
        })
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        // Copy the stage's stores into the architectural stage. The extra
        // stage plus the assumed high-bandwidth commit path make this a
        // single ARB operation (paper §4.4).
        for row in &mut self.rows {
            let stage = &mut row.stages[pu.index()];
            if stage.stored {
                row.arch = Some(stage.value);
            }
            *stage = Stage::default();
        }
        self.assignments.release(pu);
        now + self.config.hit_cycles
    }

    fn squash(&mut self, pu: PuId) {
        for row in &mut self.rows {
            let stage = &mut row.stages[pu.index()];
            if stage.loaded || stage.stored {
                self.stats.squash_invalidations += 1;
            }
            *stage = Stage::default();
        }
        self.assignments.release(pu);
    }

    fn profile_gauges(&self, _now: Cycle) -> MemGauges {
        MemGauges {
            outstanding_misses: 0,
            live_versions: self.speculative_rows() as u64,
        }
    }

    fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        // The address index and the row table must agree exactly.
        for (&addr, &i) in &self.index {
            if i >= self.rows.len() || self.rows[i].addr != addr {
                out.push(InvariantViolation {
                    kind: InvariantKind::Structure,
                    pu: None,
                    line: None,
                    cycle: now,
                    detail: format!("index maps {addr} to row {i}, which does not track it"),
                });
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            if !self.free.contains(&i) && self.index.get(&row.addr) != Some(&i) {
                out.push(InvariantViolation {
                    kind: InvariantKind::Structure,
                    pu: None,
                    line: None,
                    cycle: now,
                    detail: format!("row {i} tracking {} is not indexed", row.addr),
                });
            }
            // A stage with load/store bits must belong to a running task.
            for (p, stage) in row.stages.iter().enumerate() {
                if (stage.loaded || stage.stored) && self.assignments.task_of(PuId(p)).is_none() {
                    out.push(InvariantViolation {
                        kind: InvariantKind::Orphan,
                        pu: Some(PuId(p)),
                        line: None,
                        cycle: now,
                        detail: format!(
                            "stage bits for {} in the row tracking {} but no task assigned",
                            PuId(p),
                            row.addr
                        ),
                    });
                }
            }
        }
        // Free entries must be in range and must not be indexed.
        for &i in &self.free {
            if i >= self.rows.len() {
                out.push(InvariantViolation {
                    kind: InvariantKind::Structure,
                    pu: None,
                    line: None,
                    cycle: now,
                    detail: format!("free-list entry {i} is out of range"),
                });
            }
        }
        out
    }

    fn check_post_squash(&self, pu: PuId, now: Cycle) -> Vec<InvariantViolation> {
        self.rows
            .iter()
            .filter(|row| row.stages[pu.index()].loaded || row.stages[pu.index()].stored)
            .map(|row| InvariantViolation {
                kind: InvariantKind::SquashResidue,
                pu: Some(pu),
                line: None,
                cycle: now,
                detail: format!("stage bits for {} survived the squash", row.addr),
            })
            .collect()
    }

    fn drain(&mut self) {
        for row in &mut self.rows {
            if let Some(v) = row.arch.take() {
                self.cache.write(row.addr, v, &mut self.memory);
                self.stats.writebacks += 1;
            }
        }
        self.cache.flush_all(&mut self.memory);
    }

    fn architectural(&self, addr: Addr) -> Word {
        if let Some(&i) = self.index.get(&addr) {
            if let Some(v) = self.rows[i].arch {
                return v;
            }
        }
        self.cache.peek(addr, &self.memory)
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }
}

impl ModelCheckable for ArbSystem {
    fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        for pu in 0..self.config.num_pus {
            h.write_opt_u64(self.assignments.task_of(PuId(pu)).map(|t| t.0));
        }
        for &addr in addrs {
            match self.index.get(&addr) {
                None => h.write_u8(0),
                Some(&i) => {
                    h.write_u8(1);
                    let row = &self.rows[i];
                    for s in &row.stages {
                        h.write_bool(s.loaded);
                        h.write_bool(s.stored);
                        h.write_u64(s.value.0);
                    }
                    h.write_opt_u64(row.arch.map(|v| v.0));
                }
            }
            // The committed image under the row: backing cache + memory.
            h.write_u64(self.cache.peek(addr, &self.memory).0);
        }
    }
}

impl svc_types::Checkpointable for Stage {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.loaded.save_state(w);
        self.stored.save_state(w);
        self.value.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.loaded.restore_state(r)?;
        self.stored.restore_state(r)?;
        self.value.restore_state(r)
    }
}

/// Checkpoints the complete mutable ARB state: every row's stage bits,
/// values and architectural version, the address index and free list,
/// task assignments, the shared backing cache (including LRU stamps) and
/// main memory, plus accumulated stats. Configuration is not stored;
/// restore targets a freshly built system with the same [`ArbConfig`].
impl svc_types::Checkpointable for ArbSystem {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_usize(self.rows.len());
        for row in &self.rows {
            row.addr.save_state(w);
            row.stages.save_state(w);
            row.arch.save_state(w);
        }
        self.index.save_state(w);
        self.free.save_state(w);
        self.assignments.save_state(w);
        self.cache.save_state(w);
        self.memory.save_state(w);
        self.stats.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let n = r.take_usize()?;
        if n > self.config.rows {
            return Err(svc_types::CkptError::corrupt(format!(
                "{n} ARB rows exceed the configured capacity {}",
                self.config.rows
            )));
        }
        self.rows.clear();
        for _ in 0..n {
            let mut row = Row::new(Addr(0), self.config.num_pus);
            row.addr.restore_state(r)?;
            row.stages.restore_state(r)?;
            row.arch.restore_state(r)?;
            if row.stages.len() != self.config.num_pus {
                return Err(svc_types::CkptError::corrupt(format!(
                    "ARB row with {} stages, system has {} PUs",
                    row.stages.len(),
                    self.config.num_pus
                )));
            }
            self.rows.push(row);
        }
        self.index.restore_state(r)?;
        self.free.restore_state(r)?;
        for (&addr, &i) in &self.index {
            if i >= self.rows.len() || self.rows[i].addr != addr {
                return Err(svc_types::CkptError::corrupt(
                    "ARB index disagrees with the restored rows",
                ));
            }
        }
        if self.free.iter().any(|&i| i >= self.rows.len()) {
            return Err(svc_types::CkptError::corrupt(
                "ARB free-list entry out of range",
            ));
        }
        self.assignments.restore_state(r)?;
        self.cache.restore_state(r)?;
        self.memory.restore_state(r)?;
        self.stats.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb() -> ArbSystem {
        let mut a = ArbSystem::new(ArbConfig::paper(4, 1, 32));
        for i in 0..4 {
            a.assign(PuId(i), TaskId(i as u64));
        }
        a
    }

    #[test]
    fn bypass_from_closest_previous_stage() {
        let mut a = arb();
        a.store(PuId(0), Addr(4), Word(10), Cycle(0)).unwrap();
        a.store(PuId(2), Addr(4), Word(30), Cycle(0)).unwrap();
        assert_eq!(a.load(PuId(1), Addr(4), Cycle(1)).unwrap().value, Word(10));
        assert_eq!(a.load(PuId(3), Addr(4), Cycle(1)).unwrap().value, Word(30));
    }

    #[test]
    fn violation_detection_matches_walk_semantics() {
        let mut a = arb();
        a.load(PuId(2), Addr(4), Cycle(0)).unwrap();
        let st = a.store(PuId(0), Addr(4), Word(1), Cycle(1)).unwrap();
        assert_eq!(st.violation.unwrap().victim, TaskId(2));
        // A version in between shadows the load.
        let mut a = arb();
        a.store(PuId(1), Addr(4), Word(1), Cycle(0)).unwrap();
        a.load(PuId(2), Addr(4), Cycle(1)).unwrap();
        let st = a.store(PuId(0), Addr(4), Word(2), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn own_store_then_load_is_not_exposed() {
        let mut a = arb();
        a.store(PuId(2), Addr(4), Word(9), Cycle(0)).unwrap();
        assert_eq!(a.load(PuId(2), Addr(4), Cycle(1)).unwrap().value, Word(9));
        let st = a.store(PuId(0), Addr(4), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn commit_moves_version_to_arch_stage_and_drain_to_memory() {
        let mut a = arb();
        a.store(PuId(0), Addr(4), Word(5), Cycle(0)).unwrap();
        a.commit(PuId(0), Cycle(1));
        assert_eq!(a.architectural(Addr(4)), Word(5));
        // A later task's load reads the arch stage.
        let out = a.load(PuId(1), Addr(4), Cycle(2)).unwrap();
        assert_eq!(out.value, Word(5));
        assert_eq!(out.source, DataSource::LocalHit);
        a.drain();
        assert_eq!(a.architectural(Addr(4)), Word(5));
        assert_eq!(a.memory.peek(Addr(4)), Word(5));
    }

    #[test]
    fn squash_clears_stage() {
        let mut a = arb();
        a.store(PuId(2), Addr(4), Word(9), Cycle(0)).unwrap();
        a.load(PuId(3), Addr(8), Cycle(0)).unwrap();
        a.squash(PuId(2));
        a.squash(PuId(3));
        a.assign(PuId(2), TaskId(2));
        a.assign(PuId(3), TaskId(3));
        assert_eq!(
            a.load(PuId(2), Addr(4), Cycle(1)).unwrap().value,
            Word::ZERO
        );
        let st = a.store(PuId(0), Addr(8), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
        assert_eq!(a.stats().squash_invalidations, 2);
    }

    #[test]
    fn hit_latency_is_charged_on_every_access() {
        let mut a = ArbSystem::new(ArbConfig::paper(4, 3, 32));
        a.assign(PuId(0), TaskId(0));
        a.store(PuId(0), Addr(4), Word(1), Cycle(0)).unwrap();
        let out = a.load(PuId(0), Addr(4), Cycle(10)).unwrap();
        assert_eq!(out.done_at, Cycle(13), "3-cycle shared-structure latency");
    }

    #[test]
    fn cache_miss_adds_memory_penalty() {
        let mut a = ArbSystem::new(ArbConfig::paper(4, 1, 32));
        a.assign(PuId(0), TaskId(0));
        let out = a.load(PuId(0), Addr(4), Cycle(0)).unwrap();
        assert_eq!(out.source, DataSource::NextLevel);
        assert_eq!(out.done_at, Cycle(11));
        assert_eq!(a.stats().next_level_fills, 1);
        // Same line now hits in the shared cache for any PU.
        a.assign(PuId(1), TaskId(1));
        let out = a.load(PuId(1), Addr(5), Cycle(20)).unwrap();
        assert_eq!(out.source, DataSource::LocalHit);
    }

    #[test]
    fn rows_exhaust_into_structural_stall() {
        let mut cfg = ArbConfig::paper(2, 1, 32);
        cfg.rows = 2;
        let mut a = ArbSystem::new(cfg);
        a.assign(PuId(0), TaskId(0));
        a.assign(PuId(1), TaskId(1));
        a.store(PuId(1), Addr(0), Word(1), Cycle(0)).unwrap();
        a.store(PuId(1), Addr(4), Word(2), Cycle(0)).unwrap();
        let err = a.store(PuId(1), Addr(8), Word(3), Cycle(0)).unwrap_err();
        assert!(matches!(err, AccessError::Structural(_)));
        // Committing task 0 does not help (rows belong to task 1), but
        // committing task 1 frees them.
        a.commit(PuId(1), Cycle(1));
        a.assign(PuId(1), TaskId(2));
        a.store(PuId(1), Addr(8), Word(3), Cycle(2)).unwrap();
    }

    #[test]
    fn watchdog_clean_then_catches_corruption() {
        let mut a = arb();
        a.store(PuId(0), Addr(4), Word(5), Cycle(0)).unwrap();
        a.load(PuId(1), Addr(4), Cycle(1)).unwrap();
        assert_eq!(a.check_invariants(Cycle(2)), Vec::new());
        a.squash(PuId(1));
        assert_eq!(a.check_post_squash(PuId(1), Cycle(3)), Vec::new());
        assert_eq!(a.check_invariants(Cycle(3)), Vec::new());
        assert!(a.fault_corrupt_row(Addr(4)));
        let found = a.check_invariants(Cycle(4));
        assert!(
            found.iter().any(|v| v.kind == InvariantKind::Structure),
            "got {found:?}"
        );
    }

    #[test]
    fn row_reclaim_flushes_arch_value() {
        let mut cfg = ArbConfig::paper(2, 1, 32);
        cfg.rows = 1;
        let mut a = ArbSystem::new(cfg);
        a.assign(PuId(0), TaskId(0));
        a.store(PuId(0), Addr(0), Word(7), Cycle(0)).unwrap();
        a.commit(PuId(0), Cycle(1));
        a.assign(PuId(0), TaskId(1));
        // New address forces reclaiming the (non-speculative) row.
        a.store(PuId(0), Addr(4), Word(8), Cycle(2)).unwrap();
        assert_eq!(a.architectural(Addr(0)), Word(7), "flushed to the cache");
    }
}
