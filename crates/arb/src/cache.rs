//! The shared L1 data cache that backs the ARB (paper §4.2: "a shared
//! data cache of 32KB or 64KB direct-mapped storage in 16-byte lines
//! backs up the ARB").

use svc_mem::{CacheArray, CacheGeometry, MainMemory, Slot};
use svc_types::{Addr, LineId, Word};

#[derive(Debug, Clone, Default)]
struct DataLine {
    line: Option<LineId>,
    dirty: bool,
    data: Vec<Word>,
}

impl Slot for DataLine {
    fn held_line(&self) -> Option<LineId> {
        self.line
    }
}

/// A conventional (non-speculative) write-back data cache over a
/// [`MainMemory`]. Used as the ARB's backing store; only committed data
/// ever enters it.
#[derive(Debug, Clone)]
pub struct SharedCache {
    array: CacheArray<DataLine>,
    fills: u64,
    writebacks: u64,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// The word read (for reads) or previously stored (for writes).
    pub value: Word,
    /// Whether the access missed and was filled from memory.
    pub missed: bool,
}

impl SharedCache {
    /// Creates a cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> SharedCache {
        SharedCache {
            array: CacheArray::new(geometry),
            fills: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        *self.array.geometry()
    }

    /// Reads one word, filling from `memory` on a miss.
    pub fn read(&mut self, addr: Addr, memory: &mut MainMemory) -> CacheAccess {
        let missed = self.ensure(addr, memory);
        let g = *self.array.geometry();
        let r = self.array.find(g.line_of(addr)).expect("just ensured");
        self.array.touch(r);
        CacheAccess {
            value: self.array.slot(r).data[g.offset(addr)],
            missed,
        }
    }

    /// Writes one word (write-allocate, write-back), filling from `memory`
    /// on a miss.
    pub fn write(&mut self, addr: Addr, value: Word, memory: &mut MainMemory) -> CacheAccess {
        let missed = self.ensure(addr, memory);
        let g = *self.array.geometry();
        let r = self.array.find(g.line_of(addr)).expect("just ensured");
        self.array.touch(r);
        let slot = self.array.slot_mut(r);
        let old = slot.data[g.offset(addr)];
        slot.data[g.offset(addr)] = value;
        slot.dirty = true;
        CacheAccess { value: old, missed }
    }

    /// The word currently visible at `addr` through cache-then-memory (no
    /// state change, no stats).
    pub fn peek(&self, addr: Addr, memory: &MainMemory) -> Word {
        let g = *self.array.geometry();
        match self.array.find(g.line_of(addr)) {
            Some(r) => self.array.slot(r).data[g.offset(addr)],
            None => memory.peek(addr),
        }
    }

    /// Writes every dirty line back to `memory`.
    pub fn flush_all(&mut self, memory: &mut MainMemory) {
        let wpl = self.array.geometry().words_per_line();
        for slot in self.array.iter_mut() {
            if slot.dirty {
                let line = slot.line.expect("dirty line has a tag");
                memory.write_line_full(line, &slot.data, wpl);
                slot.dirty = false;
            }
        }
    }

    /// Number of fills from memory (misses).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Number of dirty lines written back.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Makes `addr`'s line resident; returns whether a fill was needed.
    fn ensure(&mut self, addr: Addr, memory: &mut MainMemory) -> bool {
        let g = *self.array.geometry();
        let line = g.line_of(addr);
        if self.array.find(line).is_some() {
            return false;
        }
        let r = self.array.victim_way(line);
        let victim = self.array.slot(r);
        if victim.dirty {
            let vline = victim.line.expect("dirty line has a tag");
            memory.write_line_full(vline, &victim.data, g.words_per_line());
            self.writebacks += 1;
        }
        let data = memory.read_line(line, g.words_per_line());
        *self.array.slot_mut(r) = DataLine {
            line: Some(line),
            dirty: false,
            data,
        };
        self.array.touch(r);
        self.fills += 1;
        true
    }
}

impl svc_types::Checkpointable for DataLine {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.line.save_state(w);
        self.dirty.save_state(w);
        self.data.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.line.restore_state(r)?;
        self.dirty.restore_state(r)?;
        self.data.restore_state(r)
    }
}

impl svc_types::Checkpointable for SharedCache {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.array.save_state(w);
        self.fills.save_state(w);
        self.writebacks.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.array.restore_state(r)?;
        self.fills.restore_state(r)?;
        self.writebacks.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use svc_mem::CacheGeometry;

    use super::*;

    fn setup() -> (SharedCache, MainMemory) {
        (
            SharedCache::new(CacheGeometry::new(4, 1, 4, 4)),
            MainMemory::new(),
        )
    }

    #[test]
    fn read_fills_then_hits() {
        let (mut c, mut m) = setup();
        m.write(Addr(5), Word(9));
        let a = c.read(Addr(5), &mut m);
        assert!(a.missed);
        assert_eq!(a.value, Word(9));
        let b = c.read(Addr(5), &mut m);
        assert!(!b.missed);
        assert_eq!(c.fills(), 1);
    }

    #[test]
    fn write_allocates_and_dirties() {
        let (mut c, mut m) = setup();
        let a = c.write(Addr(3), Word(7), &mut m);
        assert!(a.missed);
        assert_eq!(c.read(Addr(3), &mut m).value, Word(7));
        assert_eq!(m.peek(Addr(3)), Word::ZERO, "write-back, not through");
        c.flush_all(&mut m);
        assert_eq!(m.peek(Addr(3)), Word(7));
    }

    #[test]
    fn conflict_eviction_writes_back() {
        let (mut c, mut m) = setup();
        // Direct-mapped, 4 sets of 4-word lines: addresses 0 and 64 conflict.
        c.write(Addr(0), Word(1), &mut m);
        c.write(Addr(64), Word(2), &mut m);
        assert_eq!(c.writebacks(), 1);
        assert_eq!(m.peek(Addr(0)), Word(1));
        assert_eq!(c.peek(Addr(64), &m), Word(2));
        assert_eq!(c.peek(Addr(0), &m), Word(1), "falls through to memory");
    }
}
