//! Property-based conformance of the ARB against the oracle, over
//! arbitrary workloads, schedules and structural pressure.

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Workload};
use svc_arb::{ArbConfig, ArbSystem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn arb_matches_oracle(
        seed in 0u64..1_000_000,
        tasks in 2usize..28,
        addr_space in 4u64..48,
        pus in 2usize..5,
        hit in 1u64..5,
        // Rows must at least cover one task's maximal footprint (7 ops →
        // up to 7 distinct addresses, plus replay slack); fewer rows make
        // the workload structurally impossible, which the conformance
        // harness correctly reports as exceeding speculative capacity.
        rows in proptest::sample::select(vec![12usize, 16, 256]),
    ) {
        let wl = Workload::random(seed, tasks, addr_space, pus);
        let mut cfg = ArbConfig::paper(pus, hit, 32);
        cfg.rows = rows;
        run_lockstep(&wl, ArbSystem::new(cfg), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Density sweep: store fraction from read-mostly to write-heavy
    /// over a small address space, controlling the squash/replay rate.
    /// The ARB must track the oracle at every conflict density.
    #[test]
    fn arb_matches_oracle_at_any_conflict_density(
        seed in 0u64..1_000_000,
        tasks in 2usize..24,
        addr_space in 4u64..40,
        pus in 2usize..5,
        store_pct in 10u64..86,
    ) {
        let wl = Workload::random_with_density(
            seed, tasks, addr_space, pus, store_pct as f64 / 100.0,
        );
        run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(pus, 2, 32)), seed);
    }
}
