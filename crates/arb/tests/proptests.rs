//! Property-based conformance of the ARB against the oracle, over
//! arbitrary workloads, schedules and structural pressure — plus
//! watchdog properties: silent on healthy runs, corruption always
//! caught.

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Watched, Workload};
use svc_arb::{ArbConfig, ArbSystem};
use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn arb_matches_oracle(
        seed in 0u64..1_000_000,
        tasks in 2usize..28,
        addr_space in 4u64..48,
        pus in 2usize..5,
        hit in 1u64..5,
        // Rows must at least cover one task's maximal footprint (7 ops →
        // up to 7 distinct addresses, plus replay slack); fewer rows make
        // the workload structurally impossible, which the conformance
        // harness correctly reports as exceeding speculative capacity.
        rows in proptest::sample::select(vec![12usize, 16, 256]),
    ) {
        let wl = Workload::random(seed, tasks, addr_space, pus);
        let mut cfg = ArbConfig::paper(pus, hit, 32);
        cfg.rows = rows;
        run_lockstep(&wl, ArbSystem::new(cfg), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Density sweep: store fraction from read-mostly to write-heavy
    /// over a small address space, controlling the squash/replay rate.
    /// The ARB must track the oracle at every conflict density.
    #[test]
    fn arb_matches_oracle_at_any_conflict_density(
        seed in 0u64..1_000_000,
        tasks in 2usize..24,
        addr_space in 4u64..40,
        pus in 2usize..5,
        store_pct in 10u64..86,
    ) {
        let wl = Workload::random_with_density(
            seed, tasks, addr_space, pus, store_pct as f64 / 100.0,
        );
        run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(pus, 2, 32)), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ARB watchdog stays silent across whole healthy executions:
    /// `Watched` sweeps `check_invariants` after every operation and
    /// panics on the first violation, so completing the lockstep run IS
    /// the assertion.
    #[test]
    fn arb_watchdog_is_silent_on_healthy_runs(
        seed in 0u64..1_000_000,
        tasks in 2usize..20,
        addr_space in 4u64..40,
        pus in 2usize..5,
        store_pct in 10u64..86,
    ) {
        let wl = Workload::random_with_density(
            seed, tasks, addr_space, pus, store_pct as f64 / 100.0,
        );
        run_lockstep(&wl, Watched(ArbSystem::new(ArbConfig::paper(pus, 2, 32))), seed);
    }

    /// A corrupted row (address flipped under the index) is caught from
    /// ANY reachable speculative state.
    #[test]
    fn arb_corrupted_row_is_always_caught(
        seed in 0u64..1_000_000,
        pus in 2usize..5,
        ops in 1usize..24,
    ) {
        let mut arb = ArbSystem::new(ArbConfig::paper(pus, 1, 32));
        let wl = Workload::random(seed, pus, 24, pus);
        let mut now = Cycle(0);
        for (i, task) in wl.tasks.iter().enumerate() {
            let pu = PuId(i);
            arb.assign(pu, TaskId(i as u64));
            for op in task.iter().take(ops) {
                now += 1;
                match *op {
                    svc::conformance::Op::Load(a) => { let _ = arb.load(pu, a, now); }
                    svc::conformance::Op::Store(a, _) => {
                        let _ = arb.store(pu, a, Word(i as u64 + 1), now);
                    }
                }
            }
        }
        prop_assume!(arb.check_invariants(now).is_empty());
        let hit = (0..24u64).any(|a| arb.fault_corrupt_row(Addr(a)));
        prop_assume!(hit);
        prop_assert!(
            !arb.check_invariants(now).is_empty(),
            "corrupted ARB row escaped the watchdog"
        );
    }
}
