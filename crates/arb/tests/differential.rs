//! The ARB must agree with the `IdealMemory` oracle on load values,
//! violation victims and final architectural memory (DESIGN.md invariant
//! 5): both the SVC and the ARB approximate the same abstract versioned
//! memory, which is what makes their experimental comparison meaningful.

use svc::conformance::{run_lockstep, Workload};
use svc_arb::{ArbConfig, ArbSystem};

#[test]
fn differential_small_hot_set() {
    let mut squashes = 0;
    for seed in 0..30 {
        let wl = Workload::random(seed, 24, 8, 4);
        for hit in [1, 2, 4] {
            squashes += run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(4, hit, 32)), seed);
        }
    }
    assert!(squashes > 30, "hot set should squash (got {squashes})");
}

#[test]
fn differential_medium_address_space() {
    for seed in 100..120 {
        let wl = Workload::random(seed, 40, 128, 4);
        run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(4, 1, 32)), seed);
    }
}

#[test]
fn differential_row_pressure() {
    // Few rows force reclaims and structural stalls mid-run.
    for seed in 200..210 {
        let wl = Workload::random(seed, 30, 64, 4);
        let mut cfg = ArbConfig::paper(4, 1, 32);
        cfg.rows = 8;
        run_lockstep(&wl, ArbSystem::new(cfg), seed);
    }
}

#[test]
fn differential_two_and_eight_pus() {
    for seed in 300..310 {
        for pus in [2usize, 8] {
            let wl = Workload::random(seed, 30, 32, pus);
            run_lockstep(&wl, ArbSystem::new(ArbConfig::paper(pus, 2, 32)), seed);
        }
    }
}
