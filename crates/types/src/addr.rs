use core::fmt;
use core::ops::{Add, Sub};

/// A word-granularity memory address.
///
/// The paper's caches disambiguate at byte granularity; this reproduction
/// disambiguates at *word* granularity, the unit at which the synthetic
/// workloads read and write values. One `Addr` names one [`crate::Word`] of
/// storage. Cache geometry (line size, sub-blocks) is expressed in words.
///
/// # Example
///
/// ```
/// use svc_types::Addr;
/// let a = Addr(0x13);
/// assert_eq!(a.line(4), svc_types::LineId(0x4));
/// assert_eq!(a.offset_in_line(4), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The line (address-block) this word falls into, for a line of
    /// `words_per_line` words.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero.
    #[inline]
    pub fn line(self, words_per_line: usize) -> LineId {
        assert!(words_per_line > 0, "line size must be non-zero");
        LineId(self.0 / words_per_line as u64)
    }

    /// Offset of this word within its line, in words.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero.
    #[inline]
    pub fn offset_in_line(self, words_per_line: usize) -> usize {
        assert!(words_per_line > 0, "line size must be non-zero");
        (self.0 % words_per_line as u64) as usize
    }

    /// Returns the address `n` words after this one.
    #[inline]
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a cache line (an *address block* in the paper's §3.7
/// terminology): the word address divided by the line size.
///
/// A `LineId` is only meaningful together with the line size that produced
/// it; all components of one simulation share a single geometry, so this is
/// not carried in the type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineId(pub u64);

impl LineId {
    /// The address of word `offset` within this line.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= words_per_line`.
    #[inline]
    pub fn word(self, offset: usize, words_per_line: usize) -> Addr {
        assert!(
            offset < words_per_line,
            "offset {offset} outside line of {words_per_line} words"
        );
        Addr(self.0 * words_per_line as u64 + offset as u64)
    }

    /// The address of the first word of this line.
    #[inline]
    pub fn first_word(self, words_per_line: usize) -> Addr {
        Addr(self.0 * words_per_line as u64)
    }
}

impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineId({:#x})", self.0)
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset_roundtrip() {
        for wpl in [1usize, 2, 4, 8] {
            for raw in [0u64, 1, 7, 63, 64, 1000] {
                let a = Addr(raw);
                let line = a.line(wpl);
                let off = a.offset_in_line(wpl);
                assert_eq!(line.word(off, wpl), a, "wpl={wpl} raw={raw}");
            }
        }
    }

    #[test]
    fn word_line_size_one_is_identity() {
        let a = Addr(42);
        assert_eq!(a.line(1).0, 42);
        assert_eq!(a.offset_in_line(1), 0);
    }

    #[test]
    fn first_word_is_offset_zero() {
        let l = LineId(5);
        assert_eq!(l.first_word(4), l.word(0, 4));
        assert_eq!(l.first_word(4), Addr(20));
    }

    #[test]
    #[should_panic(expected = "outside line")]
    fn word_offset_out_of_range_panics() {
        LineId(0).word(4, 4);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Addr(10) + 5, Addr(15));
        assert_eq!(Addr(10) - 5, Addr(5));
        assert_eq!(Addr(10).offset(3), Addr(13));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{:?}", Addr(255)), "Addr(0xff)");
        assert_eq!(format!("{}", LineId(16)), "L0x10");
    }
}
