//! Seeded protocol mutations for mutation-testing the model checker.
//!
//! `SVC_MUTATE=<site>` activates exactly one deliberately-broken protocol
//! rule behind a test-only hook at a pinpointed site in the SVC, ARB or
//! SMP implementation. The model checker (`svc-check`) must detect every
//! site — that is the proof that its invariant and conformance oracles
//! have teeth. With the variable unset (every production run, every test
//! not explicitly spawning a mutant child process) the hooks are inert
//! and behavior is bit-identical to the unmutated code.
//!
//! The environment is read once per process via [`std::sync::OnceLock`],
//! so a hook costs one relaxed load on the hot paths it guards.

use std::sync::OnceLock;

/// One seeded protocol bug. Each variant names the rule it breaks and the
/// implementation site that hosts the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// `SvcSystem::commit` (lazy designs): the flash-commit keeps the
    /// per-sub-block L bits instead of clearing them, so committed lines
    /// keep reporting stale use-before-define dependences.
    CommitKeepsLoadBits,
    /// `SvcSystem::squash_at`: a squashed task's speculative lines
    /// survive the squash instead of being invalidated.
    SquashKeepsLine,
    /// `SvcSystem` load paths: an exposed load does not set its L bit,
    /// so a later store by an older task misses the dependence violation.
    LoadSkipsLBit,
    /// `SvcSystem::apply_write_plan`: a store skips the per-sub-block
    /// invalidation of stale copies in other caches.
    StoreSkipsInvalidation,
    /// `SvcSystem::rewrite_pointers`: the Version Ordering List pointers
    /// are spliced in reverse order, corrupting version order.
    VolSpliceBackwards,
    /// `ArbSystem::store`: the forward violation walk ignores the
    /// shadowing store of an intervening version, reporting spurious
    /// violations against shielded loads.
    ArbIgnoresShadow,
    /// `SmpSystem::bus_write`: a BusWrite does not invalidate clean
    /// copies in other caches, leaving stale data readable.
    SmpDropInvalidate,
}

impl Mutation {
    /// Every seeded mutation site, in a fixed documented order.
    pub const ALL: [Mutation; 7] = [
        Mutation::CommitKeepsLoadBits,
        Mutation::SquashKeepsLine,
        Mutation::LoadSkipsLBit,
        Mutation::StoreSkipsInvalidation,
        Mutation::VolSpliceBackwards,
        Mutation::ArbIgnoresShadow,
        Mutation::SmpDropInvalidate,
    ];

    /// The `SVC_MUTATE` key naming this site.
    pub fn key(self) -> &'static str {
        match self {
            Mutation::CommitKeepsLoadBits => "commit-keeps-load-bits",
            Mutation::SquashKeepsLine => "squash-keeps-line",
            Mutation::LoadSkipsLBit => "load-skips-l-bit",
            Mutation::StoreSkipsInvalidation => "store-skips-invalidation",
            Mutation::VolSpliceBackwards => "vol-splice-backwards",
            Mutation::ArbIgnoresShadow => "arb-ignores-shadow",
            Mutation::SmpDropInvalidate => "smp-drop-invalidate",
        }
    }

    /// Parses an `SVC_MUTATE` key.
    pub fn from_key(key: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.key() == key)
    }

    /// The mutation this process runs with, if any.
    ///
    /// # Panics
    ///
    /// Panics (once, at first query) if `SVC_MUTATE` names an unknown
    /// site — a silent typo would make a mutation-kill run vacuous.
    pub fn active() -> Option<Mutation> {
        static ACTIVE: OnceLock<Option<Mutation>> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let key = std::env::var("SVC_MUTATE").ok()?;
            if key.is_empty() {
                return None;
            }
            match Mutation::from_key(&key) {
                Some(m) => Some(m),
                None => panic!(
                    "SVC_MUTATE={key:?} names no mutation site; known sites: {}",
                    Mutation::ALL.map(|m| m.key()).join(", ")
                ),
            }
        })
    }

    /// Whether this particular site is active in this process.
    #[inline]
    pub fn enabled(self) -> bool {
        Mutation::active() == Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::from_key(m.key()), Some(m));
        }
        assert_eq!(Mutation::from_key("no-such-site"), None);
    }

    #[test]
    fn inert_without_env() {
        // The test harness never sets SVC_MUTATE, so every site is off.
        // (Mutant children are spawned as separate processes.)
        assert_eq!(Mutation::active(), None);
        assert!(!Mutation::VolSpliceBackwards.enabled());
    }
}
