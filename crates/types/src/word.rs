use core::fmt;

/// A machine word of data — the unit of storage named by one [`crate::Addr`].
///
/// Memory is initialised to `Word::ZERO`; workload generators write
/// distinguishable values so that the correctness checks (sequential
/// semantics, SVC-vs-ARB architectural equivalence) can compare final
/// memory images word by word.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Word(pub u64);

impl Word {
    /// The all-zero word, the initial content of every memory location.
    pub const ZERO: Word = Word(0);
}

impl From<u64> for Word {
    #[inline]
    fn from(v: u64) -> Word {
        Word(v)
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#x})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Word::default(), Word::ZERO);
        assert_eq!(Word::ZERO.0, 0);
    }

    #[test]
    fn formatting() {
        let w = Word(0xab);
        assert_eq!(format!("{w}"), "0xab");
        assert_eq!(format!("{w:x}"), "ab");
        assert_eq!(format!("{w:X}"), "AB");
        assert_eq!(format!("{w:b}"), "10101011");
        assert_eq!(format!("{w:o}"), "253");
        assert_eq!(format!("{w:?}"), "Word(0xab)");
    }

    #[test]
    fn conversion() {
        assert_eq!(Word::from(5u64), Word(5));
    }
}
