use core::fmt;

/// Identifier of a processing unit (PU) and, equivalently, of its private
/// L1 cache.
///
/// The paper's examples name PUs `W`, `X`, `Y`, `Z`; here they are dense
/// indices `0..num_pus`. The Version Ordering List pointers in SVC lines
/// identify PUs (not tasks), exactly as in the paper §3.2: "the pointer
/// identifies a PU rather than a task because identifying a dynamic task
/// would require an infinite number of tags".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PuId(pub usize);

impl PuId {
    /// Index into per-PU arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for PuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PU{}", self.0)
    }
}

impl fmt::Display for PuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PU{}", self.0)
    }
}

impl From<usize> for PuId {
    #[inline]
    fn from(v: usize) -> PuId {
        PuId(v)
    }
}

/// Identifier of a dynamic task: its position in the dynamic task sequence
/// (paper §2.1).
///
/// Smaller ids are older tasks; the task with the smallest id among the
/// currently executing tasks is the *head* (non-speculative) task. Ids are
/// never reused within a run, including across squashes — a squashed task
/// that is re-dispatched keeps the same position in the program but receives
/// the same `TaskId`, since the id *is* the program position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The task immediately after this one in program order.
    #[inline]
    pub fn next(self) -> TaskId {
        TaskId(self.0 + 1)
    }

    /// Whether `self` precedes `other` in program order (is older).
    #[inline]
    pub fn is_older_than(self, other: TaskId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TaskId {
    #[inline]
    fn from(v: u64) -> TaskId {
        TaskId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_order() {
        assert!(TaskId(3).is_older_than(TaskId(4)));
        assert!(!TaskId(4).is_older_than(TaskId(4)));
        assert!(!TaskId(5).is_older_than(TaskId(4)));
        assert_eq!(TaskId(3).next(), TaskId(4));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", PuId(2)), "PU2");
        assert_eq!(format!("{}", TaskId(9)), "T9");
        assert_eq!(format!("{:?}", PuId(2)), "PU2");
    }

    #[test]
    fn pu_index() {
        assert_eq!(PuId(7).index(), 7);
        assert_eq!(PuId::from(3), PuId(3));
        assert_eq!(TaskId::from(3), TaskId(3));
    }
}
