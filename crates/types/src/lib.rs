//! Shared vocabulary types for the Speculative Versioning Cache (SVC)
//! reproduction.
//!
//! This crate defines the types that every subsystem of the reproduction
//! speaks: word [`Addr`]esses and [`Word`] values, [`PuId`]/[`TaskId`]
//! identifiers, the [`Cycle`] clock, the [`TaskAssignments`] table that
//! captures the *implicit total order among processing units* (paper §2.1),
//! the [`VersionedMemory`] trait implemented by every speculative memory
//! system (the SVC, the ARB baseline, and the ideal memory), and the
//! [`MemStats`] block each of them reports.
//!
//! Keeping these in a leaf crate lets the execution engine
//! (`svc-multiscalar`) stay generic over the memory system, which is what
//! allows a single experiment harness to regenerate every table and figure
//! of the paper.
//!
//! # Example
//!
//! ```
//! use svc_types::{Addr, PuId, TaskId, TaskAssignments};
//!
//! let mut asg = TaskAssignments::new(4);
//! asg.assign(PuId(0), TaskId(7));
//! asg.assign(PuId(2), TaskId(5));
//! // PU 2 runs the older task, so it precedes PU 0 in program order.
//! assert_eq!(asg.program_order(), vec![PuId(2), PuId(0)]);
//! assert_eq!(asg.head(), Some(PuId(2)));
//! let a = Addr(0x40);
//! assert_eq!(a.line(4).first_word(4), Addr(0x40));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod assignment;
mod checkable;
pub mod ckpt;
mod fingerprint;
mod ids;
mod invariant;
pub mod mutate;
mod stats;
mod time;
mod versioned;
mod word;

pub use addr::{Addr, LineId};
pub use assignment::{PuOrder, TaskAssignments};
pub use checkable::ModelCheckable;
pub use ckpt::{Checkpointable, CkptError, CkptReader, CkptWriter};
pub use fingerprint::StateHasher;
pub use ids::{PuId, TaskId};
pub use invariant::{InvariantKind, InvariantViolation};
pub use mutate::Mutation;
pub use stats::MemStats;
pub use time::Cycle;
pub use versioned::{
    AccessError, DataSource, LoadOutcome, MemGauges, PlanToken, PlannedOp, StoreOutcome,
    VersionedMemory, Violation,
};
pub use word::Word;
