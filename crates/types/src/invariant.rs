use core::fmt;

use crate::{Cycle, LineId, PuId};

/// Which protocol invariant a watchdog check found broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A Version Ordering List's `next` pointers form a cycle, or a PU
    /// appears more than once in the derived order.
    VolCycle,
    /// The VOL's uncommitted suffix is not in program (task) order, or a
    /// valid copy is missing from the derived order.
    VolOrder,
    /// An uncommitted valid line has no task assigned to its PU, so it
    /// has no place in program order.
    Orphan,
    /// A line's state bits form an illegal combination (e.g. store or
    /// load bits outside the valid mask, a committed line with L bits).
    StateBits,
    /// More than one cache claims exclusive/dirty ownership where the
    /// protocol allows at most one.
    Ownership,
    /// Speculative state survived a squash that should have cleared it.
    SquashResidue,
    /// An internal structure (index, free list, row table) is
    /// inconsistent with itself.
    Structure,
}

impl InvariantKind {
    /// Short stable name used in traces, reports and campaign output.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::VolCycle => "vol_cycle",
            InvariantKind::VolOrder => "vol_order",
            InvariantKind::Orphan => "orphan",
            InvariantKind::StateBits => "state_bits",
            InvariantKind::Ownership => "ownership",
            InvariantKind::SquashResidue => "squash_residue",
            InvariantKind::Structure => "structure",
        }
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured invariant violation reported by a watchdog check.
///
/// Watchdogs return these instead of panicking, so a violation can feed
/// forensics (trace event + causal line report) and surface as a distinct
/// process exit code rather than tearing the whole experiment grid down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// The PU/cache involved, if attributable.
    pub pu: Option<PuId>,
    /// The line involved, if attributable.
    pub line: Option<LineId>,
    /// The cycle at which the check ran.
    pub cycle: Cycle,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {}", self.cycle.0, self.kind)?;
        if let Some(pu) = self.pu {
            write!(f, " {pu}")?;
        }
        if let Some(line) = self.line {
            write!(f, " line {}", line.0)?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site() {
        let v = InvariantViolation {
            kind: InvariantKind::StateBits,
            pu: Some(PuId(2)),
            line: Some(LineId(7)),
            cycle: Cycle(40),
            detail: "store mask 0b10 outside valid 0b01".to_string(),
        };
        let s = format!("{v}");
        assert!(s.contains("state_bits"));
        assert!(s.contains("PU2"));
        assert!(s.contains("line 7"));
        assert!(s.contains("cycle 40"));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(InvariantKind::VolCycle.name(), "vol_cycle");
        assert_eq!(InvariantKind::SquashResidue.name(), "squash_residue");
    }
}
