use core::fmt;

use crate::{Addr, Cycle, InvariantViolation, MemStats, PuId, TaskId, Word};

/// Where the data answering a load came from. Feeds the miss-ratio
/// accounting of Table 2: for the SVC "an access is counted as a miss if
/// data is supplied by the next level memory; data transfers between the L1
/// caches are not counted as misses" (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Satisfied locally (private-cache or buffer hit); no bus/interconnect
    /// transfer of data was needed.
    LocalHit,
    /// Supplied by another L1 cache over the snooping bus (cache-to-cache
    /// transfer), or by a non-architectural buffer stage. Not a miss in the
    /// paper's accounting.
    Transfer,
    /// Supplied by the next level of the memory hierarchy. Counted as a miss.
    NextLevel,
}

/// A detected memory-dependence violation (paper §2.2.2): a store from an
/// older task reached a line that a younger task had loaded before storing
/// (its L bit was set), so that younger load consumed a stale version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The oldest task whose load was incorrect. Under the paper's simple
    /// squash model, this task **and every younger executing task** must be
    /// squashed and re-executed.
    pub victim: TaskId,
    /// The line-aligned word address on which the violation was detected.
    pub addr: Addr,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependence violation at {} squashing {}+",
            self.addr, self.victim
        )
    }
}

/// Outcome of a load issued to a [`VersionedMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// The value of the closest previous version in program order
    /// (paper §2.2.1).
    pub value: Word,
    /// Cycle at which the value is available to the issuing PU.
    pub done_at: Cycle,
    /// Who supplied the data.
    pub source: DataSource,
}

/// Outcome of a store issued to a [`VersionedMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// Cycle at which the store has been ordered by the memory system (the
    /// issuing PU may proceed).
    pub done_at: Cycle,
    /// A memory-dependence violation detected while communicating this store
    /// to later tasks, if any. The execution engine must squash
    /// `violation.victim` and all younger tasks.
    pub violation: Option<Violation>,
}

/// Errors reported by a [`VersionedMemory`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccessError {
    /// The PU has no task assigned, so the access has no place in program
    /// order.
    NoTask(PuId),
    /// A speculative (non-head) cache had to replace a line that still
    /// carries versioning state, and the configuration forbids stalling.
    /// "Other caches cannot replace a valid line because it contains
    /// information necessary to guarantee correct execution" (paper §3.2.5).
    ReplacementStall {
        /// The cache that could not find a victim.
        pu: PuId,
        /// The line that needed space.
        addr: Addr,
    },
    /// A structural resource (e.g. ARB row capacity) was exhausted and the
    /// request cannot be accepted this cycle.
    Structural(&'static str),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NoTask(pu) => write!(f, "{pu} has no assigned task"),
            AccessError::ReplacementStall { pu, addr } => {
                write!(f, "{pu} cannot replace a speculative line for {addr}")
            }
            AccessError::Structural(what) => write!(f, "structural hazard: {what}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Point-in-time occupancy gauges sampled by the cycle-accounting
/// profiler's interval time series (see `svc_sim::profile`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemGauges {
    /// Fills still outstanding across all MSHR files (or the equivalent
    /// non-blocking-miss structures) at the sample point.
    pub outstanding_misses: u64,
    /// Live speculative versions: uncommitted VOL entries / speculative
    /// lines (SVC), speculative rows (ARB). Zero for systems without
    /// versioning state.
    pub live_versions: u64,
}

/// A memory operation the execution engine predicts it will issue this
/// cycle, handed to [`VersionedMemory::plan_batch`] so the memory system
/// can precompute its pure decision products on worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedOp {
    /// A load of `addr`.
    Load(Addr),
    /// A store of the value to `addr`.
    Store(Addr, Word),
}

impl PlannedOp {
    /// The address the operation touches.
    pub fn addr(&self) -> Addr {
        match *self {
            PlannedOp::Load(a) | PlannedOp::Store(a, _) => a,
        }
    }
}

/// An opaque precomputed plan for one [`PlannedOp`], returned by
/// [`VersionedMemory::plan_batch`] and redeemed through
/// [`VersionedMemory::load_planned`] / [`VersionedMemory::store_planned`].
///
/// The `set` index is the conflict-granularity key: the engine refuses to
/// redeem a token whose set has already been touched by an earlier memory
/// operation in the same cycle, and falls back to the plain `load`/`store`
/// path instead. Redeeming a token is therefore always *semantically
/// identical* to not having planned at all — planning only moves pure
/// computation off the apply path.
pub struct PlanToken {
    /// Conflict-set index of the planned address (see
    /// [`VersionedMemory::conflict_set`]).
    pub set: usize,
    /// The memory system's private plan payload.
    pub payload: Box<dyn core::any::Any + Send>,
}

impl fmt::Debug for PlanToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanToken")
            .field("set", &self.set)
            .finish_non_exhaustive()
    }
}

/// A memory system that supports *speculative versioning*: buffering
/// multiple uncommitted versions per location, supplying loads with the
/// closest previous version, detecting memory-dependence violations, and
/// committing/squashing whole tasks (paper Table 1).
///
/// Implemented by the SVC (`svc` crate), the ARB baseline (`svc-arb`), the
/// ideal one-cycle memory, and the non-speculative MRSW baseline used in
/// tests. The multiscalar execution engine is generic over this trait, which
/// is what lets one harness regenerate every experiment in the paper.
///
/// # Protocol expected of the caller
///
/// 1. [`assign`](VersionedMemory::assign) a task to a PU before issuing any
///    access from it.
/// 2. Issue [`load`](VersionedMemory::load)s and
///    [`store`](VersionedMemory::store)s with a non-decreasing `now`;
///    loads and stores from the same PU to the same address arrive in
///    program order (the paper assumes a conventional load/store queue in
///    front of each cache, §3.2).
/// 3. On a reported [`Violation`], [`squash`](VersionedMemory::squash) the
///    victim task's PU and every PU running a younger task, then re-`assign`.
/// 4. Only the head task may [`commit`](VersionedMemory::commit).
/// 5. After the run, [`drain`](VersionedMemory::drain) to push all committed
///    state to the next level, then read it back with
///    [`architectural`](VersionedMemory::architectural).
pub trait VersionedMemory {
    /// Number of processing units (private caches / buffer stages).
    fn num_pus(&self) -> usize;

    /// Records that `pu` now executes `task`. Must be called before any
    /// access from `pu`, and again after every commit or squash.
    fn assign(&mut self, pu: PuId, task: TaskId);

    /// Executes a load from `pu`'s current task.
    ///
    /// # Errors
    ///
    /// See [`AccessError`].
    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError>;

    /// Executes a store from `pu`'s current task, creating a new speculative
    /// version of `addr`.
    ///
    /// # Errors
    ///
    /// See [`AccessError`].
    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError>;

    /// Precomputes pure decision products for a batch of predicted memory
    /// operations, optionally fanning the work out over `threads` threads.
    /// Purely advisory: a `None` return (the default, used by systems
    /// without a planner) means the caller issues every operation through
    /// the plain [`load`](VersionedMemory::load)/
    /// [`store`](VersionedMemory::store) path. A `Some` return carries one
    /// [`PlanToken`] per job, in job order; redeeming a token through
    /// [`load_planned`](VersionedMemory::load_planned) /
    /// [`store_planned`](VersionedMemory::store_planned) must produce
    /// *exactly* the outcome, state mutations, and observable events the
    /// plain path would — planning may only relocate pure computation.
    fn plan_batch(&mut self, threads: usize, jobs: &[(PuId, PlannedOp)]) -> Option<Vec<PlanToken>> {
        let _ = (threads, jobs);
        None
    }

    /// The conflict-set index of `addr`: two addresses with different
    /// indices are guaranteed not to share any state a
    /// [`plan_batch`](VersionedMemory::plan_batch) plan depends on, so a
    /// plan for one stays valid after an access to the other. The default
    /// maps everything to set 0 (maximally conservative).
    fn conflict_set(&self, addr: Addr) -> usize {
        let _ = addr;
        0
    }

    /// [`load`](VersionedMemory::load) with a precomputed plan from
    /// [`plan_batch`](VersionedMemory::plan_batch). The default drops the
    /// token and takes the plain path.
    fn load_planned(
        &mut self,
        pu: PuId,
        addr: Addr,
        now: Cycle,
        plan: PlanToken,
    ) -> Result<LoadOutcome, AccessError> {
        let _ = plan;
        self.load(pu, addr, now)
    }

    /// [`store`](VersionedMemory::store) with a precomputed plan from
    /// [`plan_batch`](VersionedMemory::plan_batch). The default drops the
    /// token and takes the plain path.
    fn store_planned(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
        plan: PlanToken,
    ) -> Result<StoreOutcome, AccessError> {
        let _ = plan;
        self.store(pu, addr, value, now)
    }

    /// Commits `pu`'s task: its speculative versions become architectural
    /// (paper §2.2.3). Returns the cycle at which the commit completes —
    /// one cycle for the SVC's flash-set of C bits, potentially many for the
    /// base design's writeback burst. The PU's assignment is released.
    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle;

    /// Squashes `pu`'s task: its buffered speculative versions are
    /// invalidated (paper §2.2.3). The PU's assignment is released.
    fn squash(&mut self, pu: PuId);

    /// [`squash`](VersionedMemory::squash) with the current cycle, so
    /// implementations can stamp trace events. The default ignores `now`.
    fn squash_at(&mut self, pu: PuId, now: Cycle) {
        let _ = now;
        self.squash(pu);
    }

    /// Runs this memory system's invariant watchdog: protocol-level
    /// consistency checks over the complete speculative state (e.g. VOL
    /// acyclicity, state-bit legality, unique ownership). Returns every
    /// violation found instead of panicking, so callers can feed
    /// forensics and keep running. The default (used by implementations
    /// without a watchdog, like the ideal memory) reports nothing.
    fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        let _ = now;
        Vec::new()
    }

    /// Runs the post-squash cleanliness check for `pu`: immediately after
    /// [`squash`](VersionedMemory::squash) no speculative state of the
    /// squashed task may survive in `pu`'s cache/stage. The default
    /// reports nothing.
    fn check_post_squash(&self, pu: PuId, now: Cycle) -> Vec<InvariantViolation> {
        let _ = (pu, now);
        Vec::new()
    }

    /// Point-in-time occupancy gauges for the profiler's interval
    /// sampler. The default (systems without MSHRs or versioning state)
    /// reports zeros.
    fn profile_gauges(&self, now: Cycle) -> MemGauges {
        let _ = now;
        MemGauges::default()
    }

    /// Forces all committed state out to the next level of memory, so that
    /// [`architectural`](VersionedMemory::architectural) reflects every
    /// committed store. Used at end-of-run by correctness checks.
    fn drain(&mut self);

    /// Reads the architectural (committed) value of `addr`. Only meaningful
    /// for addresses whose versions have been committed and
    /// [`drain`](VersionedMemory::drain)ed.
    fn architectural(&self, addr: Addr) -> Word;

    /// Snapshot of this memory system's statistics.
    fn stats(&self) -> MemStats;

    /// Resets all statistics to zero (e.g. after warm-up).
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation {
            victim: TaskId(2),
            addr: Addr(0x10),
        };
        assert_eq!(format!("{v}"), "dependence violation at 0x10 squashing T2+");
    }

    #[test]
    fn access_error_display() {
        assert_eq!(
            format!("{}", AccessError::NoTask(PuId(1))),
            "PU1 has no assigned task"
        );
        let e = AccessError::ReplacementStall {
            pu: PuId(0),
            addr: Addr(4),
        };
        assert!(format!("{e}").contains("cannot replace"));
        assert!(format!("{}", AccessError::Structural("arb rows")).contains("arb rows"));
    }

    #[test]
    fn error_trait_object() {
        // AccessError must be usable as a boxed error (C-GOOD-ERR).
        fn takes_err(_e: Box<dyn std::error::Error + Send + Sync>) {}
        takes_err(Box::new(AccessError::NoTask(PuId(0))));
    }
}
