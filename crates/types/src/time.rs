use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point on the simulated clock, in processor cycles.
///
/// The whole reproduction is cycle-stepped: components receive the current
/// `Cycle` with each request and answer with the cycle at which the request
/// completes. `Cycle` is also used for durations where the meaning is clear
/// from context (e.g. `Cycle(3)` as "three cycles of bus occupancy").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Cycle zero, the start of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The later of two cycles.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating difference `self - other`, as a number of cycles.
    #[inline]
    pub fn since(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle(5) + 3, Cycle(8));
        assert_eq!(Cycle(8) - Cycle(5), 3);
        let mut c = Cycle(1);
        c += 2;
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn max_and_since() {
        assert_eq!(Cycle(5).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(9).max(Cycle(5)), Cycle(9));
        assert_eq!(Cycle(9).since(Cycle(5)), 4);
        assert_eq!(Cycle(5).since(Cycle(9)), 0, "since saturates");
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Cycle(7)), "cycle 7");
        assert_eq!(format!("{:?}", Cycle(7)), "@7");
    }
}
