//! Crash-safe checkpoint serialization: the [`Checkpointable`] trait and
//! its byte-level writer/reader.
//!
//! Every stateful simulator component implements [`Checkpointable`] so a
//! run can be frozen mid-flight and resumed byte-identically. The format
//! is deliberately dumb: fixed-width little-endian scalars, length-
//! prefixed sequences, no self-description — the schema *is* the code,
//! and the `svc-checkpoint/v1` container (in `svc_sim::checkpoint`)
//! carries a version tag plus an FNV-1a checksum so torn or stale files
//! are detected, never misinterpreted.
//!
//! Restore is *mutating*: state is read back into an object already
//! constructed from its configuration. That keeps non-serialized
//! attachments (tracer/fault/profiler handles, epoch sinks) alive across
//! a restore and means a checkpoint never has to describe configuration
//! that the resuming process already knows.
//!
//! Determinism contract: for the same logical state, `save_state` must
//! produce identical bytes on every platform and run. Implementations
//! that serialize hash maps must therefore iterate keys in sorted order
//! (see the `HashMap` impl here).

use std::collections::HashMap;

use crate::{Addr, Cycle, InvariantKind, InvariantViolation, LineId, MemStats, PuId, TaskId, Word};

/// Why a checkpoint payload failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The payload ended before a read completed (torn/truncated data).
    Truncated,
    /// A value decoded but failed validation (bad tag, length mismatch,
    /// config disagreement).
    Corrupt(String),
}

impl CkptError {
    /// A [`CkptError::Corrupt`] with a formatted message.
    pub fn corrupt(msg: impl Into<String>) -> CkptError {
        CkptError::Corrupt(msg.into())
    }
}

impl core::fmt::Display for CkptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint payload truncated"),
            CkptError::Corrupt(msg) => write!(f, "checkpoint payload corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Serializer for checkpoint payloads: an append-only byte buffer with
/// fixed-width little-endian primitives.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// An empty writer.
    pub fn new() -> CkptWriter {
        CkptWriter::default()
    }

    /// The serialized bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Serializes any [`Checkpointable`] value.
    pub fn save<T: Checkpointable + ?Sized>(&mut self, v: &T) {
        v.save_state(self);
    }
}

/// Deserializer for checkpoint payloads produced by [`CkptWriter`].
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> CkptReader<'a> {
        CkptReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn chunk(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.chunk(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.chunk(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.chunk(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not fit
    /// the current platform.
    pub fn take_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CkptError::corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a boolean, rejecting bytes other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool, CkptError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.take_usize()?;
        self.chunk(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CkptError> {
        String::from_utf8(self.take_bytes()?.to_vec())
            .map_err(|_| CkptError::corrupt("invalid UTF-8 in string"))
    }

    /// Restores any [`Checkpointable`] value in place.
    pub fn restore_into<T: Checkpointable + ?Sized>(&mut self, v: &mut T) -> Result<(), CkptError> {
        v.restore_state(self)
    }

    /// Reads a default-constructed [`Checkpointable`] value.
    pub fn take<T: Checkpointable + Default>(&mut self) -> Result<T, CkptError> {
        let mut v = T::default();
        v.restore_state(self)?;
        Ok(v)
    }

    /// Fails unless every payload byte was consumed — catches schema
    /// drift between the saving and restoring build.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::corrupt(format!(
                "{} trailing byte(s) after restore",
                self.remaining()
            )))
        }
    }
}

/// State that can be frozen into a checkpoint payload and restored
/// byte-identically into an object rebuilt from the same configuration.
///
/// Implementations must serialize *every* field that influences future
/// behavior or output (timing state included — this is a process
/// snapshot, not a functional fingerprint), in a fixed order, with
/// sorted iteration for unordered containers.
pub trait Checkpointable {
    /// Appends this object's complete mutable state to `w`.
    fn save_state(&self, w: &mut CkptWriter);
    /// Restores state previously written by [`Checkpointable::save_state`]
    /// into `self` (already constructed from the same configuration).
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError>;
}

macro_rules! scalar_impl {
    ($t:ty, $put:ident, $take:ident) => {
        impl Checkpointable for $t {
            fn save_state(&self, w: &mut CkptWriter) {
                w.$put(*self);
            }
            fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
                *self = r.$take()?;
                Ok(())
            }
        }
    };
}

scalar_impl!(u8, put_u8, take_u8);
scalar_impl!(u32, put_u32, take_u32);
scalar_impl!(u64, put_u64, take_u64);
scalar_impl!(usize, put_usize, take_usize);
scalar_impl!(bool, put_bool, take_bool);
scalar_impl!(f64, put_f64, take_f64);

impl Checkpointable for u16 {
    fn save_state(&self, w: &mut CkptWriter) {
        w.put_u32(*self as u32);
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let v = r.take_u32()?;
        *self = u16::try_from(v).map_err(|_| CkptError::corrupt(format!("u16 overflow: {v}")))?;
        Ok(())
    }
}

impl Checkpointable for String {
    fn save_state(&self, w: &mut CkptWriter) {
        w.put_str(self);
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        *self = r.take_str()?;
        Ok(())
    }
}

impl<T: Checkpointable + Default> Checkpointable for Option<T> {
    fn save_state(&self, w: &mut CkptWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save_state(w);
            }
        }
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        match r.take_u8()? {
            0 => {
                *self = None;
                Ok(())
            }
            1 => {
                let mut v = self.take().unwrap_or_default();
                v.restore_state(r)?;
                *self = Some(v);
                Ok(())
            }
            b => Err(CkptError::corrupt(format!("bad Option tag {b}"))),
        }
    }
}

impl<T: Checkpointable + Default> Checkpointable for Vec<T> {
    fn save_state(&self, w: &mut CkptWriter) {
        w.put_usize(self.len());
        for v in self {
            v.save_state(w);
        }
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.take_usize()?;
        self.clear();
        self.try_reserve(n.min(1 << 20))
            .map_err(|_| CkptError::corrupt("allocation failure"))?;
        for _ in 0..n {
            self.push(r.take::<T>()?);
        }
        Ok(())
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn save_state(&self, w: &mut CkptWriter) {
        self.0.save_state(w);
        self.1.save_state(w);
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.0.restore_state(r)?;
        self.1.restore_state(r)
    }
}

impl<T: Checkpointable, const N: usize> Checkpointable for [T; N] {
    fn save_state(&self, w: &mut CkptWriter) {
        for v in self {
            v.save_state(w);
        }
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        for v in self.iter_mut() {
            v.restore_state(r)?;
        }
        Ok(())
    }
}

/// Hash maps serialize in sorted key order so identical logical state
/// always produces identical bytes, independent of insertion history.
impl<K, V> Checkpointable for HashMap<K, V>
where
    K: Checkpointable + Default + Ord + Eq + core::hash::Hash,
    V: Checkpointable + Default,
{
    fn save_state(&self, w: &mut CkptWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for k in keys {
            k.save_state(w);
            self[k].save_state(w);
        }
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.take_usize()?;
        self.clear();
        for _ in 0..n {
            let k = r.take::<K>()?;
            let v = r.take::<V>()?;
            if self.insert(k, v).is_some() {
                return Err(CkptError::corrupt("duplicate map key"));
            }
        }
        Ok(())
    }
}

macro_rules! newtype_impl {
    ($t:ident, $inner:ty) => {
        impl Checkpointable for $t {
            fn save_state(&self, w: &mut CkptWriter) {
                self.0.save_state(w);
            }
            fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
                self.0.restore_state(r)
            }
        }
    };
}

newtype_impl!(Addr, u64);
newtype_impl!(LineId, u64);
newtype_impl!(Word, u64);
newtype_impl!(Cycle, u64);
newtype_impl!(PuId, usize);
newtype_impl!(TaskId, u64);

const INVARIANT_KINDS: [InvariantKind; 7] = [
    InvariantKind::VolCycle,
    InvariantKind::VolOrder,
    InvariantKind::Orphan,
    InvariantKind::StateBits,
    InvariantKind::Ownership,
    InvariantKind::SquashResidue,
    InvariantKind::Structure,
];

impl Checkpointable for InvariantKind {
    fn save_state(&self, w: &mut CkptWriter) {
        let idx = INVARIANT_KINDS
            .iter()
            .position(|k| k == self)
            .expect("kind listed");
        w.put_u8(idx as u8);
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let idx = r.take_u8()? as usize;
        *self = *INVARIANT_KINDS
            .get(idx)
            .ok_or_else(|| CkptError::corrupt(format!("bad InvariantKind tag {idx}")))?;
        Ok(())
    }
}

impl Checkpointable for InvariantViolation {
    fn save_state(&self, w: &mut CkptWriter) {
        self.kind.save_state(w);
        self.pu.save_state(w);
        self.line.save_state(w);
        self.cycle.save_state(w);
        self.detail.save_state(w);
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.kind.restore_state(r)?;
        self.pu.restore_state(r)?;
        self.line.restore_state(r)?;
        self.cycle.restore_state(r)?;
        self.detail.restore_state(r)
    }
}

impl Default for InvariantViolation {
    fn default() -> InvariantViolation {
        InvariantViolation {
            kind: InvariantKind::Structure,
            pu: None,
            line: None,
            cycle: Cycle(0),
            detail: String::new(),
        }
    }
}

impl Checkpointable for MemStats {
    fn save_state(&self, w: &mut CkptWriter) {
        for (_, v) in self.fields() {
            w.put_u64(v);
        }
    }
    fn restore_state(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.loads = r.take_u64()?;
        self.stores = r.take_u64()?;
        self.local_hits = r.take_u64()?;
        self.cache_transfers = r.take_u64()?;
        self.next_level_fills = r.take_u64()?;
        self.bus_transactions = r.take_u64()?;
        self.bus_busy_cycles = r.take_u64()?;
        self.bus_wait_cycles = r.take_u64()?;
        self.writebacks = r.take_u64()?;
        self.purged_versions = r.take_u64()?;
        self.violations = r.take_u64()?;
        self.squash_invalidations = r.take_u64()?;
        self.squash_retained = r.take_u64()?;
        self.snarfs = r.take_u64()?;
        self.replacement_stalls = r.take_u64()?;
        self.l2_hits = r.take_u64()?;
        self.l2_misses = r.take_u64()?;
        self.mshr_misses = r.take_u64()?;
        self.mshr_combines = r.take_u64()?;
        self.mshr_stall_cycles = r.take_u64()?;
        self.wb_stall_cycles = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Checkpointable + Default + PartialEq + core::fmt::Debug>(v: &T) {
        let mut w = CkptWriter::new();
        v.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let back: T = r.take().expect("restore");
        r.finish().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(&0u8);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&-0.0f64);
        round_trip(&f64::INFINITY);
        round_trip(&String::from("svc"));
        round_trip(&Some(Cycle(7)));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![Word(1), Word(2), Word(3)]);
        round_trip(&[Addr(4), Addr(5)]);
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let odd_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = CkptWriter::new();
        odd_nan.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let back: f64 = r.take().unwrap();
        assert_eq!(back.to_bits(), odd_nan.to_bits());
    }

    #[test]
    fn hashmap_bytes_ignore_insertion_order() {
        let mut a: HashMap<u64, u64> = HashMap::new();
        a.insert(3, 30);
        a.insert(1, 10);
        a.insert(2, 20);
        let mut b: HashMap<u64, u64> = HashMap::new();
        b.insert(1, 10);
        b.insert(2, 20);
        b.insert(3, 30);
        let bytes = |m: &HashMap<u64, u64>| {
            let mut w = CkptWriter::new();
            m.save_state(&mut w);
            w.into_bytes()
        };
        assert_eq!(bytes(&a), bytes(&b));
        round_trip(&a);
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = CkptWriter::new();
        vec![1u64, 2, 3].save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes[..bytes.len() - 1]);
        let err = r.take::<Vec<u64>>().unwrap_err();
        assert_eq!(err, CkptError::Truncated);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = CkptWriter::new();
        7u64.save_state(&mut w);
        w.put_u8(0xAA);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let _: u64 = r.take().unwrap();
        assert!(matches!(r.finish(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn invariant_violation_round_trips() {
        round_trip(&InvariantViolation {
            kind: InvariantKind::VolOrder,
            pu: Some(PuId(2)),
            line: None,
            cycle: Cycle(99),
            detail: "suffix out of order".to_string(),
        });
    }

    #[test]
    fn memstats_round_trips() {
        let s = MemStats {
            loads: 10,
            wb_stall_cycles: 7,
            mshr_combines: 3,
            ..MemStats::default()
        };
        round_trip(&s);
    }
}
