use smallvec::SmallVec;

use crate::{PuId, TaskId};

/// Occupied PUs in task order; inline for up to 8 PUs (every paper
/// configuration).
pub type PuOrder = SmallVec<PuId, 8>;

/// The task-assignment table: which task each processing unit is currently
/// executing, if any.
///
/// The sequence of tasks assigned to the PUs "enforces an implicit total
/// order among the PUs" (paper §2.1, Figure 1). The Version Control Logic
/// consults this order on every bus request to position the requestor in the
/// Version Ordering List, and the ARB uses it to map PUs to stages. Both
/// memory systems receive assignment updates through
/// [`crate::VersionedMemory::assign`].
///
/// # Example
///
/// ```
/// use svc_types::{PuId, TaskId, TaskAssignments};
/// let mut asg = TaskAssignments::new(4);
/// asg.assign(PuId(1), TaskId(10));
/// asg.assign(PuId(3), TaskId(11));
/// asg.assign(PuId(0), TaskId(12));
/// assert_eq!(asg.head(), Some(PuId(1)));
/// assert_eq!(asg.program_order(), vec![PuId(1), PuId(3), PuId(0)]);
/// assert!(asg.precedes(PuId(1), PuId(0)));
/// asg.release(PuId(1));
/// assert_eq!(asg.head(), Some(PuId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAssignments {
    task_of: Vec<Option<TaskId>>,
}

impl TaskAssignments {
    /// Creates an empty table for `num_pus` processing units.
    ///
    /// # Panics
    ///
    /// Panics if `num_pus` is zero.
    pub fn new(num_pus: usize) -> TaskAssignments {
        assert!(num_pus > 0, "need at least one PU");
        TaskAssignments {
            task_of: vec![None; num_pus],
        }
    }

    /// Number of processing units this table covers.
    pub fn num_pus(&self) -> usize {
        self.task_of.len()
    }

    /// Records that `pu` now executes `task`. Overwrites any previous
    /// assignment of `pu` (the PU was re-allocated).
    ///
    /// # Panics
    ///
    /// Panics if `pu` is out of range, or if `task` is already assigned to a
    /// different PU (two PUs can never run the same dynamic task).
    pub fn assign(&mut self, pu: PuId, task: TaskId) {
        for (i, t) in self.task_of.iter().enumerate() {
            assert!(
                *t != Some(task) || i == pu.index(),
                "{task} already assigned to PU{i}"
            );
        }
        self.task_of[pu.index()] = Some(task);
    }

    /// Clears the assignment of `pu` (its task committed or was squashed).
    ///
    /// # Panics
    ///
    /// Panics if `pu` is out of range.
    pub fn release(&mut self, pu: PuId) {
        self.task_of[pu.index()] = None;
    }

    /// The task currently executing on `pu`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `pu` is out of range.
    pub fn task_of(&self, pu: PuId) -> Option<TaskId> {
        self.task_of[pu.index()]
    }

    /// The PU currently executing `task`, if any.
    pub fn pu_of(&self, task: TaskId) -> Option<PuId> {
        self.task_of.iter().position(|t| *t == Some(task)).map(PuId)
    }

    /// The *head* PU: the one executing the oldest (non-speculative) task.
    /// `None` if no PU has an assignment.
    pub fn head(&self) -> Option<PuId> {
        self.occupied().min_by_key(|&(_, t)| t).map(|(pu, _)| pu)
    }

    /// The PU executing the youngest (most speculative) task, if any.
    pub fn tail(&self) -> Option<PuId> {
        self.occupied().max_by_key(|&(_, t)| t).map(|(pu, _)| pu)
    }

    /// All occupied PUs ordered oldest task first — the implicit total order
    /// of paper §2.1 (the solid arrowheads in the paper's figures).
    pub fn program_order(&self) -> PuOrder {
        let mut v: SmallVec<(PuId, TaskId), 8> = self.occupied().collect();
        v.sort_unstable_by_key(|&(_, t)| t);
        v.into_iter().map(|(pu, _)| pu).collect()
    }

    /// Whether `a`'s task is older than `b`'s task. Unassigned PUs follow all
    /// assigned ones and compare by index among themselves, so the order is
    /// still total.
    pub fn precedes(&self, a: PuId, b: PuId) -> bool {
        match (self.task_of(a), self.task_of(b)) {
            (Some(ta), Some(tb)) => ta.is_older_than(tb),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a.index() < b.index(),
        }
    }

    /// Occupied PUs strictly younger than `pu`'s task, oldest first. Used by
    /// the VCL to walk "the requestor's immediate successor (in task
    /// assignment order)" onward when a store invalidates later copies
    /// (paper §3.2.3).
    pub fn successors_of(&self, pu: PuId) -> PuOrder {
        let Some(me) = self.task_of(pu) else {
            return SmallVec::new();
        };
        let mut v: SmallVec<(PuId, TaskId), 8> = self
            .occupied()
            .filter(|&(_, t)| me.is_older_than(t))
            .collect();
        v.sort_unstable_by_key(|&(_, t)| t);
        v.into_iter().map(|(pu, _)| pu).collect()
    }

    /// Occupied PUs strictly older than `pu`'s task, youngest first (the
    /// reverse-order search direction used when locating the version to
    /// supply a load, paper §3.2.2).
    pub fn predecessors_of(&self, pu: PuId) -> PuOrder {
        let Some(me) = self.task_of(pu) else {
            return SmallVec::new();
        };
        let mut v: SmallVec<(PuId, TaskId), 8> = self
            .occupied()
            .filter(|&(_, t)| t.is_older_than(me))
            .collect();
        v.sort_unstable_by_key(|&(_, t)| core::cmp::Reverse(t));
        v.into_iter().map(|(pu, _)| pu).collect()
    }

    /// Iterator over `(pu, task)` pairs for occupied PUs, in PU-index order.
    fn occupied(&self) -> impl Iterator<Item = (PuId, TaskId)> + '_ {
        self.task_of
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (PuId(i), t)))
    }
}

impl crate::Checkpointable for TaskAssignments {
    fn save_state(&self, w: &mut crate::CkptWriter) {
        self.task_of.save_state(w);
    }
    fn restore_state(&mut self, r: &mut crate::CkptReader<'_>) -> Result<(), crate::CkptError> {
        let before = self.task_of.len();
        self.task_of.restore_state(r)?;
        if self.task_of.len() != before {
            return Err(crate::CkptError::corrupt(format!(
                "assignment table for {} PUs, checkpoint has {}",
                before,
                self.task_of.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TaskAssignments {
        // Mirrors the paper's Figure 13 snapshot: tasks need not be assigned
        // to PUs in circular order.
        let mut asg = TaskAssignments::new(4);
        asg.assign(PuId(0), TaskId(5)); // X/5
        asg.assign(PuId(1), TaskId(3)); // Y/3
        asg.assign(PuId(2), TaskId(4)); // Z/4
        asg.assign(PuId(3), TaskId(2)); // W/2
        asg
    }

    #[test]
    fn head_and_tail() {
        let asg = table();
        assert_eq!(asg.head(), Some(PuId(3)));
        assert_eq!(asg.tail(), Some(PuId(0)));
    }

    #[test]
    fn program_order_sorts_by_task() {
        assert_eq!(
            table().program_order(),
            vec![PuId(3), PuId(1), PuId(2), PuId(0)]
        );
    }

    #[test]
    fn successors_and_predecessors() {
        let asg = table();
        assert_eq!(asg.successors_of(PuId(1)), vec![PuId(2), PuId(0)]);
        assert_eq!(asg.predecessors_of(PuId(1)), vec![PuId(3)]);
        assert_eq!(
            asg.predecessors_of(PuId(0)),
            vec![PuId(2), PuId(1), PuId(3)]
        );
        assert_eq!(asg.successors_of(PuId(0)), Vec::<PuId>::new());
    }

    #[test]
    fn precedes_total_order() {
        let mut asg = table();
        assert!(asg.precedes(PuId(3), PuId(1)));
        assert!(!asg.precedes(PuId(1), PuId(3)));
        asg.release(PuId(0));
        // Unassigned PU follows all assigned PUs.
        assert!(asg.precedes(PuId(1), PuId(0)));
        assert!(!asg.precedes(PuId(0), PuId(1)));
    }

    #[test]
    fn release_updates_head() {
        let mut asg = table();
        asg.release(PuId(3));
        assert_eq!(asg.head(), Some(PuId(1)));
        assert_eq!(asg.task_of(PuId(3)), None);
    }

    #[test]
    fn pu_of_lookup() {
        let asg = table();
        assert_eq!(asg.pu_of(TaskId(4)), Some(PuId(2)));
        assert_eq!(asg.pu_of(TaskId(99)), None);
    }

    #[test]
    fn reassigning_same_pu_is_allowed() {
        let mut asg = table();
        asg.assign(PuId(0), TaskId(9));
        assert_eq!(asg.task_of(PuId(0)), Some(TaskId(9)));
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn duplicate_task_panics() {
        let mut asg = table();
        asg.assign(PuId(0), TaskId(3)); // T3 is on PU1
    }

    #[test]
    fn empty_table() {
        let asg = TaskAssignments::new(2);
        assert_eq!(asg.head(), None);
        assert_eq!(asg.tail(), None);
        assert!(asg.program_order().is_empty());
        assert!(asg.successors_of(PuId(0)).is_empty());
        assert!(asg.predecessors_of(PuId(0)).is_empty());
    }
}
