//! Deterministic state fingerprinting for the explicit-state model
//! checker (`svc-check`).
//!
//! The checker dedupes visited states by a 64-bit fingerprint of each
//! memory system's *functional* state (line bits, pointers, data, task
//! assignments, architectural image) while deliberately excluding pure
//! timing state (bus busy-until, MSHR timestamps, writeback drain
//! queues): two states that differ only in timing have identical
//! functional successors, so merging them is sound and shrinks the
//! search space.
//!
//! [`StateHasher`] is FNV-1a over 64 bits — not `DefaultHasher`, whose
//! output is allowed to change between Rust releases. The checker pins
//! explored-state counts in `results/check.json`, so the fingerprint
//! must be stable across toolchains and runs.

/// A deterministic 64-bit FNV-1a hasher for state fingerprints.
///
/// # Example
///
/// ```
/// use svc_types::StateHasher;
///
/// let mut a = StateHasher::new();
/// a.write_u64(7);
/// let mut b = StateHasher::new();
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;

impl StateHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StateHasher {
        StateHasher { state: FNV_OFFSET }
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= v as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a `u64`, little-endian.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Feeds a `usize` (as `u64`, so fingerprints match across widths).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds an optional `u64`, distinguishing `None` from any value.
    #[inline]
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_u64(v);
            }
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// The fingerprint accumulated so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StateHasher {
    fn default() -> StateHasher {
        StateHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StateHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish(), "order must matter");

        let mut c = StateHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — pins the algorithm itself.
        let mut h = StateHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn option_none_differs_from_zero() {
        let mut a = StateHasher::new();
        a.write_opt_u64(None);
        let mut b = StateHasher::new();
        b.write_opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }
}
