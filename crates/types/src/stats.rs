use core::fmt;

/// Statistics reported by a [`crate::VersionedMemory`] implementation.
///
/// Every field is a plain event count; the experiment harness derives the
/// paper's reported metrics from them:
///
/// * **miss ratio** (Table 2) = `next_level_fills / (loads + stores)` —
///   "an access is counted as a miss if data is supplied by the next level
///   memory; data transfers between the L1 caches are not counted as
///   misses" (§4.4);
/// * **bus utilization** (Table 3) = `bus_busy_cycles / elapsed cycles`.
///
/// The struct is plain data with public fields (a passive record, in the C
/// spirit) so that implementations can fill in exactly the events that
/// apply to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct MemStats {
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Accesses satisfied entirely locally (no bus transaction).
    pub local_hits: u64,
    /// Accesses whose data came from another L1 cache / buffer stage over
    /// the interconnect.
    pub cache_transfers: u64,
    /// Accesses whose data came from the next level of memory (the paper's
    /// definition of a miss).
    pub next_level_fills: u64,
    /// Bus transactions issued (BusRead + BusWrite + BusWback).
    pub bus_transactions: u64,
    /// Cycles during which the snooping bus was occupied.
    pub bus_busy_cycles: u64,
    /// Cycles requesters spent waiting between issuing a bus request and
    /// receiving the grant (arbitration / queueing delay, summed over all
    /// PUs).
    pub bus_wait_cycles: u64,
    /// Lines written back to the next level of memory.
    pub writebacks: u64,
    /// Committed versions purged without writeback (superseded by a newer
    /// committed version, §3.4.1).
    pub purged_versions: u64,
    /// Memory-dependence violations detected (each triggers a task squash).
    pub violations: u64,
    /// Lines invalidated by task squashes.
    pub squash_invalidations: u64,
    /// Lines retained across a squash thanks to the architectural (A) bit
    /// (§3.5.1) — zero for designs without it.
    pub squash_retained: u64,
    /// Lines snarfed off the bus (§3.6) — zero for designs without snarfing.
    pub snarfs: u64,
    /// Accesses that stalled because a speculative cache could not replace a
    /// line (§3.2.5).
    pub replacement_stalls: u64,
    /// Fills served by a shared L2 between the L1 level and memory
    /// (zero unless the optional L2 extension is configured).
    pub l2_hits: u64,
    /// Fills that missed the optional L2 and went to main memory.
    pub l2_misses: u64,
    /// Primary misses that allocated an MSHR (zero for models without
    /// MSHRs).
    pub mshr_misses: u64,
    /// Secondary misses combined into an outstanding MSHR.
    pub mshr_combines: u64,
    /// Cycles accesses stalled waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Cycles castouts stalled on a full writeback buffer.
    pub wb_stall_cycles: u64,
}

impl MemStats {
    /// Total loads + stores.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// The paper's miss ratio: next-level fills over total accesses.
    /// Returns 0.0 when no accesses were issued.
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.next_level_fills, self.accesses())
    }

    /// Fraction of accesses satisfied without any bus transaction.
    pub fn local_hit_ratio(&self) -> f64 {
        ratio(self.local_hits, self.accesses())
    }

    /// Bus utilization over an `elapsed`-cycle window.
    /// Returns 0.0 when `elapsed` is zero.
    pub fn bus_utilization(&self, elapsed: u64) -> f64 {
        ratio(self.bus_busy_cycles, elapsed)
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// This is the single source of truth for serializers (the JSON
    /// experiment reports iterate it), so adding a field here propagates
    /// to every report without touching the writers.
    pub fn fields(&self) -> [(&'static str, u64); 21] {
        [
            ("loads", self.loads),
            ("stores", self.stores),
            ("local_hits", self.local_hits),
            ("cache_transfers", self.cache_transfers),
            ("next_level_fills", self.next_level_fills),
            ("bus_transactions", self.bus_transactions),
            ("bus_busy_cycles", self.bus_busy_cycles),
            ("bus_wait_cycles", self.bus_wait_cycles),
            ("writebacks", self.writebacks),
            ("purged_versions", self.purged_versions),
            ("violations", self.violations),
            ("squash_invalidations", self.squash_invalidations),
            ("squash_retained", self.squash_retained),
            ("snarfs", self.snarfs),
            ("replacement_stalls", self.replacement_stalls),
            ("l2_hits", self.l2_hits),
            ("l2_misses", self.l2_misses),
            ("mshr_misses", self.mshr_misses),
            ("mshr_combines", self.mshr_combines),
            ("mshr_stall_cycles", self.mshr_stall_cycles),
            ("wb_stall_cycles", self.wb_stall_cycles),
        ]
    }

    /// The fraction of misses that combined into an outstanding MSHR
    /// instead of allocating a new one:
    /// `mshr_combines / (mshr_misses + mshr_combines)`. Returns 0.0 for
    /// models without MSHRs.
    pub fn mshr_combine_rate(&self) -> f64 {
        ratio(self.mshr_combines, self.mshr_misses + self.mshr_combines)
    }

    /// Field-wise difference `self - earlier`, for measuring a window
    /// between two snapshots.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter decreased (snapshots out of
    /// order).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        let d = |a: u64, b: u64| {
            debug_assert!(a >= b, "stats snapshot went backwards");
            a - b
        };
        MemStats {
            loads: d(self.loads, earlier.loads),
            stores: d(self.stores, earlier.stores),
            local_hits: d(self.local_hits, earlier.local_hits),
            cache_transfers: d(self.cache_transfers, earlier.cache_transfers),
            next_level_fills: d(self.next_level_fills, earlier.next_level_fills),
            bus_transactions: d(self.bus_transactions, earlier.bus_transactions),
            bus_busy_cycles: d(self.bus_busy_cycles, earlier.bus_busy_cycles),
            bus_wait_cycles: d(self.bus_wait_cycles, earlier.bus_wait_cycles),
            writebacks: d(self.writebacks, earlier.writebacks),
            purged_versions: d(self.purged_versions, earlier.purged_versions),
            violations: d(self.violations, earlier.violations),
            squash_invalidations: d(self.squash_invalidations, earlier.squash_invalidations),
            squash_retained: d(self.squash_retained, earlier.squash_retained),
            snarfs: d(self.snarfs, earlier.snarfs),
            replacement_stalls: d(self.replacement_stalls, earlier.replacement_stalls),
            l2_hits: d(self.l2_hits, earlier.l2_hits),
            l2_misses: d(self.l2_misses, earlier.l2_misses),
            mshr_misses: d(self.mshr_misses, earlier.mshr_misses),
            mshr_combines: d(self.mshr_combines, earlier.mshr_combines),
            mshr_stall_cycles: d(self.mshr_stall_cycles, earlier.mshr_stall_cycles),
            wb_stall_cycles: d(self.wb_stall_cycles, earlier.wb_stall_cycles),
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} loads, {} stores, miss ratio {:.3}, {} bus txns, {} writebacks, {} violations",
            self.loads,
            self.stores,
            self.miss_ratio(),
            self.bus_transactions,
            self.writebacks,
            self.violations
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominator() {
        let s = MemStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.local_hit_ratio(), 0.0);
        assert_eq!(s.bus_utilization(0), 0.0);
    }

    #[test]
    fn miss_ratio_matches_paper_definition() {
        let s = MemStats {
            loads: 60,
            stores: 40,
            next_level_fills: 5,
            cache_transfers: 10, // transfers are NOT misses
            ..MemStats::default()
        };
        assert!((s.miss_ratio() - 0.05).abs() < 1e-12);
        assert_eq!(s.accesses(), 100);
    }

    #[test]
    fn bus_utilization() {
        let s = MemStats {
            bus_busy_cycles: 25,
            ..MemStats::default()
        };
        assert!((s.bus_utilization(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = MemStats {
            loads: 10,
            stores: 4,
            bus_busy_cycles: 7,
            ..MemStats::default()
        };
        let b = MemStats {
            loads: 25,
            stores: 9,
            bus_busy_cycles: 20,
            ..MemStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.loads, 15);
        assert_eq!(d.stores, 5);
        assert_eq!(d.bus_busy_cycles, 13);
    }

    #[test]
    fn mshr_combine_rate() {
        assert_eq!(MemStats::default().mshr_combine_rate(), 0.0);
        let s = MemStats {
            mshr_misses: 6,
            mshr_combines: 2,
            ..MemStats::default()
        };
        assert!((s.mshr_combine_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = MemStats::default();
        assert!(!format!("{s}").is_empty());
    }
}
