//! The driving trait of the explicit-state model checker (`svc-check`).

use crate::{Addr, StateHasher, VersionedMemory};

/// A [`VersionedMemory`] that the explicit-state model checker can
/// explore exhaustively.
///
/// The only capability the checker needs beyond the `VersionedMemory`
/// protocol itself (plus `Clone`, required at the call sites) is a
/// *functional-state fingerprint* for its visited set:
/// [`fingerprint`](ModelCheckable::fingerprint) must feed every bit of
/// state that can influence future load values, violation victims,
/// invariant verdicts or the committed memory image — and must *exclude*
/// pure timing state (bus busy-until cycles, MSHR timestamps, writeback
/// drain queues), because the checker merges timing-divergent states
/// whose functional futures are identical.
///
/// `addrs` is the checker's bounded address alphabet; implementations
/// hash their backing-memory image over exactly these addresses (the
/// checker never touches any other address, so the rest of memory is
/// invariant).
pub trait ModelCheckable: VersionedMemory {
    /// Feeds this system's functional state into `h`, deterministically:
    /// the same state must hash identically across runs and toolchains.
    fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher);
}
