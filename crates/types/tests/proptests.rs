//! Property-based tests for the shared vocabulary types.

use proptest::prelude::*;
use svc_types::{Addr, Cycle, PuId, TaskAssignments, TaskId};

proptest! {
    /// Line/offset slicing round-trips for any address and line size.
    #[test]
    fn addr_line_roundtrip(raw in 0u64..1_000_000, wpl in 1usize..64) {
        let a = Addr(raw);
        let line = a.line(wpl);
        let off = a.offset_in_line(wpl);
        prop_assert!(off < wpl);
        prop_assert_eq!(line.word(off, wpl), a);
        prop_assert_eq!(line.first_word(wpl), line.word(0, wpl));
    }

    /// Cycle::max agrees with u64 max; since() saturates.
    #[test]
    fn cycle_laws(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assert_eq!(Cycle(a).max(Cycle(b)).0, a.max(b));
        prop_assert_eq!(Cycle(a).since(Cycle(b)), a.saturating_sub(b));
        prop_assert_eq!((Cycle(a) + b) - Cycle(a), b);
    }

    /// TaskId order mirrors u64 order and is a strict total order.
    #[test]
    fn task_order_strict(a in 0u64..10_000, b in 0u64..10_000) {
        let (ta, tb) = (TaskId(a), TaskId(b));
        prop_assert_eq!(ta.is_older_than(tb), a < b);
        prop_assert!(!(ta.is_older_than(tb) && tb.is_older_than(ta)));
        if a != b {
            prop_assert!(ta.is_older_than(tb) || tb.is_older_than(ta));
        }
    }
}

/// A random sequence of assignment operations.
fn assignment_ops() -> impl Strategy<Value = Vec<(u8, u8, u16)>> {
    // (op, pu, task): op 0 = assign, 1 = release
    proptest::collection::vec((0u8..2, 0u8..6, 0u16..64), 0..40)
}

proptest! {
    /// After any operation sequence: program_order is sorted by task id,
    /// contains exactly the occupied PUs, head/tail are its endpoints, and
    /// `precedes` is consistent with the order.
    #[test]
    fn assignments_invariants(ops in assignment_ops()) {
        let mut asg = TaskAssignments::new(6);
        let mut model: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (op, pu, task) in ops {
            let pu = pu as usize;
            let task = task as u64;
            if op == 0 {
                // Skip assignments that would duplicate a live task.
                let dup = model.iter().any(|(&p, &t)| t == task && p != pu);
                if !dup {
                    asg.assign(PuId(pu), TaskId(task));
                    model.insert(pu, task);
                }
            } else {
                asg.release(PuId(pu));
                model.remove(&pu);
            }
        }
        let order = asg.program_order();
        prop_assert_eq!(order.len(), model.len());
        let tasks: Vec<u64> = order
            .iter()
            .map(|&pu| model[&pu.index()])
            .collect();
        let mut sorted = tasks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&tasks, &sorted, "program order sorted by task");
        prop_assert_eq!(asg.head(), order.first().copied());
        prop_assert_eq!(asg.tail(), order.last().copied());
        for w in order.windows(2) {
            prop_assert!(asg.precedes(w[0], w[1]));
            prop_assert!(!asg.precedes(w[1], w[0]));
        }
        // successors/predecessors partition the other occupied PUs.
        for &pu in &order {
            let succ = asg.successors_of(pu);
            let pred = asg.predecessors_of(pu);
            prop_assert_eq!(succ.len() + pred.len() + 1, order.len());
        }
    }
}
