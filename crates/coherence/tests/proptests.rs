//! Property-based tests for the MRSW baseline: for any sequence of
//! (sequentially completed) loads and stores from any processors, the
//! system behaves as a single flat memory and never violates the
//! single-writer invariant.

use proptest::prelude::*;
use svc_coherence::{SmpConfig, SmpSystem};
use svc_mem::CacheGeometry;
use svc_types::{Addr, Cycle, PuId, Word};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smp_is_a_coherent_flat_memory(
        ops in proptest::collection::vec((0u64..96, 0usize..4, any::<bool>()), 1..300),
        exclusive in any::<bool>(),
        tiny in any::<bool>(),
    ) {
        let mut cfg = SmpConfig::small_for_tests();
        cfg.exclusive = exclusive;
        if tiny {
            cfg.geometry = CacheGeometry::new(2, 1, 4, 4); // maximal conflicts
        }
        let mut smp = SmpSystem::new(cfg);
        let mut model = std::collections::HashMap::new();
        let mut now = Cycle(0);
        for (i, (addr, pu, is_store)) in ops.into_iter().enumerate() {
            let a = Addr(addr);
            if is_store {
                let v = Word(i as u64 + 1);
                now = smp.store(PuId(pu), a, v, now);
                model.insert(a, v);
            } else {
                let out = smp.load(PuId(pu), a, now);
                now = out.done_at;
                prop_assert_eq!(out.value, model.get(&a).copied().unwrap_or(Word::ZERO));
            }
            if i % 64 == 0 {
                smp.assert_coherent();
            }
        }
        smp.assert_coherent();
        for (a, v) in model {
            prop_assert_eq!(smp.coherent_peek(a), v);
        }
    }
}
