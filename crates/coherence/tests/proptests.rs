//! Property-based tests for the MRSW baseline: for any sequence of
//! (sequentially completed) loads and stores from any processors, the
//! system behaves as a single flat memory and never violates the
//! single-writer invariant — and the watchdog agrees: silent on every
//! healthy state, never silent after the MRSW corruption drill.

use proptest::prelude::*;
use svc_coherence::{SmpConfig, SmpSystem};
use svc_mem::CacheGeometry;
use svc_types::{Addr, Cycle, PuId, Word};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smp_is_a_coherent_flat_memory(
        ops in proptest::collection::vec((0u64..96, 0usize..4, any::<bool>()), 1..300),
        exclusive in any::<bool>(),
        tiny in any::<bool>(),
    ) {
        let mut cfg = SmpConfig::small_for_tests();
        cfg.exclusive = exclusive;
        if tiny {
            cfg.geometry = CacheGeometry::new(2, 1, 4, 4); // maximal conflicts
        }
        let mut smp = SmpSystem::new(cfg);
        let mut model = std::collections::HashMap::new();
        let mut now = Cycle(0);
        for (i, (addr, pu, is_store)) in ops.into_iter().enumerate() {
            let a = Addr(addr);
            if is_store {
                let v = Word(i as u64 + 1);
                now = smp.store(PuId(pu), a, v, now);
                model.insert(a, v);
            } else {
                let out = smp.load(PuId(pu), a, now);
                now = out.done_at;
                prop_assert_eq!(out.value, model.get(&a).copied().unwrap_or(Word::ZERO));
            }
            if i % 64 == 0 {
                smp.assert_coherent();
                prop_assert_eq!(smp.check_invariants(now), Vec::new());
            }
        }
        smp.assert_coherent();
        prop_assert_eq!(smp.check_invariants(now), Vec::new());
        for (a, v) in model {
            prop_assert_eq!(smp.coherent_peek(a), v);
        }
    }

    /// The MRSW corruption drill (two dirty copies of one line) is
    /// caught by the watchdog from ANY reachable cache state.
    #[test]
    fn smp_broken_mrsw_is_always_caught(
        ops in proptest::collection::vec((0u64..64, 0usize..4, any::<bool>()), 1..120),
    ) {
        let mut smp = SmpSystem::new(SmpConfig::small_for_tests());
        let mut now = Cycle(0);
        for (i, (addr, pu, is_store)) in ops.into_iter().enumerate() {
            let a = Addr(addr);
            if is_store {
                now = smp.store(PuId(pu), a, Word(i as u64 + 1), now);
            } else {
                now = smp.load(PuId(pu), a, now).done_at;
            }
        }
        let hit = (0..64u64).any(|a| smp.fault_break_mrsw(Addr(a)));
        prop_assume!(hit);
        prop_assert!(
            !smp.check_invariants(now).is_empty(),
            "broken MRSW escaped the watchdog"
        );
    }
}
