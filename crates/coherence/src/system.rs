//! The complete SMP memory system: private caches + snooping bus + next
//! level of memory, implementing the invalidation protocol of Figure 3.

use svc_mem::{Bus, CacheArray, CacheGeometry, MainMemory, MemTiming, Slot, WayRef};
use svc_sim::fault::Faults;
use svc_sim::profile::{AccessProfile, Profiler};
use svc_sim::trace::{BusOp, Category, TraceEvent, Tracer};
use svc_types::{
    Addr, Cycle, DataSource, InvariantKind, InvariantViolation, LineId, LoadOutcome, MemStats,
    Mutation, PuId, StateHasher, Word,
};

use crate::protocol::SmpState;

/// One line of an SMP private cache: tag + state + data.
#[derive(Debug, Clone, Default)]
struct SmpLine {
    line: Option<LineId>,
    state: SmpState,
    data: Vec<Word>,
}

impl Slot for SmpLine {
    fn held_line(&self) -> Option<LineId> {
        if self.state.is_valid() {
            self.line
        } else {
            None
        }
    }
}

/// Configuration of an [`SmpSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// Number of processors (each with one private cache).
    pub num_pus: usize,
    /// Geometry of each private cache.
    pub geometry: CacheGeometry,
    /// Latency parameters.
    pub timing: MemTiming,
    /// Whether to use the exclusive-bit optimization (§3.1: a load miss
    /// that no other cache can serve installs exclusively; a later store
    /// upgrades silently).
    pub exclusive: bool,
}

impl SmpConfig {
    /// A tiny configuration for unit tests and doc examples: 4 PUs, 8 sets,
    /// 2 ways, 4-word lines.
    pub fn small_for_tests() -> SmpConfig {
        SmpConfig {
            num_pus: 4,
            geometry: CacheGeometry::new(8, 2, 4, 4),
            timing: MemTiming::PAPER,
            exclusive: false,
        }
    }
}

/// A snooping-bus cache-coherent SMP memory system (paper §3.1).
///
/// This is the non-speculative MRSW baseline: loads and stores are
/// performed immediately (no versioning, no squashes), with coherence kept
/// by invalidation. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct SmpSystem {
    config: SmpConfig,
    caches: Vec<CacheArray<SmpLine>>,
    bus: Bus,
    memory: MainMemory,
    stats: MemStats,
    tracer: Tracer,
    profiler: Profiler,
}

impl SmpSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_pus` is zero.
    pub fn new(config: SmpConfig) -> SmpSystem {
        assert!(config.num_pus > 0);
        SmpSystem {
            caches: (0..config.num_pus)
                .map(|_| CacheArray::new(config.geometry))
                .collect(),
            bus: Bus::new(config.timing.bus_txn_cycles),
            memory: MainMemory::new(),
            stats: MemStats::default(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            config,
        }
    }

    /// Attaches a cycle-accounting profiler handle. Bus misses report
    /// their latency decomposition (arbitration wait, transfer time,
    /// memory penalty) to it.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SmpConfig {
        &self.config
    }

    /// Attaches `tracer` to this system and its bus. Coherence state
    /// changes appear as `line`-category [`TraceEvent::CoherenceTransition`]
    /// events; bus transactions carry the requesting PU and line.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.bus.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a fault injector to the bus (transaction drop/delay).
    pub fn set_faults(&mut self, faults: Faults) {
        self.bus.set_faults(faults);
    }

    /// Emits a coherence state transition (no-op when equal or untraced).
    fn emit_state(&self, pu: PuId, line: LineId, from: SmpState, to: SmpState, now: Cycle) {
        if from != to {
            self.tracer
                .emit(now, Category::Line, || TraceEvent::CoherenceTransition {
                    pu,
                    line,
                    from: from.name(),
                    to: to.name(),
                });
        }
    }

    /// State of `pu`'s copy of the line containing `addr` (for tests and
    /// introspection).
    pub fn line_state(&self, pu: PuId, addr: Addr) -> SmpState {
        let line = self.config.geometry.line_of(addr);
        match self.caches[pu.index()].find(line) {
            Some(r) => self.caches[pu.index()].slot(r).state,
            None => SmpState::Invalid,
        }
    }

    /// Executes a load by `pu`.
    pub fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> LoadOutcome {
        self.stats.loads += 1;
        let line = self.config.geometry.line_of(addr);
        let off = self.config.geometry.offset(addr);
        if let Some(r) = self.caches[pu.index()].find(line) {
            self.caches[pu.index()].touch(r);
            self.stats.local_hits += 1;
            return LoadOutcome {
                value: self.caches[pu.index()].slot(r).data[off],
                done_at: now + self.config.timing.hit_cycles,
                source: DataSource::LocalHit,
            };
        }
        // Miss: BusRead, snooped by the other caches and memory.
        let (value, done, source) = self.bus_read(pu, line, off, now);
        LoadOutcome {
            value,
            done_at: done,
            source,
        }
    }

    /// Executes a store by `pu`.
    /// Returns the cycle at which the store is globally ordered.
    pub fn store(&mut self, pu: PuId, addr: Addr, value: Word, now: Cycle) -> Cycle {
        self.stats.stores += 1;
        let line = self.config.geometry.line_of(addr);
        let off = self.config.geometry.offset(addr);
        if let Some(r) = self.caches[pu.index()].find(line) {
            let state = self.caches[pu.index()].slot(r).state;
            match state {
                SmpState::Dirty => {
                    self.caches[pu.index()].touch(r);
                    let slot = self.caches[pu.index()].slot_mut(r);
                    slot.data[off] = value;
                    self.stats.local_hits += 1;
                    return now + self.config.timing.hit_cycles;
                }
                SmpState::CleanExclusive => {
                    // Silent upgrade: the exclusive-bit optimization.
                    self.caches[pu.index()].touch(r);
                    let slot = self.caches[pu.index()].slot_mut(r);
                    slot.state = SmpState::Dirty;
                    slot.data[off] = value;
                    self.stats.local_hits += 1;
                    self.emit_state(pu, line, SmpState::CleanExclusive, SmpState::Dirty, now);
                    return now + self.config.timing.hit_cycles;
                }
                SmpState::Clean | SmpState::Invalid => {
                    // Fall through to BusWrite below.
                }
            }
        }
        // Store miss (or upgrade from shared Clean): BusWrite invalidates
        // every other copy; we then own the line dirty.
        let done = self.bus_write(pu, line, now);
        let r = self.ensure_resident(pu, line, now);
        self.caches[pu.index()].touch(r);
        let from = self.caches[pu.index()].slot(r).state;
        let slot = self.caches[pu.index()].slot_mut(r);
        slot.state = SmpState::Dirty;
        slot.data[off] = value;
        self.emit_state(pu, line, from, SmpState::Dirty, now);
        done
    }

    /// Reads the value visible in memory/caches for verification, preferring
    /// a dirty cached copy (the freshest) over memory.
    pub fn coherent_peek(&self, addr: Addr) -> Word {
        let line = self.config.geometry.line_of(addr);
        let off = self.config.geometry.offset(addr);
        for cache in &self.caches {
            if let Some(r) = cache.find(line) {
                let slot = cache.slot(r);
                if slot.state.is_dirty() {
                    return slot.data[off];
                }
            }
        }
        self.memory.peek(addr)
    }

    /// Feeds the functional coherence state over `addrs` into `h`: per
    /// cache the state and word of each copy, plus the memory image.
    /// Timing state (bus busy-until) is deliberately excluded — model
    /// checker support, see [`svc_types::ModelCheckable`].
    pub(crate) fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        for &addr in addrs {
            let line = self.config.geometry.line_of(addr);
            let off = self.config.geometry.offset(addr);
            for cache in &self.caches {
                match cache.find(line) {
                    None => h.write_u8(0),
                    Some(r) => {
                        let slot = cache.slot(r);
                        h.write_u8(1);
                        h.write_bytes(slot.state.name().as_bytes());
                        h.write_u64(slot.data[off].0);
                    }
                }
            }
            h.write_u64(self.memory.peek(addr).0);
        }
    }

    /// Statistics snapshot (bus fields included).
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.bus_transactions = self.bus.transactions();
        s.bus_busy_cycles = self.bus.busy_cycles();
        s.bus_wait_cycles = self.bus.total_wait_cycles();
        s
    }

    /// Resets the statistics counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.bus.reset_stats();
    }

    /// Checks the MRSW invariant: at most one dirty copy of any line, and
    /// no other valid copies coexist with a dirty one.
    ///
    /// # Panics
    ///
    /// Panics (with a description) if the invariant is violated — intended
    /// for use in tests.
    pub fn assert_coherent(&self) {
        use std::collections::HashMap;
        let mut holders: HashMap<LineId, (usize, usize)> = HashMap::new(); // (valid, dirty)
        for cache in &self.caches {
            for slot in cache.iter() {
                if let Some(line) = slot.held_line() {
                    let e = holders.entry(line).or_insert((0, 0));
                    e.0 += 1;
                    if slot.state.is_dirty() {
                        e.1 += 1;
                    }
                }
            }
        }
        for (line, (valid, dirty)) in holders {
            assert!(dirty <= 1, "{line} has {dirty} dirty copies");
            assert!(
                dirty == 0 || valid == 1,
                "{line} is dirty in one cache but valid in {valid}"
            );
        }
    }

    /// Non-panicking form of [`assert_coherent`](SmpSystem::assert_coherent):
    /// reports every MRSW violation (multiple dirty copies, or a dirty copy
    /// coexisting with other valid copies) as a structured
    /// [`InvariantViolation`] for the watchdog, instead of aborting.
    pub fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        use std::collections::HashMap;
        let mut holders: HashMap<LineId, (usize, usize)> = HashMap::new(); // (valid, dirty)
        for cache in &self.caches {
            for slot in cache.iter() {
                if let Some(line) = slot.held_line() {
                    let e = holders.entry(line).or_insert((0, 0));
                    e.0 += 1;
                    if slot.state.is_dirty() {
                        e.1 += 1;
                    }
                }
            }
        }
        let mut lines: Vec<(LineId, (usize, usize))> = holders.into_iter().collect();
        lines.sort_by_key(|&(line, _)| line);
        let mut out = Vec::new();
        for (line, (valid, dirty)) in lines {
            if dirty > 1 {
                out.push(InvariantViolation {
                    kind: InvariantKind::Ownership,
                    pu: None,
                    line: Some(line),
                    cycle: now,
                    detail: format!("{dirty} dirty copies"),
                });
            } else if dirty == 1 && valid > 1 {
                out.push(InvariantViolation {
                    kind: InvariantKind::Ownership,
                    pu: None,
                    line: Some(line),
                    cycle: now,
                    detail: format!("dirty in one cache but valid in {valid}"),
                });
            }
        }
        out
    }

    /// Deliberately breaks MRSW for the line containing `addr`: the first
    /// two caches found holding it are both marked dirty (installing a
    /// second stale copy if only one cache holds it). Returns `false` if
    /// no cache holds the line. **Watchdog drill only.**
    #[doc(hidden)]
    pub fn fault_break_mrsw(&mut self, addr: Addr) -> bool {
        let line = self.config.geometry.line_of(addr);
        let holders: Vec<usize> = (0..self.caches.len())
            .filter(|&i| self.caches[i].find(line).is_some())
            .collect();
        let Some(&first) = holders.first() else {
            return false;
        };
        let second = match holders.get(1) {
            Some(&i) => i,
            None => {
                let other = (first + 1) % self.caches.len();
                let wpl = self.config.geometry.words_per_line();
                let r = self.caches[other].victim_way(line);
                *self.caches[other].slot_mut(r) = SmpLine {
                    line: Some(line),
                    state: SmpState::Clean,
                    data: vec![Word::ZERO; wpl],
                };
                other
            }
        };
        for i in [first, second] {
            let r = self.caches[i].find(line).expect("holder");
            self.caches[i].slot_mut(r).state = SmpState::Dirty;
        }
        first != second
    }

    /// BusRead: find a supplier (dirty cache flushes and becomes clean;
    /// else memory), install the line clean (or exclusive) in `pu`.
    fn bus_read(
        &mut self,
        pu: PuId,
        line: LineId,
        off: usize,
        now: Cycle,
    ) -> (Word, Cycle, DataSource) {
        let grant = self
            .bus
            .transact_as(BusOp::Read, Some(pu), Some(line), now, 0);
        // Snoop: is there a dirty copy elsewhere?
        let mut supplier: Option<usize> = None;
        let mut any_copy = false;
        for i in 0..self.caches.len() {
            if i == pu.index() {
                continue;
            }
            if let Some(r) = self.caches[i].find(line) {
                any_copy = true;
                if self.caches[i].slot(r).state.is_dirty() {
                    supplier = Some(i);
                }
            }
        }
        let wpl = self.config.geometry.words_per_line();
        if self.profiler.is_active() {
            self.profiler.note_access(
                pu,
                AccessProfile {
                    mshr_stall: 0,
                    bus_wait: grant.start.since(now),
                    bus_transfer: grant.done.since(grant.start),
                    mem_latency: if supplier.is_none() {
                        self.config.timing.memory_cycles
                    } else {
                        0
                    },
                },
            );
        }
        let (data, done, source) = if let Some(i) = supplier {
            // Dirty holder flushes on the bus; memory is updated and the
            // holder's copy becomes Clean (Figure 3b: BusRead/Flush).
            let r = self.caches[i].find(line).expect("supplier has the line");
            let data = self.caches[i].slot(r).data.clone();
            self.caches[i].slot_mut(r).state = SmpState::Clean;
            self.emit_state(PuId(i), line, SmpState::Dirty, SmpState::Clean, now);
            self.memory.write_line_full(line, &data, wpl);
            self.stats.cache_transfers += 1;
            (data, grant.done, DataSource::Transfer)
        } else {
            let data = self.memory.read_line(line, wpl);
            self.stats.next_level_fills += 1;
            (
                data,
                grant.done + self.config.timing.memory_cycles,
                DataSource::NextLevel,
            )
        };
        let value = data[off];
        let r = self.ensure_resident(pu, line, now);
        self.caches[pu.index()].touch(r);
        let from = self.caches[pu.index()].slot(r).state;
        let installed = if !any_copy && self.config.exclusive {
            SmpState::CleanExclusive
        } else {
            SmpState::Clean
        };
        let slot = self.caches[pu.index()].slot_mut(r);
        slot.state = installed;
        slot.data = data;
        self.emit_state(pu, line, from, installed, now);
        // Any exclusive holder elsewhere loses exclusivity.
        for i in 0..self.caches.len() {
            if i == pu.index() {
                continue;
            }
            if let Some(r) = self.caches[i].find(line) {
                if self.caches[i].slot(r).state == SmpState::CleanExclusive {
                    self.caches[i].slot_mut(r).state = SmpState::Clean;
                    self.emit_state(
                        PuId(i),
                        line,
                        SmpState::CleanExclusive,
                        SmpState::Clean,
                        now,
                    );
                }
            }
        }
        (value, done, source)
    }

    /// BusWrite: invalidate every other copy; if one was dirty, its data is
    /// flushed to memory first so the requestor can fetch the latest line.
    fn bus_write(&mut self, pu: PuId, line: LineId, now: Cycle) -> Cycle {
        let grant = self
            .bus
            .transact_as(BusOp::Write, Some(pu), Some(line), now, 0);
        let wpl = self.config.geometry.words_per_line();
        let mut fetched: Option<Vec<Word>> = None;
        for i in 0..self.caches.len() {
            if i == pu.index() {
                continue;
            }
            if let Some(r) = self.caches[i].find(line) {
                let slot = self.caches[i].slot_mut(r);
                let from = slot.state;
                if slot.state.is_dirty() {
                    fetched = Some(slot.data.clone());
                } else if Mutation::SmpDropInvalidate.enabled() {
                    continue; // seeded bug: stale clean copies survive
                }
                slot.state = SmpState::Invalid;
                slot.line = None;
                self.emit_state(PuId(i), line, from, SmpState::Invalid, now);
            }
        }
        // If the requestor does not hold the line, it needs its current
        // content (write-allocate): from the flushed dirty copy or memory.
        let mut done = grant.done;
        let mut mem_penalty = 0;
        if self.caches[pu.index()].find(line).is_none() {
            let data = match fetched {
                Some(d) => {
                    self.stats.cache_transfers += 1;
                    d
                }
                None => {
                    self.stats.next_level_fills += 1;
                    done += self.config.timing.memory_cycles;
                    mem_penalty = self.config.timing.memory_cycles;
                    self.memory.read_line(line, wpl)
                }
            };
            let r = self.ensure_resident(pu, line, now);
            let from = self.caches[pu.index()].slot(r).state;
            let slot = self.caches[pu.index()].slot_mut(r);
            slot.state = SmpState::Clean; // will be set Dirty by caller
            slot.data = data;
            self.emit_state(pu, line, from, SmpState::Clean, now);
        } else if let Some(d) = fetched {
            // We held a stale clean copy while another cache had it dirty —
            // cannot happen under MRSW, but keep memory consistent anyway.
            self.memory.write_line_full(line, &d, wpl);
        }
        if self.profiler.is_active() {
            self.profiler.note_access(
                pu,
                AccessProfile {
                    mshr_stall: 0,
                    bus_wait: grant.start.since(now),
                    bus_transfer: grant.done.since(grant.start),
                    mem_latency: mem_penalty,
                },
            );
        }
        done
    }

    /// Makes sure `pu` has a slot holding `line`, evicting (with writeback)
    /// if needed. Returns the slot.
    fn ensure_resident(&mut self, pu: PuId, line: LineId, now: Cycle) -> WayRef {
        if let Some(r) = self.caches[pu.index()].find(line) {
            return r;
        }
        let wpl = self.config.geometry.words_per_line();
        let r = self.caches[pu.index()].victim_way(line);
        // Cast out a dirty victim (Figure 3a: Replace/BusWback).
        let victim = self.caches[pu.index()].slot(r);
        let victim_state = victim.state;
        let victim_line = victim.held_line();
        if victim.state.is_dirty() {
            let vline = victim.line.expect("dirty line has a tag");
            self.bus
                .transact_as(BusOp::Wback, Some(pu), Some(vline), now, 0);
            self.memory.write_line_full(vline, &victim.data, wpl);
            self.stats.writebacks += 1;
        }
        if let Some(vline) = victim_line {
            self.emit_state(pu, vline, victim_state, SmpState::Invalid, now);
        }
        let slot = self.caches[pu.index()].slot_mut(r);
        *slot = SmpLine {
            line: Some(line),
            state: SmpState::Invalid,
            data: vec![Word::ZERO; wpl],
        };
        r
    }
}

impl svc_types::Checkpointable for SmpLine {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.line.save_state(w);
        self.state.save_state(w);
        self.data.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.line.restore_state(r)?;
        self.state.restore_state(r)?;
        self.data.restore_state(r)
    }
}

/// Checkpoints the complete mutable SMP state: every cache line
/// (coherence state, tag, data, LRU stamps), the bus timing counters,
/// main memory and accumulated stats. Configuration is not stored;
/// restore targets a freshly built system with the same [`SmpConfig`].
impl svc_types::Checkpointable for SmpSystem {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_usize(self.caches.len());
        for c in &self.caches {
            c.save_state(w);
        }
        self.bus.save_state(w);
        self.memory.save_state(w);
        self.stats.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let n = r.take_usize()?;
        if n != self.caches.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "system built with {} PUs, checkpoint has {n}",
                self.caches.len()
            )));
        }
        for c in &mut self.caches {
            c.restore_state(r)?;
        }
        self.bus.restore_state(r)?;
        self.memory.restore_state(r)?;
        self.stats.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SmpSystem {
        SmpSystem::new(SmpConfig::small_for_tests())
    }

    #[test]
    fn figure4_example_sequence() {
        // Paper Figure 4: X dirty; Z loads (flush, both clean); Y stores
        // (invalidate X and Z); Y replaces (writeback).
        let mut s = sys();
        let a = Addr(0);
        s.store(PuId(0), a, Word(1), Cycle(0)); // X has dirty copy
        assert_eq!(s.line_state(PuId(0), a), SmpState::Dirty);

        let out = s.load(PuId(2), a, Cycle(10)); // Z loads
        assert_eq!(out.value, Word(1));
        assert_eq!(out.source, DataSource::Transfer);
        assert_eq!(s.line_state(PuId(0), a), SmpState::Clean);
        assert_eq!(s.line_state(PuId(2), a), SmpState::Clean);

        s.store(PuId(1), a, Word(2), Cycle(20)); // Y stores
        assert_eq!(s.line_state(PuId(0), a), SmpState::Invalid);
        assert_eq!(s.line_state(PuId(2), a), SmpState::Invalid);
        assert_eq!(s.line_state(PuId(1), a), SmpState::Dirty);
        s.assert_coherent();
        assert_eq!(s.coherent_peek(a), Word(2));
    }

    #[test]
    fn load_miss_from_memory() {
        let mut s = sys();
        let out = s.load(PuId(0), Addr(100), Cycle(0));
        assert_eq!(out.value, Word::ZERO);
        assert_eq!(out.source, DataSource::NextLevel);
        // bus (3) + memory (10)
        assert_eq!(out.done_at, Cycle(13));
    }

    #[test]
    fn hit_is_one_cycle_and_no_bus() {
        let mut s = sys();
        s.load(PuId(0), Addr(0), Cycle(0));
        let t0 = s.stats().bus_transactions;
        let out = s.load(PuId(0), Addr(1), Cycle(20)); // same 4-word line
        assert_eq!(out.done_at, Cycle(21));
        assert_eq!(out.source, DataSource::LocalHit);
        assert_eq!(s.stats().bus_transactions, t0);
    }

    #[test]
    fn exclusive_upgrade_is_silent() {
        let mut cfg = SmpConfig::small_for_tests();
        cfg.exclusive = true;
        let mut s = SmpSystem::new(cfg);
        s.load(PuId(0), Addr(0), Cycle(0));
        assert_eq!(s.line_state(PuId(0), Addr(0)), SmpState::CleanExclusive);
        let t0 = s.stats().bus_transactions;
        s.store(PuId(0), Addr(0), Word(1), Cycle(10));
        assert_eq!(s.stats().bus_transactions, t0, "no BusWrite needed");
        assert_eq!(s.line_state(PuId(0), Addr(0)), SmpState::Dirty);
    }

    #[test]
    fn second_reader_cancels_exclusivity() {
        let mut cfg = SmpConfig::small_for_tests();
        cfg.exclusive = true;
        let mut s = SmpSystem::new(cfg);
        s.load(PuId(0), Addr(0), Cycle(0));
        s.load(PuId(1), Addr(0), Cycle(10));
        assert_eq!(s.line_state(PuId(0), Addr(0)), SmpState::Clean);
        assert_eq!(s.line_state(PuId(1), Addr(0)), SmpState::Clean);
        s.assert_coherent();
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut s = sys();
        // Fill one set (8 sets, 2 ways, 4-word lines): lines 0 and 8 map to
        // set 0; adding line 16 evicts the LRU.
        s.store(PuId(0), Addr(0), Word(10), Cycle(0)); // line 0 dirty
        s.store(PuId(0), Addr(32), Word(20), Cycle(10)); // line 8 dirty
        s.store(PuId(0), Addr(64), Word(30), Cycle(20)); // line 16 evicts line 0
        assert_eq!(s.stats().writebacks, 1);
        assert_eq!(s.memory.peek(Addr(0)), Word(10), "victim reached memory");
        s.assert_coherent();
    }

    #[test]
    fn store_miss_fetches_rest_of_line() {
        let mut s = sys();
        s.store(PuId(0), Addr(1), Word(7), Cycle(0));
        s.store(PuId(1), Addr(2), Word(8), Cycle(10)); // same line, other PU
                                                       // PU1's line must carry PU0's word too.
        let out = s.load(PuId(1), Addr(1), Cycle(20));
        assert_eq!(out.value, Word(7));
        assert_eq!(out.source, DataSource::LocalHit);
    }

    #[test]
    fn sequential_trace_matches_flat_memory() {
        use svc_sim::rng::Xoshiro256;
        let mut s = sys();
        let mut flat = std::collections::HashMap::new();
        let mut rng = Xoshiro256::seed_from(42);
        let mut now = Cycle(0);
        for i in 0..4000u64 {
            let pu = PuId(rng.gen_index(0..4));
            let addr = Addr(rng.gen_range(0..256));
            if rng.gen_bool(0.4) {
                let v = Word(i + 1);
                now = s.store(pu, addr, v, now);
                flat.insert(addr, v);
            } else {
                let out = s.load(pu, addr, now);
                now = out.done_at;
                let expect = flat.get(&addr).copied().unwrap_or(Word::ZERO);
                assert_eq!(out.value, expect, "load {i} at {addr}");
            }
            if i % 256 == 0 {
                s.assert_coherent();
            }
        }
        s.assert_coherent();
        for (addr, v) in flat {
            assert_eq!(s.coherent_peek(addr), v);
        }
    }

    #[test]
    fn watchdog_clean_then_catches_broken_mrsw() {
        let mut s = sys();
        s.store(PuId(0), Addr(0), Word(1), Cycle(0));
        s.load(PuId(2), Addr(0), Cycle(10));
        assert_eq!(s.check_invariants(Cycle(20)), Vec::new());
        assert!(s.fault_break_mrsw(Addr(0)));
        let found = s.check_invariants(Cycle(30));
        assert!(
            found.iter().any(|v| v.kind == InvariantKind::Ownership),
            "got {found:?}"
        );
    }

    #[test]
    fn stats_fields_populate() {
        let mut s = sys();
        s.load(PuId(0), Addr(0), Cycle(0));
        s.store(PuId(1), Addr(0), Word(1), Cycle(10));
        let st = s.stats();
        assert_eq!(st.loads, 1);
        assert_eq!(st.stores, 1);
        assert!(st.bus_transactions >= 2);
        assert!(st.bus_busy_cycles >= 6);
        assert!(st.miss_ratio() > 0.0);
    }
}
