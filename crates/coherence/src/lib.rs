//! Snooping-bus cache coherence: the Multiple-Reader-Single-Writer (MRSW)
//! substrate the SVC builds on.
//!
//! Paper §3.1 reviews the invalidation-based protocol of a snooping-bus
//! Symmetric Multiprocessor (Figures 2–4): private L1 caches, each line in
//! Invalid / Clean / Dirty (optionally Exclusive), `BusRead` on load misses,
//! `BusWrite` invalidations on store misses, `BusWback` casting out dirty
//! victims. The SVC (crate `svc`) is "a progression of designs" starting
//! from exactly this machine, so this crate exists both as the
//! non-speculative baseline for experiments and as the reference point the
//! SVC's own tests compare against.
//!
//! The protocol here is *not* speculative: it tracks copies of a single
//! version per line (an MRSW protocol), whereas the SVC tracks multiple
//! speculative versions (an MRMW protocol).
//!
//! # Example
//!
//! ```
//! use svc_coherence::{SmpConfig, SmpSystem};
//! use svc_types::{Addr, Cycle, PuId, Word};
//!
//! let mut smp = SmpSystem::new(SmpConfig::small_for_tests());
//! smp.store(PuId(0), Addr(8), Word(5), Cycle(0));
//! let out = smp.load(PuId(1), Addr(8), Cycle(10));
//! assert_eq!(out.value, Word(5)); // supplied cache-to-cache
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;
mod system;
mod versioned;

pub use protocol::{BusRequest, SmpState};
pub use system::{SmpConfig, SmpSystem};
pub use versioned::SmpVersioned;
