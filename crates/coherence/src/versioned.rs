//! [`VersionedMemory`] adapter over the SMP baseline.
//!
//! The SMP/MRSW machine is non-speculative: it has no versions to squash
//! and no dependences to check, so it cannot *be* a speculative memory.
//! This adapter is a **timing-model shim**, not an architectural
//! conformance claim: it lets the multiscalar engine drive the SMP system
//! with the same task loop used for the SVC and ARB, which is what the
//! profiler's conservation tests (and the paper's Figure 19/20 baseline
//! comparisons) need. Stores never report violations, commits are a
//! single-cycle release, and squashes release the PU without undoing any
//! memory state — wrong-path stores land in the coherent memory image, so
//! the adapter must not be used where architectural results matter.

use svc_types::{
    AccessError, Addr, Cycle, InvariantViolation, LoadOutcome, MemGauges, MemStats, ModelCheckable,
    PuId, StateHasher, StoreOutcome, TaskAssignments, TaskId, VersionedMemory, Word,
};

use crate::system::{SmpConfig, SmpSystem};

/// The SMP baseline wrapped for the multiscalar engine. See the module
/// docs for the (deliberate) semantic holes.
#[derive(Debug, Clone)]
pub struct SmpVersioned {
    system: SmpSystem,
    assignments: TaskAssignments,
}

impl SmpVersioned {
    /// Wraps a fresh [`SmpSystem`] built from `config`.
    pub fn new(config: SmpConfig) -> SmpVersioned {
        let num_pus = config.num_pus;
        SmpVersioned {
            system: SmpSystem::new(config),
            assignments: TaskAssignments::new(num_pus),
        }
    }

    /// The wrapped system, for configuration calls (`set_tracer`,
    /// `set_profiler`) and inspection.
    pub fn system_mut(&mut self) -> &mut SmpSystem {
        &mut self.system
    }

    /// Read-only access to the wrapped system.
    pub fn system(&self) -> &SmpSystem {
        &self.system
    }
}

impl VersionedMemory for SmpVersioned {
    fn num_pus(&self) -> usize {
        self.system.config().num_pus
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.assignments.assign(pu, task);
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        if self.assignments.task_of(pu).is_none() {
            return Err(AccessError::NoTask(pu));
        }
        Ok(self.system.load(pu, addr, now))
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        if self.assignments.task_of(pu).is_none() {
            return Err(AccessError::NoTask(pu));
        }
        let done_at = self.system.store(pu, addr, value, now);
        Ok(StoreOutcome {
            done_at,
            violation: None,
        })
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        // Stores were globally ordered as they executed; committing is
        // just releasing the PU.
        self.assignments.release(pu);
        now + 1
    }

    fn squash(&mut self, pu: PuId) {
        // No speculative state to undo (see the module docs).
        self.assignments.release(pu);
    }

    fn profile_gauges(&self, _now: Cycle) -> MemGauges {
        // Non-speculative: no live versions, no tracked outstanding misses.
        MemGauges::default()
    }

    fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        self.system.check_invariants(now)
    }

    fn drain(&mut self) {}

    fn architectural(&self, addr: Addr) -> Word {
        self.system.coherent_peek(addr)
    }

    fn stats(&self) -> MemStats {
        self.system.stats()
    }

    fn reset_stats(&mut self) {
        self.system.reset_stats();
    }
}

impl ModelCheckable for SmpVersioned {
    fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        for pu in 0..self.num_pus() {
            h.write_opt_u64(self.assignments.task_of(PuId(pu)).map(|t| t.0));
        }
        self.system.fingerprint(addrs, h);
    }
}

impl svc_types::Checkpointable for SmpVersioned {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.system.save_state(w);
        self.assignments.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.system.restore_state(r)?;
        self.assignments.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_facing_surface_behaves() {
        let mut m = SmpVersioned::new(SmpConfig::small_for_tests());
        assert_eq!(m.num_pus(), 4);
        assert!(matches!(
            m.load(PuId(0), Addr(0), Cycle(0)),
            Err(AccessError::NoTask(_))
        ));
        m.assign(PuId(0), TaskId(0));
        let out = m.load(PuId(0), Addr(0), Cycle(0)).unwrap();
        assert_eq!(out.value, Word::ZERO);
        let st = m.store(PuId(0), Addr(0), Word(9), Cycle(20)).unwrap();
        assert!(st.violation.is_none(), "MRSW never detects violations");
        let done = m.commit(PuId(0), Cycle(30));
        assert_eq!(done, Cycle(31));
        assert_eq!(m.architectural(Addr(0)), Word(9));
        // Squash releases the PU without undoing memory state.
        m.assign(PuId(1), TaskId(1));
        m.store(PuId(1), Addr(4), Word(7), Cycle(40)).unwrap();
        m.squash(PuId(1));
        assert_eq!(m.architectural(Addr(4)), Word(7), "timing shim: no undo");
        assert!(m.check_invariants(Cycle(50)).is_empty());
    }
}
