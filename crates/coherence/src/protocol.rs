//! The line states and bus request vocabulary of the MRSW protocol
//! (paper Figure 3).

use core::fmt;

/// State of one line in an SMP private cache.
///
/// The paper's Figure 3 uses three states — Invalid (`V̄`), Clean (`V S̄`)
/// and Dirty (`V S`) — and notes the protocol "can be extended by adding an
/// exclusive bit to the state of each line to cut down coherence traffic";
/// [`SmpState::CleanExclusive`] is that extension (enabled by
/// [`SmpConfig::exclusive`](crate::SmpConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SmpState {
    /// No valid copy (`V` reset).
    #[default]
    Invalid,
    /// Valid, not modified; other caches may hold copies.
    Clean,
    /// Valid, not modified, and guaranteed to be the only cached copy;
    /// a store can upgrade to [`SmpState::Dirty`] without a bus request.
    CleanExclusive,
    /// Valid and modified (the `S`/dirty bit); the only valid copy among
    /// the caches, more recent than memory.
    Dirty,
}

impl SmpState {
    /// Whether the line holds usable data.
    pub fn is_valid(self) -> bool {
        self != SmpState::Invalid
    }

    /// Whether the line must be written back when evicted.
    pub fn is_dirty(self) -> bool {
        self == SmpState::Dirty
    }

    /// Short state name (`I`/`C`/`E`/`D`), used by [`Display`](fmt::Display)
    /// and by `line`-category trace events.
    pub fn name(self) -> &'static str {
        match self {
            SmpState::Invalid => "I",
            SmpState::Clean => "C",
            SmpState::CleanExclusive => "E",
            SmpState::Dirty => "D",
        }
    }
}

impl fmt::Display for SmpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl svc_types::Checkpointable for SmpState {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_u8(match self {
            SmpState::Invalid => 0,
            SmpState::Clean => 1,
            SmpState::CleanExclusive => 2,
            SmpState::Dirty => 3,
        });
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        *self = match r.take_u8()? {
            0 => SmpState::Invalid,
            1 => SmpState::Clean,
            2 => SmpState::CleanExclusive,
            3 => SmpState::Dirty,
            tag => {
                return Err(svc_types::CkptError::corrupt(format!(
                    "unknown SMP state tag {tag}"
                )))
            }
        };
        Ok(())
    }
}

/// The bus request types of the snooping protocol (paper Figure 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusRequest {
    /// Read request on a load miss; a dirty holder flushes.
    BusRead,
    /// Write/invalidate request on a store miss; all other copies are
    /// invalidated.
    BusWrite,
    /// Castout of a dirty replacement victim to the next level.
    BusWback,
}

impl fmt::Display for BusRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusRequest::BusRead => "BusRead",
            BusRequest::BusWrite => "BusWrite",
            BusRequest::BusWback => "BusWback",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_and_dirtiness() {
        assert!(!SmpState::Invalid.is_valid());
        assert!(SmpState::Clean.is_valid());
        assert!(SmpState::CleanExclusive.is_valid());
        assert!(SmpState::Dirty.is_valid());
        assert!(SmpState::Dirty.is_dirty());
        assert!(!SmpState::Clean.is_dirty());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(SmpState::default(), SmpState::Invalid);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SmpState::Dirty), "D");
        assert_eq!(format!("{}", BusRequest::BusWback), "BusWback");
    }
}
