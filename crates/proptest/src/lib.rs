//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access and no
//! crates.io mirror, so the real `proptest` cannot be fetched. This crate
//! re-implements exactly the subset of its API the workspace's test
//! suites use — the `proptest!` macro, `prop_assert*`, `prop_oneof!`,
//! range/tuple/collection/option/sample strategies, `prop_map`, `any`,
//! and `ProptestConfig::with_cases` — on top of a deterministic
//! SplitMix64 generator.
//!
//! Differences from the real crate, deliberate for this environment:
//!
//! * **No shrinking.** A failing case reports its generated inputs (all
//!   strategy values are `Debug`) and the deterministic seed reproduces
//!   it, but no minimization pass runs.
//! * **Deterministic by default.** Each test function derives its RNG
//!   stream from its module path and name (override the base seed with
//!   the `PROPTEST_SEED` environment variable), so CI runs are
//!   reproducible byte for byte.
//! * **Edge biasing instead of full value-tree heuristics:** integer
//!   range strategies return the endpoints with elevated probability.

#![forbid(unsafe_code)]

/// The deterministic PRNG and run configuration.
pub mod test_runner {
    /// SplitMix64 — the same tiny generator the simulator uses for seed
    /// expansion; deterministic, fast, and good enough to drive tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `PROPTEST_SEED` (if set) mixed with a
        /// stable hash of `name`, so each test gets its own stream.
        pub fn deterministic(name: &str) -> TestRng {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5AFE_C0DE_D00D_F00D);
            // FNV-1a over the test name keeps streams independent.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: base ^ h }
        }

        /// Next 64 uniformly distributed bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)` via the multiply-shift method.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range");
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration. Only the field the workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A generator of test values.
    ///
    /// Unlike the real proptest (which builds shrinkable value trees),
    /// this produces plain values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone + Debug> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        alts: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `alts` (must be non-empty).
        pub fn new(alts: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union { alts }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    // Bias toward the endpoints (~1/16 each) the way
                    // proptest's value trees favor edges.
                    match rng.next_u64() % 32 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.start + rng.below(span) as $t,
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }

    /// Full-range strategy for a primitive (`any::<T>()`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// The canonical instance.
        pub const fn new() -> Any<T> {
            Any(core::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize);

    /// Types with a canonical `any()` strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        fn any_strategy() -> Any<Self>;
    }

    macro_rules! arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn any_strategy() -> Any<$t> {
                    Any::new()
                }
            }
        )*};
    }
    arbitrary!(bool, u8, u16, u32, u64, usize);

    /// The full-range strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A>
    where
        Any<A>: Strategy<Value = A>,
    {
        A::any_strategy()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a `vec` size specification.
    pub trait IntoSizeRange {
        /// Bounds as a half-open `(min, max)` pair with `max > min`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a non-empty list of values.
    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// The strategy producing both booleans.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> = crate::strategy::Any::new();
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skips the rest of the current case when its precondition does not
/// hold. The offline shim simply ends the case (counting it as passed)
/// rather than resampling, so keep preconditions likely-true.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` runs its
/// body over `cases` generated inputs (default 256, or the block's
/// `#![proptest_config(...)]`). A failing case prints the generated
/// inputs before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let rendered_inputs = {
                        let mut s = String::new();
                        $({
                            use ::std::fmt::Write as _;
                            let _ = write!(s, "{} = {:?}; ", stringify!($arg), &$arg);
                        })+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest (offline shim): case {}/{} of {} failed with inputs: {}",
                            case + 1, cfg.cases, stringify!($name), rendered_inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
