//! Property tests for the invariant watchdog.
//!
//! Three directions: the watchdog must stay **silent** on healthy
//! randomized executions of every SVC design generation (no false
//! positives — the `Watched` wrapper sweeps every invariant after every
//! memory operation), it must **always catch** each deterministic
//! corruption drill regardless of which execution state the drill lands
//! in (no false negatives), and its verdicts must **agree with the
//! model checker's oracle**: random deep walks through `svc-check`'s
//! bounded alphabet replay cleanly, i.e. wherever the checker finds the
//! implementation conformant the watchdog is silent too (the replay
//! sweeps `check_invariants` after every action).

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Watched, Workload};
use svc::{SvcConfig, SvcSystem};
use svc_types::{Addr, Cycle, InvariantKind, PuId, TaskId, VersionedMemory, Word};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero violations across the whole run, for every design
    /// generation, over randomized conflict densities. `Watched` panics
    /// on the first violation, so completing the lockstep run IS the
    /// assertion.
    #[test]
    fn watchdog_is_silent_on_healthy_runs(
        seed in 0u64..1_000_000,
        tasks in 2usize..20,
        addr_space in 4u64..40,
        pus in 2usize..6,
        store_pct in 10u64..86,
    ) {
        let wl = Workload::random_with_density(
            seed, tasks, addr_space, pus, store_pct as f64 / 100.0,
        );
        for cfg in [
            SvcConfig::base(pus),
            SvcConfig::ecs(pus),
            SvcConfig::final_design(pus),
        ] {
            run_lockstep(&wl, Watched(SvcSystem::new(cfg)), seed);
        }
    }

    /// Checker-clean ⇒ watchdog-silent, probed on random *deep* walks
    /// the bounded breadth-first search cannot reach: every walk through
    /// the model checker's action alphabet must replay with no failure
    /// of any kind. A watchdog false positive would surface as an
    /// `Invariant`/`PostSquash` failure kind, a conformance bug as
    /// `LoadValue`/`Victim`/`CommittedView` — the assertion separates
    /// them so a disagreement names the side that is wrong.
    #[test]
    fn checker_oracle_and_watchdog_agree_on_random_walks(
        seed in 0u64..1_000_000,
        steps in 5usize..48,
    ) {
        use svc_check::{random_walk, replay_design, DesignId, FailureKind};
        for design in [DesignId::SvcBase, DesignId::SvcEcs, DesignId::SvcFinal] {
            let script = random_walk(design, seed, steps);
            let out = replay_design(design, &script.actions)
                .expect("walks only take enabled actions");
            if let Some(f) = &out.failure {
                let side = match f.kind {
                    FailureKind::Invariant | FailureKind::PostSquash =>
                        "watchdog fired where the checker's oracle was clean",
                    _ => "conformance to the ideal oracle broke",
                };
                prop_assert!(
                    false,
                    "{}: {side}: {} at action {}\n{}",
                    design.name(), f, out.executed, script.render()
                );
            }
        }
    }
}

/// A mid-execution system with speculative state spread across PUs:
/// replays a seeded random prefix WITHOUT committing, so lines sit in
/// every reachable mix of versions, copies and masks.
fn speculative_system(seed: u64, pus: usize, cfg: SvcConfig) -> SvcSystem {
    let mut sys = SvcSystem::new(cfg);
    let wl = Workload::random_with_density(seed, pus, 24, pus, 0.6);
    let mut now = Cycle(0);
    for (i, task) in wl.tasks.iter().enumerate() {
        let pu = PuId(i);
        sys.assign(pu, TaskId(i as u64));
        for (k, op) in task.iter().enumerate() {
            now += 1;
            // Stalls and violations are irrelevant here — any state the
            // prefix reaches is a valid corruption target.
            match *op {
                svc::conformance::Op::Load(a) => {
                    let _ = sys.load(pu, a, now);
                }
                svc::conformance::Op::Store(a, _) => {
                    let _ = sys.store(pu, a, Word(((i as u64) << 8) | k as u64), now);
                }
            }
        }
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A flipped state bit is caught from ANY reachable speculative
    /// state (the drill scans for the first corruptible (PU, line)).
    #[test]
    fn corrupted_state_bit_is_always_caught(
        seed in 0u64..1_000_000,
        pus in 2usize..6,
        victim in 0usize..6,
    ) {
        let mut sys = speculative_system(seed, pus, SvcConfig::final_design(pus));
        let hit = (0..24u64).any(|a| sys.fault_flip_state_bit(PuId(victim % pus), Addr(a)));
        prop_assume!(hit);
        let found = sys.check_invariants(Cycle(1_000));
        prop_assert!(
            !found.is_empty(),
            "flipped state bit escaped the watchdog"
        );
    }

    /// A spliced VOL (last holder pointed back at the first) is caught
    /// from ANY reachable speculative state, and specifically as a VOL
    /// problem — a cycle or an order inversion, never misclassified.
    #[test]
    fn spliced_vol_is_always_caught(
        seed in 0u64..1_000_000,
        pus in 2usize..6,
    ) {
        let mut sys = speculative_system(seed, pus, SvcConfig::final_design(pus));
        let hit = (0..24u64).any(|a| sys.fault_splice_vol(Addr(a)));
        prop_assume!(hit);
        let found = sys.check_invariants(Cycle(1_000));
        prop_assert!(
            found
                .iter()
                .any(|v| v.kind == InvariantKind::VolCycle
                    || v.kind == InvariantKind::VolOrder),
            "spliced VOL escaped the watchdog: {found:?}"
        );
    }
}
