//! Focused tests for the protocol clarifications documented in DESIGN.md
//! §5 ("Errata & clarifications") — the cases where the paper's text
//! under-specifies the protocol and a naive reading loses correctness.

use svc::{LineState, SvcConfig, SvcSystem};
use svc_types::{Addr, Cycle, DataSource, PuId, TaskId, VersionedMemory, Word};

const A: Addr = Addr(64);

fn svc_with_tasks(cfg: SvcConfig, n: usize) -> SvcSystem {
    let mut svc = SvcSystem::new(cfg);
    for i in 0..n {
        svc.assign(PuId(i), TaskId(i as u64));
    }
    svc
}

// ---- Erratum 1: the repeat-store hazard --------------------------------

#[test]
fn repeat_store_after_copy_is_recommunicated() {
    // Task 0 stores; task 1 loads the version (copy, L set); task 0
    // stores AGAIN. A naive Active-Dirty local store would leave task 1
    // holding the first value silently; the VOL pointer forces a BusWrite
    // that detects the violation.
    let mut svc = svc_with_tasks(SvcConfig::base(4), 2);
    svc.store(PuId(0), A, Word(1), Cycle(0)).unwrap();
    let out = svc.load(PuId(1), A, Cycle(5)).unwrap();
    assert_eq!(out.value, Word(1));
    let st = svc.store(PuId(0), A, Word(2), Cycle(10)).unwrap();
    let v = st.violation.expect("task 1 consumed a value that changed");
    assert_eq!(v.victim, TaskId(1));
    // Replay gets the final value.
    svc.squash(PuId(1));
    svc.assign(PuId(1), TaskId(1));
    assert_eq!(svc.load(PuId(1), A, Cycle(20)).unwrap().value, Word(2));
}

#[test]
fn repeat_store_without_copies_stays_local() {
    // No one copied the version: the second store must NOT pay a bus
    // transaction (this is what keeps store-rich tasks off the bus).
    let mut svc = svc_with_tasks(SvcConfig::base(4), 2);
    svc.store(PuId(0), A, Word(1), Cycle(0)).unwrap();
    let t0 = svc.stats().bus_transactions;
    let st = svc.store(PuId(0), A, Word(2), Cycle(10)).unwrap();
    assert!(st.violation.is_none());
    assert_eq!(svc.stats().bus_transactions, t0, "local overwrite");
    assert_eq!(st.done_at, Cycle(11), "one-cycle hit");
}

#[test]
fn repeat_store_to_other_word_of_owned_line_is_local() {
    // Multi-word line: the task owns the line dirty with no successors;
    // a store to a different word of the line is also local.
    let mut svc = svc_with_tasks(SvcConfig::rl(4), 2);
    svc.store(PuId(0), Addr(64), Word(1), Cycle(0)).unwrap();
    let t0 = svc.stats().bus_transactions;
    svc.store(PuId(0), Addr(65), Word(2), Cycle(10)).unwrap();
    assert_eq!(svc.stats().bus_transactions, t0);
    assert_eq!(svc.peek_word(PuId(0), Addr(65)), Some(Word(2)));
}

// ---- Erratum 2: the X (exclusive) bit ----------------------------------

#[test]
fn exclusive_store_to_own_passive_line_is_silent_and_safe() {
    // Task 0 stores and commits; nobody else touches the line. The next
    // task on the same PU stores to it with no bus transaction, and the
    // committed value is preserved (pushed to memory) in case of a squash.
    let mut svc = svc_with_tasks(SvcConfig::final_design(4), 1);
    svc.store(PuId(0), A, Word(1), Cycle(0)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    svc.assign(PuId(0), TaskId(1));
    let t0 = svc.stats().bus_transactions;
    let st = svc.store(PuId(0), A, Word(2), Cycle(10)).unwrap();
    assert!(st.violation.is_none());
    assert_eq!(svc.stats().bus_transactions, t0, "X-bit silent store");
    assert_eq!(st.done_at, Cycle(11));
    // Squash the new task: the architectural value must survive.
    svc.squash(PuId(0));
    assert_eq!(
        svc.architectural(A),
        Word(1),
        "committed version flushed first"
    );
    // Replay commits the new value.
    svc.assign(PuId(0), TaskId(1));
    svc.store(PuId(0), A, Word(2), Cycle(20)).unwrap();
    svc.commit(PuId(0), Cycle(30));
    svc.drain();
    assert_eq!(svc.architectural(A), Word(2));
}

#[test]
fn exclusivity_is_lost_when_another_cache_copies() {
    let mut svc = svc_with_tasks(SvcConfig::final_design(4), 2);
    svc.store(PuId(0), A, Word(1), Cycle(0)).unwrap();
    svc.load(PuId(1), A, Cycle(5)).unwrap(); // copy clears exclusivity
    svc.commit(PuId(0), Cycle(8));
    svc.assign(PuId(0), TaskId(2));
    let t0 = svc.stats().bus_transactions;
    // PU0's line is no longer exclusive: the store must hit the bus so
    // PU1's copy is handled.
    svc.store(PuId(0), A, Word(9), Cycle(10)).unwrap();
    assert!(svc.stats().bus_transactions > t0, "BusWrite required");
}

#[test]
fn exclusive_store_never_misses_a_violation() {
    // The dangerous shape: task 1 loads the line, then task 0 stores. If
    // task 0's line were wrongly marked exclusive the violation would be
    // lost. The load's BusRead clears PU0's exclusivity, so the store
    // goes to the bus and squashes task 1.
    let mut svc = svc_with_tasks(SvcConfig::final_design(4), 2);
    svc.store(PuId(0), A, Word(1), Cycle(0)).unwrap(); // exclusive version
    svc.load(PuId(1), A, Cycle(5)).unwrap(); // task 1 consumes speculatively
    let st = svc.store(PuId(0), A, Word(2), Cycle(10)).unwrap();
    assert_eq!(st.violation.unwrap().victim, TaskId(1));
}

// ---- Erratum 3/4: stale committed copies -------------------------------

#[test]
fn stale_committed_copy_never_supplies_a_load() {
    // PU0 copies the architectural value of A (0). Task 1 creates and
    // commits version 1, which is flushed to memory by task 2's load.
    // PU0's old copy is still cached but stale: a later task's load must
    // NOT be supplied from it.
    let mut svc = svc_with_tasks(SvcConfig::ec(4), 3);
    svc.load(PuId(0), A, Cycle(0)).unwrap(); // copy of architectural 0
    svc.store(PuId(1), A, Word(1), Cycle(5)).unwrap();
    svc.commit(PuId(0), Cycle(8));
    svc.commit(PuId(1), Cycle(9));
    let out = svc.load(PuId(2), A, Cycle(12)).unwrap();
    assert_eq!(out.value, Word(1), "flushes committed winner");
    svc.commit(PuId(2), Cycle(15));
    // New task on PU3 loads: PU0 still caches the stale 0-copy; the load
    // must get 1 (from PU2's copy or memory), never 0.
    svc.assign(PuId(3), TaskId(3));
    let out = svc.load(PuId(3), A, Cycle(20)).unwrap();
    assert_eq!(out.value, Word(1));
    // And PU0's own next task must also refetch, not reuse.
    svc.assign(PuId(0), TaskId(4));
    let out = svc.load(PuId(0), A, Cycle(25)).unwrap();
    assert_ne!(out.source, DataSource::LocalHit, "stale copy not reused");
    assert_eq!(out.value, Word(1));
}

// ---- Erratum 6: per-sub-block committed winners -------------------------

#[test]
fn different_committed_lines_win_different_subblocks() {
    // Task 0 stores word 0; task 1 stores word 1 of the same line. Both
    // commit. The architectural line must combine both stores regardless
    // of which cache's line gets flushed first.
    let mut svc = svc_with_tasks(SvcConfig::rl(4), 3);
    svc.store(PuId(0), Addr(64), Word(10), Cycle(0)).unwrap();
    svc.store(PuId(1), Addr(65), Word(20), Cycle(2)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    svc.commit(PuId(1), Cycle(6));
    // A later task reads both words (one bus access fills the line).
    let w0 = svc.load(PuId(2), Addr(64), Cycle(10)).unwrap().value;
    let w1 = svc.load(PuId(2), Addr(65), Cycle(11)).unwrap().value;
    assert_eq!((w0, w1), (Word(10), Word(20)));
    svc.commit(PuId(2), Cycle(20));
    svc.drain();
    assert_eq!(svc.architectural(Addr(64)), Word(10));
    assert_eq!(svc.architectural(Addr(65)), Word(20));
}

#[test]
fn superseding_store_purges_older_committed_subblock_without_writeback() {
    // Word 0 committed by task 0, then re-stored and committed by task 1:
    // only task 1's value may ever reach memory.
    let mut svc = svc_with_tasks(SvcConfig::rl(4), 3);
    svc.store(PuId(0), Addr(64), Word(1), Cycle(0)).unwrap();
    svc.store(PuId(1), Addr(64), Word(2), Cycle(2)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    svc.commit(PuId(1), Cycle(6));
    let out = svc.load(PuId(2), Addr(64), Cycle(10)).unwrap();
    assert_eq!(out.value, Word(2));
    assert_eq!(
        svc.architectural(Addr(64)),
        Word(2),
        "older committed version purged, never written back over the winner"
    );
    let stats = svc.stats();
    assert!(stats.purged_versions >= 1, "version 1 was superseded");
}

// ---- Replacement discipline ---------------------------------------------

#[test]
fn eviction_of_passive_dirty_respects_winner_order() {
    // Fill a tiny cache so a passive-dirty line is evicted; a younger
    // committed version of the same sub-block elsewhere must still win.
    let mut cfg = SvcConfig::small_for_tests(2);
    cfg.snarfing = false;
    let mut svc = SvcSystem::new(cfg);
    svc.assign(PuId(0), TaskId(0));
    svc.assign(PuId(1), TaskId(1));
    // Both tasks store the same word; commit both: PU1 holds the winner.
    svc.store(PuId(0), Addr(0), Word(1), Cycle(0)).unwrap();
    svc.store(PuId(1), Addr(0), Word(2), Cycle(1)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    svc.commit(PuId(1), Cycle(6));
    // Force PU0 to evict its (superseded) passive-dirty line: lines 0, 4,
    // 8 map to set 0 in the 4-set geometry.
    svc.assign(PuId(0), TaskId(2));
    svc.store(PuId(0), Addr(16), Word(7), Cycle(10)).unwrap();
    svc.store(PuId(0), Addr(32), Word(8), Cycle(11)).unwrap();
    svc.store(PuId(0), Addr(48), Word(9), Cycle(12)).unwrap();
    // Memory must never see the superseded value 1 as the final word.
    svc.assign(PuId(1), TaskId(3));
    let out = svc.load(PuId(1), Addr(0), Cycle(20)).unwrap();
    assert_eq!(out.value, Word(2), "winner survives PU0's eviction");
}

#[test]
fn base_design_commit_is_a_writeback_burst() {
    // Quantify erratum-adjacent behaviour: the base design's commit cost
    // scales with dirty lines; EC's does not (paper §3.2.6 / §3.4).
    for n in [4u64, 16, 32] {
        let mut base = SvcSystem::new(SvcConfig::base(1));
        let mut ec = SvcSystem::new(SvcConfig::ec(1));
        for svc in [&mut base, &mut ec] {
            svc.assign(PuId(0), TaskId(0));
            for i in 0..n {
                svc.store(PuId(0), Addr(i * 4), Word(i), Cycle(i * 20))
                    .unwrap();
            }
        }
        let base_cost = base.commit(PuId(0), Cycle(10_000)) - Cycle(10_000);
        let ec_cost = ec.commit(PuId(0), Cycle(10_000)) - Cycle(10_000);
        assert_eq!(ec_cost, 1);
        assert!(base_cost >= n, "burst of {n} writebacks took {base_cost}");
    }
}

#[test]
fn committed_state_survives_squash_in_every_lazy_design() {
    for cfg in [
        SvcConfig::ec(2),
        SvcConfig::ecs(2),
        SvcConfig::final_design(2),
    ] {
        let mut svc = SvcSystem::new(cfg);
        svc.assign(PuId(0), TaskId(0));
        svc.store(PuId(0), A, Word(5), Cycle(0)).unwrap();
        svc.commit(PuId(0), Cycle(5));
        svc.assign(PuId(0), TaskId(1));
        svc.store(PuId(0), Addr(128), Word(6), Cycle(10)).unwrap();
        svc.squash(PuId(0));
        // The committed version of A is untouched; task 1's store is gone.
        assert_ne!(svc.line_state(PuId(0), A), LineState::Invalid);
        svc.drain();
        assert_eq!(svc.architectural(A), Word(5));
        assert_eq!(svc.architectural(Addr(128)), Word::ZERO);
    }
}
