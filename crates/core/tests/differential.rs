//! Differential testing: every SVC design, run in lockstep against the
//! `IdealMemory` oracle on randomized speculative task workloads, must
//! return the same value for every load, detect the same memory-dependence
//! violations, and commit the same architectural memory image (DESIGN.md
//! invariants 1 and 5). The driver lives in `svc::conformance`.

use svc::conformance::{run_lockstep, Op, Workload};
use svc::{SvcConfig, SvcSystem};
use svc_sim::rng::Xoshiro256;
use svc_types::{Addr, Word};

/// Word-granularity configs (sub-block = 1 word), where violation
/// detection is exact and must match the oracle bit for bit.
fn configs_exact() -> Vec<SvcConfig> {
    vec![
        SvcConfig::base(4),
        SvcConfig::ec(4),
        SvcConfig::ecs(4),
        SvcConfig::hr(4),
    ]
}

#[test]
fn differential_small_hot_set() {
    // Tiny address space: maximal version conflicts and violations.
    let mut total_squashes = 0;
    for seed in 0..30 {
        let wl = Workload::random(seed, 24, 8, 4);
        for cfg in configs_exact() {
            total_squashes += run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
    assert!(
        total_squashes > 50,
        "the hot-set workload should exercise squashes (got {total_squashes})"
    );
}

#[test]
fn differential_medium_address_space() {
    for seed in 100..120 {
        let wl = Workload::random(seed, 40, 128, 4);
        for cfg in configs_exact() {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
}

#[test]
fn differential_multiword_lines() {
    // rl()/final_design() use 4-word lines with 1-word versioning blocks:
    // violation detection stays exact while line-granularity transfer,
    // write-allocate fills, snarfing and hybrid update are all exercised.
    for seed in 200..215 {
        let wl = Workload::random(seed, 32, 64, 4);
        for cfg in [SvcConfig::rl(4), SvcConfig::final_design(4)] {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
}

#[test]
fn differential_two_pus_and_eight_pus() {
    for seed in 300..310 {
        for pus in [2usize, 8] {
            let wl = Workload::random(seed, 30, 32, pus);
            run_lockstep(&wl, SvcSystem::new(SvcConfig::ecs(pus)), seed);
            run_lockstep(&wl, SvcSystem::new(SvcConfig::final_design(pus)), seed);
        }
    }
}

#[test]
fn differential_store_heavy() {
    // Store-heavy traffic stresses the committed-winner writeback logic.
    for seed in 400..410 {
        let mut rng = Xoshiro256::seed_from(seed);
        let tasks: Vec<Vec<Op>> = (0..24)
            .map(|t| {
                (0..6)
                    .map(|i| Op::Store(Addr(rng.gen_range(0..16)), Word((t << 8) + i + 1)))
                    .collect()
            })
            .collect();
        let wl = Workload { tasks, num_pus: 4 };
        for cfg in configs_exact() {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
}

#[test]
fn differential_tiny_cache_forces_replacements() {
    // A tiny cache maximizes evictions and replacement stalls.
    for seed in 500..510 {
        let wl = Workload::random(seed, 24, 64, 4);
        let mut cfg = SvcConfig::ecs(4);
        cfg.geometry = svc_mem::CacheGeometry::word_lines(4, 2);
        run_lockstep(&wl, SvcSystem::new(cfg), seed);
        let mut cfg = SvcConfig::final_design(4);
        cfg.geometry = svc_mem::CacheGeometry::new(2, 2, 4, 1);
        run_lockstep(&wl, SvcSystem::new(cfg), seed);
    }
}
