//! End-to-end walk-throughs of the paper's figures and the running example
//! program of Figure 7, executed on the real `SvcSystem`.
//!
//! The example program (all to address A):
//!   task 0: store 0      task 3: store 3
//!   task 1: store 1      task 5: store 5
//!   task 2: load         task 6: load
//! (values follow the paper's convention: task i stores the value i).

use svc::{LineState, SvcConfig, SvcSystem};
use svc_types::{Addr, Cycle, DataSource, PuId, TaskId, VersionedMemory, Word};

const A: Addr = Addr(64);
// The paper's PU designators.
const X: PuId = PuId(0);
const Y: PuId = PuId(1);
const Z: PuId = PuId(2);
const W: PuId = PuId(3);

fn word_line_svc(cfg: SvcConfig) -> SvcSystem {
    SvcSystem::new(cfg)
}

/// Sets up the Figure 8/9 allocation: X/0, Z/1, W/2, Y/3.
fn assign_fig8(svc: &mut SvcSystem) {
    svc.assign(X, TaskId(0));
    svc.assign(Z, TaskId(1));
    svc.assign(W, TaskId(2));
    svc.assign(Y, TaskId(3));
}

#[test]
fn figure8_load_supplied_by_task1_version() {
    let mut svc = word_line_svc(SvcConfig::base(4));
    assign_fig8(&mut svc);
    // Stores by tasks 0, 3, 1 execute (out of order), as in the snapshot.
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Y, A, Word(3), Cycle(10)).unwrap();
    svc.store(Z, A, Word(1), Cycle(20)).unwrap();
    // W (task 2) loads: must see version 1, via a cache-to-cache transfer.
    let out = svc.load(W, A, Cycle(30)).unwrap();
    assert_eq!(out.value, Word(1));
    assert_eq!(out.source, DataSource::Transfer);
    // VOL is X/0, Z/1, W/2, Y/3 as in the figure.
    assert_eq!(svc.vol_of(A), vec![X, Z, W, Y]);
}

#[test]
fn figure9_stores_and_violation() {
    let mut svc = word_line_svc(SvcConfig::base(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    // Task 2 loads early (sees version 0) — a use before definition.
    let out = svc.load(W, A, Cycle(10)).unwrap();
    assert_eq!(out.value, Word(0));
    // Task 3 stores: most recent task, no invalidations, no squash.
    let st = svc.store(Y, A, Word(3), Cycle(20)).unwrap();
    assert!(st.violation.is_none());
    // Task 1 stores: task 2's load was incorrect -> violation, victim 2.
    let st = svc.store(Z, A, Word(1), Cycle(30)).unwrap();
    let v = st.violation.expect("task 2 loaded a stale version");
    assert_eq!(v.victim, TaskId(2));
    // The engine squashes tasks 2 and 3 (simple squash model).
    svc.squash(W);
    svc.squash(Y);
    assert_eq!(svc.line_state(W, A), LineState::Invalid);
    // Replay: task 2 now loads version 1.
    svc.assign(W, TaskId(2));
    svc.assign(Y, TaskId(3));
    let out = svc.load(W, A, Cycle(40)).unwrap();
    assert_eq!(out.value, Word(1));
}

#[test]
fn full_example_program_commits_value_5() {
    // Runs the whole Figure 7 program in order on the final design and
    // checks sequential semantics: A ends with task 5's value.
    let mut svc = word_line_svc(SvcConfig::final_design(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    let out = svc.load(W, A, Cycle(10)).unwrap();
    assert_eq!(out.value, Word(1), "task 2 reads version 1");
    svc.store(Y, A, Word(3), Cycle(15)).unwrap();

    // Commit tasks 0..3 in order; PUs are recycled for tasks 4..7.
    svc.commit(X, Cycle(20));
    svc.commit(Z, Cycle(21));
    svc.commit(W, Cycle(22));
    svc.commit(Y, Cycle(23));
    svc.assign(Z, TaskId(4));
    svc.assign(X, TaskId(5));
    svc.assign(W, TaskId(6));
    svc.assign(Y, TaskId(7));

    // Task 5 stores 5; task 6 loads and must see 5.
    svc.store(X, A, Word(5), Cycle(30)).unwrap();
    let out = svc.load(W, A, Cycle(40)).unwrap();
    assert_eq!(out.value, Word(5), "task 6 reads version 5");

    svc.commit(Z, Cycle(50));
    svc.commit(X, Cycle(51));
    svc.commit(W, Cycle(52));
    svc.commit(Y, Cycle(53));
    svc.drain();
    assert_eq!(svc.architectural(A), Word(5));
}

#[test]
fn figure12_committed_version_supplies_later_load() {
    // EC design: tasks 0 and 1 store and commit; task 2's load must get
    // committed version 1 (flushed to memory on the way).
    let mut svc = word_line_svc(SvcConfig::ec(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    svc.store(Y, A, Word(3), Cycle(10)).unwrap();
    svc.commit(X, Cycle(20)); // one-cycle commits: C flash-set
    svc.commit(Z, Cycle(21));
    assert_eq!(svc.line_state(X, A), LineState::PassiveDirty);
    assert_eq!(svc.line_state(Z, A), LineState::PassiveDirty);

    let out = svc.load(W, A, Cycle(30)).unwrap();
    assert_eq!(out.value, Word(1), "most recent committed version");
    // Version 1 is now in memory; version 0 was purged without writeback.
    assert_eq!(svc.architectural(A), Word(1));
    let stats = svc.stats();
    assert_eq!(stats.writebacks, 1, "only the winner is written back");
    assert_eq!(stats.purged_versions, 1, "version 0 purged");
}

#[test]
fn ec_commit_is_one_cycle_base_commit_is_not() {
    let addrs: Vec<Addr> = (0..16).map(|i| Addr(i * 4)).collect();
    let run = |cfg: SvcConfig| {
        let mut svc = word_line_svc(cfg);
        svc.assign(X, TaskId(0));
        for (i, &a) in addrs.iter().enumerate() {
            svc.store(X, a, Word(i as u64), Cycle(i as u64 * 10))
                .unwrap();
        }
        svc.commit(X, Cycle(1000)) - Cycle(1000)
    };
    let base_cost = run(SvcConfig::base(4));
    let ec_cost = run(SvcConfig::ec(4));
    assert_eq!(ec_cost, 1, "EC commit: flash-set the C bit");
    assert!(
        base_cost > 16,
        "base commit writes back 16 dirty lines serially (took {base_cost})"
    );
}

#[test]
fn stale_bit_allows_local_reuse_of_read_only_data() {
    // Read-only data: task 0 loads A (from memory), commits. The next task
    // on the same PU loads A again: with the T bit this is a local hit.
    let mut svc = word_line_svc(SvcConfig::ec(4));
    svc.assign(X, TaskId(0));
    let out = svc.load(X, A, Cycle(0)).unwrap();
    assert_eq!(out.source, DataSource::NextLevel);
    svc.commit(X, Cycle(10));
    svc.assign(X, TaskId(1));
    let out = svc.load(X, A, Cycle(20)).unwrap();
    assert_eq!(
        out.source,
        DataSource::LocalHit,
        "non-stale passive-clean copy is reused by resetting C"
    );
    assert_eq!(out.done_at, Cycle(21));
}

#[test]
fn figure15_stale_copy_is_not_reused() {
    // Second time line of Figure 14/15: task 3 creates version 3, making
    // W's copy of version 1 stale; after commits, task 6 on W must issue a
    // bus request instead of reusing the stale copy.
    let mut svc = word_line_svc(SvcConfig::ec(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    let out = svc.load(W, A, Cycle(10)).unwrap();
    assert_eq!(out.value, Word(1)); // W copies version 1
    svc.store(Y, A, Word(3), Cycle(15)).unwrap(); // version 3: W now stale
    svc.commit(X, Cycle(20));
    svc.commit(Z, Cycle(21));
    svc.commit(W, Cycle(22));
    svc.commit(Y, Cycle(23));
    svc.assign(W, TaskId(6));
    let out = svc.load(W, A, Cycle(30)).unwrap();
    assert_ne!(out.source, DataSource::LocalHit, "stale copy: bus request");
    assert_eq!(out.value, Word(3), "the correct (most recent) version");
}

#[test]
fn figure15_not_stale_copy_is_reused() {
    // First time line of Figure 14/15: without the version-3 store, W's
    // copy of version 1 stays the most recent version; task 6 reuses it.
    let mut svc = word_line_svc(SvcConfig::ec(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    let out = svc.load(W, A, Cycle(10)).unwrap();
    assert_eq!(out.value, Word(1));
    svc.commit(X, Cycle(20));
    svc.commit(Z, Cycle(21));
    svc.commit(W, Cycle(22));
    svc.commit(Y, Cycle(23));
    svc.assign(W, TaskId(6));
    let out = svc.load(W, A, Cycle(30)).unwrap();
    assert_eq!(out.source, DataSource::LocalHit, "copy is not stale");
    assert_eq!(out.value, Word(1));
}

#[test]
fn figure17_vol_repair_after_squash() {
    // Versions 0 (committed), 1, 3; tasks 3+ squash; task 2's load must
    // still find version 1 after the VOL is repaired.
    let mut svc = word_line_svc(SvcConfig::ecs(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    svc.store(Y, A, Word(3), Cycle(10)).unwrap();
    svc.commit(X, Cycle(15));
    svc.assign(X, TaskId(4));
    // Tasks 3 and 4 squash (e.g. a task misprediction).
    svc.squash(Y);
    svc.squash(X);
    assert_eq!(svc.line_state(Y, A), LineState::Invalid);
    // Task 2 loads: dangling pointer (Z -> Y) is repaired; version 1 wins.
    let out = svc.load(W, A, Cycle(20)).unwrap();
    assert_eq!(out.value, Word(1));
    assert_eq!(svc.vol_of(A), vec![Z, W]);
    // The committed version 0 was the only committed one: flushed.
    assert_eq!(svc.architectural(A), Word(0));
}

#[test]
fn architectural_bit_preserves_read_only_data_across_squashes() {
    // ECS: task 1 loads architectural data; a squash of task 1 keeps the
    // line (A bit), so the restarted task hits locally.
    let mut svc = word_line_svc(SvcConfig::ecs(4));
    svc.assign(X, TaskId(0));
    svc.assign(Z, TaskId(1));
    svc.load(Z, A, Cycle(0)).unwrap(); // from memory: architectural
    svc.squash(Z);
    svc.assign(Z, TaskId(1));
    let out = svc.load(Z, A, Cycle(10)).unwrap();
    assert_eq!(out.source, DataSource::LocalHit, "A-bit retention");
    let stats = svc.stats();
    assert_eq!(stats.squash_retained, 1);
    assert_eq!(stats.squash_invalidations, 0);
}

#[test]
fn ec_design_without_arch_bit_loses_data_on_squash() {
    let mut svc = word_line_svc(SvcConfig::ec(4));
    svc.assign(Z, TaskId(1));
    svc.load(Z, A, Cycle(0)).unwrap();
    svc.squash(Z);
    svc.assign(Z, TaskId(1));
    let out = svc.load(Z, A, Cycle(10)).unwrap();
    assert_ne!(out.source, DataSource::LocalHit, "no A bit: cold restart");
}

#[test]
fn snarfing_spreads_read_only_fills() {
    // HR design: Z and W run tasks; Z loads a line from memory, and W
    // (same correct version) snarfs it; W's later load hits locally.
    let mut svc = word_line_svc(SvcConfig::hr(4));
    svc.assign(Z, TaskId(1));
    svc.assign(W, TaskId(2));
    svc.load(Z, A, Cycle(0)).unwrap();
    assert_eq!(svc.stats().snarfs, 1, "W snarfed the fill");
    let out = svc.load(W, A, Cycle(10)).unwrap();
    assert_eq!(out.source, DataSource::LocalHit);
    assert_eq!(out.value, Word::ZERO);
}

#[test]
fn false_sharing_does_not_squash_with_subblocks() {
    // RL design: 4-word lines, word sub-blocks. Task 2 loads word 1; task
    // 1 stores word 0 of the same line. No violation.
    let mut svc = word_line_svc(SvcConfig::rl(4));
    svc.assign(Z, TaskId(1));
    svc.assign(W, TaskId(2));
    let line_base = Addr(64);
    svc.load(W, line_base + 1, Cycle(0)).unwrap();
    let st = svc.store(Z, line_base, Word(9), Cycle(10)).unwrap();
    assert!(st.violation.is_none(), "different words of the same line");
    // True sharing still squashes.
    let st = svc.store(Z, line_base + 1, Word(7), Cycle(20)).unwrap();
    assert_eq!(st.violation.unwrap().victim, TaskId(2));
}

#[test]
fn hybrid_update_forwards_store_to_consumer_copy() {
    // Final design: W holds a copy (no exposed load on word 0); Z stores
    // word 0. With hybrid update W's copy receives the new value, and W's
    // later load of word 0 hits locally with the updated data.
    let mut svc = word_line_svc(SvcConfig::final_design(4));
    svc.assign(Z, TaskId(1));
    svc.assign(W, TaskId(2));
    let line_base = Addr(64);
    svc.load(W, line_base + 1, Cycle(0)).unwrap(); // copy, L on word 1 only
    let st = svc.store(Z, line_base, Word(9), Cycle(10)).unwrap();
    assert!(st.violation.is_none());
    let out = svc.load(W, line_base, Cycle(20)).unwrap();
    assert_eq!(
        out.source,
        DataSource::LocalHit,
        "copy was updated in place"
    );
    assert_eq!(out.value, Word(9));
}

#[test]
fn writeback_order_is_preserved_for_committed_versions() {
    // Two committed versions exist; a later store purges them; memory must
    // hold the most recent committed version, never the older one.
    let mut svc = word_line_svc(SvcConfig::ec(4));
    assign_fig8(&mut svc);
    svc.store(X, A, Word(0), Cycle(0)).unwrap();
    svc.store(Z, A, Word(1), Cycle(5)).unwrap();
    svc.commit(X, Cycle(10));
    svc.commit(Z, Cycle(11));
    svc.assign(X, TaskId(5));
    svc.store(X, A, Word(5), Cycle(20)).unwrap();
    assert_eq!(svc.architectural(A), Word(1), "winner flushed before purge");
    svc.commit(W, Cycle(30));
    svc.commit(Y, Cycle(31));
    svc.commit(X, Cycle(32));
    svc.drain();
    assert_eq!(svc.architectural(A), Word(5));
}

#[test]
fn speculative_cache_stalls_instead_of_evicting_versioning_state() {
    // Fill one set of a tiny cache with active lines from a speculative
    // (non-head) task, then force a conflict miss: the access must report
    // a replacement stall, not silently drop state.
    let mut cfg = SvcConfig::small_for_tests(2); // 4 sets, 2 ways, 4-word lines
    cfg.snarfing = false;
    let mut svc = SvcSystem::new(cfg);
    svc.assign(X, TaskId(0)); // head
    svc.assign(Y, TaskId(1)); // speculative
                              // Lines 0, 4, 8 map to set 0 (4 sets). Fill both ways with stores.
    svc.store(Y, Addr(0), Word(1), Cycle(0)).unwrap();
    svc.store(Y, Addr(16), Word(2), Cycle(10)).unwrap();
    let err = svc.store(Y, Addr(32), Word(3), Cycle(20)).unwrap_err();
    assert!(matches!(
        err,
        svc_types::AccessError::ReplacementStall { .. }
    ));
    // The head task can do the same thing freely.
    svc.store(X, Addr(0), Word(1), Cycle(30)).unwrap();
    svc.store(X, Addr(16), Word(2), Cycle(40)).unwrap();
    svc.store(X, Addr(32), Word(3), Cycle(50)).unwrap();
}

#[test]
fn head_eviction_of_dirty_line_reaches_memory() {
    let mut cfg = SvcConfig::small_for_tests(2);
    cfg.snarfing = false;
    let mut svc = SvcSystem::new(cfg);
    svc.assign(X, TaskId(0)); // head
    svc.store(X, Addr(0), Word(11), Cycle(0)).unwrap();
    svc.store(X, Addr(16), Word(22), Cycle(10)).unwrap();
    svc.store(X, Addr(32), Word(33), Cycle(20)).unwrap(); // evicts line 0
    assert_eq!(
        svc.architectural(Addr(0)),
        Word(11),
        "evicted active-dirty data lands in memory"
    );
    // And a later task's load sees it.
    svc.assign(Y, TaskId(1));
    let out = svc.load(Y, Addr(0), Cycle(30)).unwrap();
    assert_eq!(out.value, Word(11));
}

#[test]
fn load_miss_counts_follow_paper_definition() {
    let mut svc = word_line_svc(SvcConfig::ecs(4));
    svc.assign(X, TaskId(0));
    svc.assign(Z, TaskId(1));
    svc.store(X, A, Word(1), Cycle(0)).unwrap(); // miss to memory? store-miss
    let s0 = svc.stats();
    let out = svc.load(Z, A, Cycle(10)).unwrap();
    assert_eq!(out.source, DataSource::Transfer);
    let s1 = svc.stats();
    assert_eq!(
        s1.next_level_fills, s0.next_level_fills,
        "cache-to-cache transfers are not misses (§4.4)"
    );
    assert_eq!(s1.cache_transfers, s0.cache_transfers + 1);
}
