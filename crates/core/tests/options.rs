//! Tests for the optional protocol knobs: §3.8.1's retain-flushed
//! optimization and the hybrid protocol's update limit.

use svc::conformance::{run_lockstep, Workload};
use svc::{LineState, SvcConfig, SvcSystem};
use svc_types::{Addr, Cycle, DataSource, PuId, TaskId, VersionedMemory, Word};

#[test]
fn retain_flushed_keeps_flushed_line_as_architectural_copy() {
    let mut on = SvcConfig::ecs(4);
    on.retain_flushed = true;
    let mut svc = SvcSystem::new(on);
    let a = Addr(64);
    svc.assign(PuId(0), TaskId(0));
    svc.assign(PuId(1), TaskId(1));
    svc.store(PuId(0), a, Word(7), Cycle(0)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    assert_eq!(svc.line_state(PuId(0), a), LineState::PassiveDirty);

    // Task 1's load flushes the committed winner; with retain_flushed the
    // line survives as a passive-clean architectural copy.
    let out = svc.load(PuId(1), a, Cycle(10)).unwrap();
    assert_eq!(out.value, Word(7));
    assert_eq!(svc.line_state(PuId(0), a), LineState::PassiveClean);

    // ...so a later task on PU0 can reuse it locally (T bit unset: no
    // newer version exists).
    svc.assign(PuId(0), TaskId(2));
    let out = svc.load(PuId(0), a, Cycle(20)).unwrap();
    assert_eq!(out.source, DataSource::LocalHit, "retained copy reused");
    assert_eq!(out.value, Word(7));
}

#[test]
fn without_retain_flushed_the_line_is_purged() {
    let mut svc = SvcSystem::new(SvcConfig::ecs(4));
    let a = Addr(64);
    svc.assign(PuId(0), TaskId(0));
    svc.assign(PuId(1), TaskId(1));
    svc.store(PuId(0), a, Word(7), Cycle(0)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    svc.load(PuId(1), a, Cycle(10)).unwrap();
    assert_eq!(
        svc.line_state(PuId(0), a),
        LineState::Invalid,
        "final-design rule: passive dirty invalidates on bus requests"
    );
}

#[test]
fn update_limit_bounds_hybrid_updates() {
    // Consumers load word 1 of a 4-word line; the producer stores word 0.
    // No violation (different versioning blocks), so the copies are
    // hybrid-update candidates: with updates enabled PU1's copy receives
    // the new word 0 in place; with update_limit 0 it loses that word.
    let mut cfg = SvcConfig::final_design(4);
    cfg.update_limit = 0; // degenerate hybrid: behaves like invalidate
    cfg.snarfing = false;
    let mut inv = SvcSystem::new(cfg);
    let mut cfg2 = cfg;
    cfg2.update_limit = usize::MAX;
    let mut upd = SvcSystem::new(cfg2);
    for svc in [&mut inv, &mut upd] {
        for i in 0..3 {
            svc.assign(PuId(i), TaskId(i as u64));
        }
        svc.load(PuId(1), Addr(65), Cycle(0)).unwrap();
        svc.load(PuId(2), Addr(65), Cycle(1)).unwrap();
        let st = svc.store(PuId(0), Addr(64), Word(9), Cycle(5)).unwrap();
        assert!(st.violation.is_none(), "different sub-blocks");
    }
    assert_eq!(
        upd.peek_word(PuId(1), Addr(64)),
        Some(Word(9)),
        "updated in place"
    );
    assert_eq!(inv.peek_word(PuId(1), Addr(64)), None, "invalidated");
    // An intermediate limit updates exactly one copy.
    let mut cfg1 = cfg;
    cfg1.update_limit = 1;
    let mut one = SvcSystem::new(cfg1);
    for i in 0..3 {
        one.assign(PuId(i), TaskId(i as u64));
    }
    one.load(PuId(1), Addr(65), Cycle(0)).unwrap();
    one.load(PuId(2), Addr(65), Cycle(1)).unwrap();
    one.store(PuId(0), Addr(64), Word(9), Cycle(5)).unwrap();
    let updated = [PuId(1), PuId(2)]
        .into_iter()
        .filter(|&q| one.peek_word(q, Addr(64)) == Some(Word(9)))
        .count();
    assert_eq!(updated, 1, "exactly one copy updated under limit 1");
}

#[test]
fn retain_flushed_conforms_to_the_oracle() {
    for seed in 700..712 {
        let wl = Workload::random(seed, 24, 16, 4);
        let mut cfg = SvcConfig::final_design(4);
        cfg.retain_flushed = true;
        run_lockstep(&wl, SvcSystem::new(cfg), seed);
        let mut cfg = SvcConfig::ecs(4);
        cfg.retain_flushed = true;
        run_lockstep(&wl, SvcSystem::new(cfg), seed);
    }
}

#[test]
fn update_limit_conforms_to_the_oracle() {
    for seed in 800..812 {
        let wl = Workload::random(seed, 24, 16, 4);
        for limit in [0usize, 1, 2] {
            let mut cfg = SvcConfig::final_design(4);
            cfg.update_limit = limit;
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
}

#[test]
fn kitchen_sink_conforms_to_the_oracle() {
    // Every optional mechanism at once, on a deliberately tiny geometry:
    // multi-word lines, L2, retain-flushed, bounded hybrid updates,
    // snarfing — plus replacement pressure. Versioning blocks stay
    // one-word so violation detection is exact (wider blocks add
    // false-sharing squashes the word-exact oracle cannot model).
    for seed in 1000..1015 {
        let wl = Workload::random(seed, 28, 40, 4);
        let mut cfg = SvcConfig::final_design(4);
        cfg.geometry = svc_mem::CacheGeometry::new(4, 2, 4, 1);
        cfg.l2 = Some(svc_mem::L2Config::typical());
        cfg.retain_flushed = true;
        cfg.update_limit = 1;
        run_lockstep(&wl, SvcSystem::new(cfg), seed);
    }
}

#[test]
fn kitchen_sink_full_engine_matches_ideal() {
    use svc::IdealMemory;
    use svc_multiscalar::{Engine, EngineConfig, PredictorModel, TaskSource};

    let profile = {
        let mut p = svc_workloads::WorkloadProfile::demo();
        p.num_tasks = 300;
        p.mispredict_rate = 0.05;
        p
    };
    let wl = svc_workloads::SyntheticWorkload::new(profile, 21);
    let engine_cfg = EngineConfig {
        predictor: PredictorModel {
            accuracy: 0.95,
            detect_cycles: 10,
            seed: 21,
        },
        seed: 21,
        garbage_addr_space: 128,
        ..EngineConfig::default()
    };
    let mut cfg = SvcConfig::final_design(4);
    cfg.l2 = Some(svc_mem::L2Config::typical());
    cfg.retain_flushed = true;
    cfg.update_limit = 2;

    let mut svc_engine = Engine::new(engine_cfg, SvcSystem::new(cfg));
    svc_engine.run(&wl);
    let mut svc_mem_sys = svc_engine.into_memory();
    svc_mem_sys.drain();

    let mut ideal_engine = Engine::new(engine_cfg, IdealMemory::new(4, 1));
    ideal_engine.run(&wl);
    let mut ideal = ideal_engine.into_memory();
    ideal.drain();

    // Compare the full touched address set.
    let mut id = 0;
    while let Some(task) = wl.task(TaskId(id)) {
        for ins in task {
            if let svc_multiscalar::Instr::Store(a, _) = ins {
                assert_eq!(
                    svc_mem_sys.architectural(a),
                    ideal.architectural(a),
                    "kitchen-sink divergence at {a}"
                );
            }
        }
        id += 1;
    }
}

#[test]
fn coarse_versioning_blocks_never_miss_violations() {
    // 2-word versioning blocks (true RL semantics): extra false-sharing
    // squashes are allowed; missed violations or wrong values are not.
    use svc::conformance::run_lockstep_coarse;
    for seed in 1100..1115 {
        let wl = Workload::random(seed, 28, 40, 4);
        let mut cfg = SvcConfig::final_design(4);
        cfg.geometry = svc_mem::CacheGeometry::new(8, 2, 4, 2);
        run_lockstep_coarse(&wl, SvcSystem::new(cfg), seed);
        // Even whole-line L/S bits (the pre-RL strawman) must only ever
        // over-squash.
        let mut cfg = SvcConfig::final_design(4);
        cfg.geometry = svc_mem::CacheGeometry::new(8, 2, 4, 4);
        run_lockstep_coarse(&wl, SvcSystem::new(cfg), seed);
    }
}
