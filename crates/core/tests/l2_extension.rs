//! Tests for the optional shared-L2 extension (beyond the paper's flat
//! next level; see DESIGN.md and the `l2` ablation).

use svc::conformance::{run_lockstep, Workload};
use svc::{SvcConfig, SvcSystem};
use svc_mem::{CacheGeometry, L2Config};
use svc_types::{Addr, Cycle, DataSource, PuId, TaskId, VersionedMemory, Word};

fn with_l2(mut cfg: SvcConfig) -> SvcConfig {
    cfg.l2 = Some(L2Config::typical());
    cfg
}

#[test]
fn l2_conforms_to_the_oracle() {
    for seed in 900..912 {
        let wl = Workload::random(seed, 24, 32, 4);
        run_lockstep(
            &wl,
            SvcSystem::new(with_l2(SvcConfig::final_design(4))),
            seed,
        );
        run_lockstep(&wl, SvcSystem::new(with_l2(SvcConfig::ecs(4))), seed);
    }
}

#[test]
fn l2_absorbs_repeat_misses() {
    // A line is fetched, evicted from the small L1, and refetched: the
    // second fill must be an L2 hit (cheaper than memory).
    let mut cfg = with_l2(SvcConfig::final_design(1));
    cfg.geometry = CacheGeometry::new(1, 1, 4, 1); // one-line L1
    cfg.snarfing = false;
    let mut svc = SvcSystem::new(cfg);
    svc.assign(PuId(0), TaskId(0));
    let a = svc.load(PuId(0), Addr(0), Cycle(0)).unwrap();
    assert_eq!(a.source, DataSource::NextLevel);
    let cold = a.done_at.since(Cycle(0));
    svc.load(PuId(0), Addr(64), Cycle(100)).unwrap(); // evicts line 0
    let b = svc.load(PuId(0), Addr(0), Cycle(200)).unwrap();
    assert_eq!(b.source, DataSource::NextLevel);
    let warm = b.done_at.since(Cycle(200));
    assert!(
        warm < cold,
        "L2 hit ({warm} cycles) must be cheaper than memory ({cold} cycles)"
    );
    let stats = svc.stats();
    assert!(stats.l2_hits >= 1, "second fill hit the L2");
    assert!(stats.l2_misses >= 1, "first fill missed it");
}

#[test]
fn without_l2_repeat_misses_cost_the_same() {
    let mut cfg = SvcConfig::final_design(1);
    cfg.geometry = CacheGeometry::new(1, 1, 4, 1);
    cfg.snarfing = false;
    let mut svc = SvcSystem::new(cfg);
    svc.assign(PuId(0), TaskId(0));
    let a = svc.load(PuId(0), Addr(0), Cycle(0)).unwrap();
    svc.load(PuId(0), Addr(64), Cycle(100)).unwrap();
    let b = svc.load(PuId(0), Addr(0), Cycle(200)).unwrap();
    assert_eq!(
        a.done_at.since(Cycle(0)),
        b.done_at.since(Cycle(200)),
        "flat next level: constant penalty"
    );
    assert_eq!(svc.stats().l2_hits, 0);
}

#[test]
fn committed_writebacks_are_visible_through_the_l2() {
    // Write, commit, drain; then make sure the architectural value reads
    // back even though the L2 may cache (and dirty) the line.
    let mut svc = SvcSystem::new(with_l2(SvcConfig::final_design(2)));
    svc.assign(PuId(0), TaskId(0));
    svc.assign(PuId(1), TaskId(1));
    svc.store(PuId(0), Addr(8), Word(5), Cycle(0)).unwrap();
    svc.commit(PuId(0), Cycle(5));
    let out = svc.load(PuId(1), Addr(8), Cycle(10)).unwrap();
    assert_eq!(out.value, Word(5));
    svc.commit(PuId(1), Cycle(20));
    svc.drain();
    assert_eq!(svc.architectural(Addr(8)), Word(5));
}
