//! Property-based tests for the SVC core: DESIGN.md invariants 1–3 under
//! proptest-generated workloads and schedules, plus algebraic laws of the
//! small building blocks.

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Op, Workload};
use svc::{order_vol, LineSnapshot, SubMask, SvcConfig, SvcSystem};
use svc_types::{Addr, PuId, TaskId, Word};

// ---------------------------------------------------------------------
// SubMask algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn submask_algebra(a in any::<u64>(), b in any::<u64>(), i in 0usize..64) {
        let (ma, mb) = (SubMask(a), SubMask(b));
        // De Morgan, intersection/difference consistency.
        prop_assert_eq!((ma | mb).0, a | b);
        prop_assert_eq!((ma & mb).0, a & b);
        prop_assert_eq!(ma.minus(mb) | (ma & mb), ma);
        prop_assert_eq!(ma.intersects(mb), (a & b) != 0);
        prop_assert_eq!(ma.contains(i), (a >> i) & 1 == 1);
        prop_assert_eq!(ma.count(), a.count_ones() as usize);
        // iter() enumerates exactly the set bits.
        let bits: Vec<usize> = ma.iter().collect();
        prop_assert_eq!(bits.len(), ma.count());
        for &j in &bits {
            prop_assert!(ma.contains(j));
        }
        // set/clear round-trip.
        let mut m = ma;
        m.set(i);
        prop_assert!(m.contains(i));
        m.clear(i);
        prop_assert!(!m.contains(i));
    }
}

// ---------------------------------------------------------------------
// VOL reconstruction (DESIGN.md invariant 2)
// ---------------------------------------------------------------------

/// Random snapshots: a subset of 4 PUs hold the line, committed or not,
/// with arbitrary (possibly dangling) pointers.
fn snapshots_strategy() -> impl Strategy<Value = Vec<LineSnapshot>> {
    proptest::collection::vec(
        (any::<bool>(), any::<bool>(), 0u64..16, proptest::option::of(0usize..4)),
        4,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (valid, committed, task, next))| LineSnapshot {
                pu: PuId(i),
                task: Some(TaskId(task * 4 + i as u64)), // unique per PU
                valid: if valid { SubMask::all(1) } else { SubMask::EMPTY },
                store: SubMask::EMPTY,
                load: SubMask::EMPTY,
                committed,
                stale: false,
                arch: false,
                next: next.map(PuId),
            })
            .collect()
    })
}

proptest! {
    /// order_vol always returns a permutation of the valid members, with
    /// every committed member before every uncommitted member, and the
    /// uncommitted suffix sorted by task — for ANY pointer contents
    /// (including dangling pointers and cycles).
    #[test]
    fn order_vol_is_total_and_stable(snaps in snapshots_strategy()) {
        let vol = order_vol(&snaps);
        let valid: Vec<PuId> = snaps.iter().filter(|s| s.is_valid()).map(|s| s.pu).collect();
        prop_assert_eq!(vol.len(), valid.len());
        for pu in &valid {
            prop_assert!(vol.contains(pu));
        }
        let member = |pu: PuId| snaps.iter().find(|s| s.pu == pu).expect("member");
        // Committed prefix property.
        let first_uncommitted = vol.iter().position(|&q| !member(q).committed);
        if let Some(k) = first_uncommitted {
            for &q in &vol[k..] {
                prop_assert!(!member(q).committed, "no committed after an uncommitted");
            }
            // Uncommitted suffix sorted by task.
            let tasks: Vec<TaskId> = vol[k..].iter().map(|&q| member(q).task.expect("set")).collect();
            let mut sorted = tasks.clone();
            sorted.sort();
            prop_assert_eq!(tasks, sorted);
        }
    }
}

// ---------------------------------------------------------------------
// Full-system differential properties (invariants 1 and 5)
// ---------------------------------------------------------------------

/// Strategy for a small speculative workload.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..24, 0u64..1000, any::<bool>()), 1..7),
            2..24,
        ),
        2usize..5,
    )
        .prop_map(|(raw, num_pus)| Workload {
            tasks: raw
                .into_iter()
                .enumerate()
                .map(|(t, ops)| {
                    ops.into_iter()
                        .enumerate()
                        .map(|(k, (addr, _, is_store))| {
                            if is_store {
                                Op::Store(Addr(addr), Word(((t as u64) << 16) | (k as u64 + 1)))
                            } else {
                                Op::Load(Addr(addr))
                            }
                        })
                        .collect()
                })
                .collect(),
            num_pus,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SVC design agrees with the oracle on every load value, every
    /// violation victim, and the final architectural memory, for
    /// arbitrary workloads and schedules.
    #[test]
    fn svc_matches_oracle(wl in workload_strategy(), seed in 0u64..1_000_000) {
        let n = wl.num_pus;
        for cfg in [SvcConfig::base(n), SvcConfig::ecs(n), SvcConfig::final_design(n)] {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }

    /// Sequential-semantics check without the oracle: running the tasks
    /// through the engine-less lockstep must leave memory identical to a
    /// serial interpretation of the task sequence.
    #[test]
    fn final_memory_is_serial(wl in workload_strategy(), seed in 0u64..1_000_000) {
        // Serial model.
        let mut serial = std::collections::HashMap::new();
        for task in &wl.tasks {
            for op in task {
                if let Op::Store(a, v) = op {
                    serial.insert(*a, *v);
                }
            }
        }
        // run_lockstep already asserts DUT == oracle; the oracle's final
        // memory must equal the serial model too.
        let mut svc = SvcSystem::new(SvcConfig::final_design(wl.num_pus));
        run_lockstep(&wl, svc.clone(), seed);
        // Run again retaining the system to inspect memory.
        use svc_types::VersionedMemory;
        run_lockstep(&wl, SvcSystem::new(SvcConfig::final_design(wl.num_pus)), seed);
        // Drive the serial schedule directly through one PU to cross-check.
        let mut now = svc_types::Cycle(0);
        for (t, task) in wl.tasks.iter().enumerate() {
            svc.assign(PuId(0), TaskId(t as u64));
            for op in task {
                now += 1;
                match *op {
                    Op::Load(a) => {
                        let out = loop {
                            match svc.load(PuId(0), a, now) {
                                Ok(out) => break out,
                                Err(_) => now += 1,
                            }
                        };
                        let _ = out;
                    }
                    Op::Store(a, v) => {
                        loop {
                            match svc.store(PuId(0), a, v, now) {
                                Ok(st) => {
                                    prop_assert!(st.violation.is_none(), "serial run cannot violate");
                                    break;
                                }
                                Err(_) => now += 1,
                            }
                        }
                    }
                }
            }
            now = svc.commit(PuId(0), now).max(now);
        }
        svc.drain();
        for (a, v) in serial {
            prop_assert_eq!(svc.architectural(a), v, "serial SVC at {}", a);
        }
    }
}
