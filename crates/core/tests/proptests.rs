//! Property-based tests for the SVC core: DESIGN.md invariants 1–3 under
//! proptest-generated workloads and schedules, plus algebraic laws of the
//! small building blocks.

use proptest::prelude::*;
use svc::conformance::{run_lockstep, Op, Workload};
use svc::{order_vol, LineSnapshot, SubMask, SvcConfig, SvcSystem, Vcl};
use svc_types::{Addr, PuId, TaskId, Word};

// ---------------------------------------------------------------------
// SubMask algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn submask_algebra(a in any::<u64>(), b in any::<u64>(), i in 0usize..64) {
        let (ma, mb) = (SubMask(a), SubMask(b));
        // De Morgan, intersection/difference consistency.
        prop_assert_eq!((ma | mb).0, a | b);
        prop_assert_eq!((ma & mb).0, a & b);
        prop_assert_eq!(ma.minus(mb) | (ma & mb), ma);
        prop_assert_eq!(ma.intersects(mb), (a & b) != 0);
        prop_assert_eq!(ma.contains(i), (a >> i) & 1 == 1);
        prop_assert_eq!(ma.count(), a.count_ones() as usize);
        // iter() enumerates exactly the set bits.
        let bits: Vec<usize> = ma.iter().collect();
        prop_assert_eq!(bits.len(), ma.count());
        for &j in &bits {
            prop_assert!(ma.contains(j));
        }
        // set/clear round-trip.
        let mut m = ma;
        m.set(i);
        prop_assert!(m.contains(i));
        m.clear(i);
        prop_assert!(!m.contains(i));
    }
}

// ---------------------------------------------------------------------
// VOL reconstruction (DESIGN.md invariant 2)
// ---------------------------------------------------------------------

/// Random snapshots: a subset of 4 PUs hold the line, committed or not,
/// with arbitrary (possibly dangling) pointers.
fn snapshots_strategy() -> impl Strategy<Value = Vec<LineSnapshot>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            any::<bool>(),
            0u64..16,
            proptest::option::of(0usize..4),
        ),
        4,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (valid, committed, task, next))| LineSnapshot {
                pu: PuId(i),
                task: Some(TaskId(task * 4 + i as u64)), // unique per PU
                valid: if valid {
                    SubMask::all(1)
                } else {
                    SubMask::EMPTY
                },
                store: SubMask::EMPTY,
                load: SubMask::EMPTY,
                committed,
                stale: false,
                arch: false,
                next: next.map(PuId),
            })
            .collect()
    })
}

proptest! {
    /// order_vol always returns a permutation of the valid members, with
    /// every committed member before every uncommitted member, and the
    /// uncommitted suffix sorted by task — for ANY pointer contents
    /// (including dangling pointers and cycles).
    #[test]
    fn order_vol_is_total_and_stable(snaps in snapshots_strategy()) {
        let vol = order_vol(&snaps);
        let valid: Vec<PuId> = snaps.iter().filter(|s| s.is_valid()).map(|s| s.pu).collect();
        prop_assert_eq!(vol.len(), valid.len());
        for pu in &valid {
            prop_assert!(vol.contains(pu));
        }
        let member = |pu: PuId| snaps.iter().find(|s| s.pu == pu).expect("member");
        // Committed prefix property.
        let first_uncommitted = vol.iter().position(|&q| !member(q).committed);
        if let Some(k) = first_uncommitted {
            for &q in &vol[k..] {
                prop_assert!(!member(q).committed, "no committed after an uncommitted");
            }
            // Uncommitted suffix sorted by task.
            let tasks: Vec<TaskId> = vol[k..].iter().map(|&q| member(q).task.expect("set")).collect();
            let mut sorted = tasks.clone();
            sorted.sort();
            prop_assert_eq!(tasks, sorted);
        }
    }
}

// ---------------------------------------------------------------------
// Full-system differential properties (invariants 1 and 5)
// ---------------------------------------------------------------------

/// Strategy for a small speculative workload.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..24, 0u64..1000, any::<bool>()), 1..7),
            2..24,
        ),
        2usize..5,
    )
        .prop_map(|(raw, num_pus)| Workload {
            tasks: raw
                .into_iter()
                .enumerate()
                .map(|(t, ops)| {
                    ops.into_iter()
                        .enumerate()
                        .map(|(k, (addr, _, is_store))| {
                            if is_store {
                                Op::Store(Addr(addr), Word(((t as u64) << 16) | (k as u64 + 1)))
                            } else {
                                Op::Load(Addr(addr))
                            }
                        })
                        .collect()
                })
                .collect(),
            num_pus,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SVC design agrees with the oracle on every load value, every
    /// violation victim, and the final architectural memory, for
    /// arbitrary workloads and schedules.
    #[test]
    fn svc_matches_oracle(wl in workload_strategy(), seed in 0u64..1_000_000) {
        let n = wl.num_pus;
        for cfg in [SvcConfig::base(n), SvcConfig::ecs(n), SvcConfig::final_design(n)] {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }

    /// Sequential-semantics check without the oracle: running the tasks
    /// through the engine-less lockstep must leave memory identical to a
    /// serial interpretation of the task sequence.
    #[test]
    fn final_memory_is_serial(wl in workload_strategy(), seed in 0u64..1_000_000) {
        // Serial model.
        let mut serial = std::collections::HashMap::new();
        for task in &wl.tasks {
            for op in task {
                if let Op::Store(a, v) = op {
                    serial.insert(*a, *v);
                }
            }
        }
        // run_lockstep already asserts DUT == oracle; the oracle's final
        // memory must equal the serial model too.
        let mut svc = SvcSystem::new(SvcConfig::final_design(wl.num_pus));
        run_lockstep(&wl, svc.clone(), seed);
        // Run again retaining the system to inspect memory.
        use svc_types::VersionedMemory;
        run_lockstep(&wl, SvcSystem::new(SvcConfig::final_design(wl.num_pus)), seed);
        // Drive the serial schedule directly through one PU to cross-check.
        let mut now = svc_types::Cycle(0);
        for (t, task) in wl.tasks.iter().enumerate() {
            svc.assign(PuId(0), TaskId(t as u64));
            for op in task {
                now += 1;
                match *op {
                    Op::Load(a) => {
                        let out = loop {
                            match svc.load(PuId(0), a, now) {
                                Ok(out) => break out,
                                Err(_) => now += 1,
                            }
                        };
                        let _ = out;
                    }
                    Op::Store(a, v) => {
                        loop {
                            match svc.store(PuId(0), a, v, now) {
                                Ok(st) => {
                                    prop_assert!(st.violation.is_none(), "serial run cannot violate");
                                    break;
                                }
                                Err(_) => now += 1,
                            }
                        }
                    }
                }
            }
            now = svc.commit(PuId(0), now).max(now);
        }
        svc.drain();
        for (a, v) in serial {
            prop_assert_eq!(svc.architectural(a), v, "serial SVC at {}", a);
        }
    }
}

// ---------------------------------------------------------------------
// Randomized-workload conformance (varying PUs, address-space size and
// squash/replay density)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Workload::random_with_density` sweeps the conflict-pressure axes
    /// the hand-built strategy above cannot: PU count, address-space
    /// size (small spaces force write-write conflicts and replays) and
    /// store density. Every SVC design generation must still agree with
    /// the oracle on every load, victim and final memory image.
    #[test]
    fn svc_survives_randomized_conflict_densities(
        seed in 0u64..1_000_000,
        tasks in 2usize..28,
        addr_space in 4u64..48,
        pus in 2usize..6,
        store_pct in 10u64..86,
    ) {
        let wl = Workload::random_with_density(
            seed, tasks, addr_space, pus, store_pct as f64 / 100.0,
        );
        for cfg in [SvcConfig::base(pus), SvcConfig::final_design(pus)] {
            run_lockstep(&wl, SvcSystem::new(cfg), seed);
        }
    }
}

// ---------------------------------------------------------------------
// VCL plan invariants over arbitrary line states
// ---------------------------------------------------------------------

/// Richer snapshots than `snapshots_strategy`: 4 PUs over 4 sub-blocks,
/// arbitrary valid/store/load masks (store and load forced into valid),
/// arbitrary committed flags and arbitrary (possibly cyclic) pointers.
fn rich_snapshots_strategy() -> impl Strategy<Value = Vec<LineSnapshot>> {
    proptest::collection::vec(
        (
            0u64..16,                        // valid mask (4 sub-blocks)
            any::<u64>(),                    // store-mask entropy
            any::<u64>(),                    // load-mask entropy
            any::<bool>(),                   // committed
            0u64..8,                         // task entropy
            proptest::option::of(0usize..4), // next pointer (may dangle/cycle)
        ),
        4,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(
                |(i, (valid, smask, lmask, committed, task, next))| LineSnapshot {
                    pu: PuId(i),
                    task: Some(TaskId(task * 4 + i as u64)), // unique per PU
                    valid: SubMask(valid),
                    store: SubMask(valid & smask & 0xF),
                    load: SubMask(valid & lmask & 0xF),
                    committed,
                    stale: false,
                    arch: false,
                    next: next.map(PuId),
                },
            )
            .collect()
    })
}

fn vcl_all_features() -> Vcl {
    Vcl {
        hybrid_update: true,
        snarfing: true,
        trust_stale: true,
        update_limit: 2,
        retain_flushed: true,
    }
}

/// No PU may appear twice: the version order list is a simple chain, so
/// any duplicate would be a cycle.
fn assert_vol_acyclic(vol: &[PuId]) {
    for (i, a) in vol.iter().enumerate() {
        for b in &vol[i + 1..] {
            assert!(a != b, "PU {a:?} appears twice in the VOL: {vol:?}");
        }
    }
}

/// Each sub-block has at most one flush winner across all PUs — the
/// single most recent committed version of a chain supplies each block.
fn assert_unique_winners(flush: &[(PuId, SubMask)]) {
    for j in 0..4usize {
        let holders = flush.iter().filter(|(_, m)| m.contains(j)).count();
        assert!(
            holders <= 1,
            "sub-block {j} has {holders} flush winners: {flush:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `plan_read` invariants for ANY line state: the resulting VOL is
    /// acyclic, flush winners are unique per sub-block, purge/demote
    /// target distinct committed lines, fill covers exactly the request,
    /// and the requestor always ends up in the VOL.
    #[test]
    fn plan_read_invariants(
        snaps in rich_snapshots_strategy(),
        requestor in 0usize..4,
        task in 100u64..108,
        fill_bits in 1u64..16,
    ) {
        let fill_mask = SubMask(fill_bits);
        // Snarf candidates must hold NO copy of the line (the documented
        // precondition: "caches with a free slot and no copy").
        let candidates: Vec<(PuId, TaskId)> = (0..4)
            .filter(|&q| q != requestor && snaps[q].valid.is_empty())
            .map(|q| (PuId(q), TaskId(200 + q as u64)))
            .collect();
        let plan = vcl_all_features().plan_read(
            &snaps, PuId(requestor), TaskId(task), Some(TaskId(0)), fill_mask, &candidates,
        );
        assert_vol_acyclic(&plan.vol_after);
        assert_unique_winners(&plan.flush);
        prop_assert!(
            plan.vol_after.contains(&PuId(requestor)),
            "the requestor joins the VOL"
        );
        // Fill covers exactly the requested sub-blocks, each once.
        let mut filled: Vec<usize> = plan.fill.iter().map(|&(j, _)| j).collect();
        filled.sort_unstable();
        let expected: Vec<usize> = fill_mask.iter().collect();
        prop_assert_eq!(filled, expected);
        // Purge and demote are disjoint and committed-only.
        for pu in &plan.purge {
            prop_assert!(!plan.demote.contains(pu), "purge ∩ demote = ∅");
            prop_assert!(snaps[pu.index()].committed, "only committed lines purge");
        }
        for pu in &plan.demote {
            prop_assert!(snaps[pu.index()].committed, "only committed lines demote");
        }
        // Snarfers come from the candidate list.
        for pu in &plan.snarfers {
            prop_assert!(candidates.iter().any(|&(q, _)| q == *pu));
        }
    }

    /// `plan_write` invariants: acyclic VOL containing the requestor,
    /// unique flush winners, victims only among younger tasks that
    /// recorded a use of the stored sub-blocks, and committed-only
    /// purges.
    #[test]
    fn plan_write_invariants(
        snaps in rich_snapshots_strategy(),
        requestor in 0usize..4,
        task in 0u64..40,
        store_bits in 1u64..16,
    ) {
        let store_mask = SubMask(store_bits);
        let plan = vcl_all_features().plan_write(
            &snaps, PuId(requestor), TaskId(task), store_mask, SubMask::EMPTY,
        );
        assert_vol_acyclic(&plan.vol_after);
        assert_unique_winners(&plan.flush);
        prop_assert!(plan.vol_after.contains(&PuId(requestor)));
        for &(pu, vtask) in &plan.victims {
            let s = &snaps[pu.index()];
            prop_assert!(!s.committed, "victims are uncommitted");
            prop_assert!(
                s.load.intersects(store_mask),
                "a victim recorded a use of a stored sub-block"
            );
            prop_assert!(
                TaskId(task).is_older_than(vtask),
                "victims are strictly younger than the storer"
            );
        }
        for pu in &plan.purge {
            prop_assert!(snaps[pu.index()].committed);
        }
        // A PU is never both updated and invalidated.
        for pu in &plan.update {
            prop_assert!(
                !plan.invalidate.iter().any(|&(q, _)| q == *pu),
                "update ∩ invalidate = ∅"
            );
        }
    }

    /// `plan_wback` invariants: the evictor leaves the VOL, every
    /// committed line purges, flush winners stay unique and never
    /// overlap the evicted write (the castout supersedes them).
    #[test]
    fn plan_wback_invariants(
        snaps in rich_snapshots_strategy(),
        evictor in 0usize..4,
    ) {
        // The evictor must actually hold the line.
        let mut snaps = snaps;
        if snaps[evictor].valid.is_empty() {
            snaps[evictor].valid = SubMask(1);
        }
        let plan = vcl_all_features().plan_wback(&snaps, PuId(evictor));
        assert_vol_acyclic(&plan.vol_after);
        assert_unique_winners(&plan.flush);
        prop_assert!(
            !plan.vol_after.contains(&PuId(evictor)),
            "the evictor leaves the VOL"
        );
        prop_assert!(
            plan.purge.contains(&PuId(evictor)),
            "the evictor's own line is always purged by its castout"
        );
        for &(pu, mask) in &plan.flush {
            prop_assert!(pu != PuId(evictor), "the castout is not also flushed");
            if !snaps[evictor].committed {
                prop_assert!(
                    !mask.intersects(plan.write_evicted),
                    "active castout supersedes committed sub-blocks"
                );
            }
        }
    }
}
