//! A conformance harness for [`VersionedMemory`] implementations.
//!
//! [`run_lockstep`] drives a memory system under test and the
//! [`IdealMemory`] oracle through the same randomized
//! speculative execution — dispatching tasks to PUs, interleaving their
//! loads and stores in a seeded random order, squashing and replaying on
//! violations, and committing head-first, exactly the paper's §2.1
//! execution model — and panics on any divergence:
//!
//! * a load returning a different value than the oracle's
//!   closest-previous-version semantics,
//! * a memory-dependence violation detected with a different victim (or
//!   not at all),
//! * a different architectural memory image after all tasks commit.
//!
//! Both the SVC and the ARB are validated against this harness in their
//! test suites; any new `VersionedMemory` implementation should be too.

use svc_sim::rng::Xoshiro256;
use svc_types::{
    AccessError, Addr, Cycle, InvariantViolation, LoadOutcome, MemStats, PuId, StoreOutcome,
    TaskId, VersionedMemory, Word,
};

use crate::ideal::IdealMemory;

/// Wraps a memory system so that every mutating call is followed by a
/// full invariant sweep ([`VersionedMemory::check_invariants`], plus
/// [`check_post_squash`](VersionedMemory::check_post_squash) after
/// squashes), panicking on the first violation found. Combine with
/// [`run_lockstep`] to property-test that a watchdog stays silent on
/// healthy randomized executions:
///
/// `run_lockstep(&wl, Watched(SvcSystem::new(cfg)), seed)`
#[derive(Clone)]
pub struct Watched<M>(pub M);

impl<M: VersionedMemory> Watched<M> {
    fn sweep(&self, now: Cycle, after: &str) {
        let found = self.0.check_invariants(now);
        assert!(
            found.is_empty(),
            "watchdog violations after {after}: {found:?}"
        );
    }
}

impl<M: VersionedMemory> VersionedMemory for Watched<M> {
    fn num_pus(&self) -> usize {
        self.0.num_pus()
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.0.assign(pu, task);
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        let out = self.0.load(pu, addr, now)?;
        self.sweep(now, "load");
        Ok(out)
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        let out = self.0.store(pu, addr, value, now)?;
        self.sweep(now, "store");
        Ok(out)
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        let done = self.0.commit(pu, now);
        self.sweep(now, "commit");
        done
    }

    fn squash(&mut self, pu: PuId) {
        self.0.squash(pu);
        let residue = self.0.check_post_squash(pu, Cycle(0));
        assert!(residue.is_empty(), "post-squash residue: {residue:?}");
        self.sweep(Cycle(0), "squash");
    }

    fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        self.0.check_invariants(now)
    }

    fn check_post_squash(&self, pu: PuId, now: Cycle) -> Vec<InvariantViolation> {
        self.0.check_post_squash(pu, now)
    }

    fn drain(&mut self) {
        self.0.drain();
        self.sweep(Cycle(0), "drain");
    }

    fn architectural(&self, addr: Addr) -> Word {
        self.0.architectural(addr)
    }

    fn stats(&self) -> MemStats {
        self.0.stats()
    }

    fn reset_stats(&mut self) {
        self.0.reset_stats();
    }
}

/// One memory operation of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read a word.
    Load(Addr),
    /// Write a word.
    Store(Addr, Word),
}

/// A speculative workload: an ordered sequence of tasks, each a list of
/// memory operations, to be executed on `num_pus` processing units.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The dynamic task sequence.
    pub tasks: Vec<Vec<Op>>,
    /// Number of processing units to execute on.
    pub num_pus: usize,
}

impl Workload {
    /// Generates a seeded random workload of `num_tasks` tasks over a
    /// word-address space of `addr_space` words. Store values are unique
    /// per (task, op) so divergences are attributable.
    pub fn random(seed: u64, num_tasks: usize, addr_space: u64, num_pus: usize) -> Workload {
        Workload::random_with_density(seed, num_tasks, addr_space, num_pus, 0.45)
    }

    /// Like [`Workload::random`], but with an explicit store fraction.
    /// Dense stores over a small address space maximize write-write and
    /// use-before-define conflicts (squash/replay pressure); sparse
    /// stores exercise the sharing and supply paths instead.
    pub fn random_with_density(
        seed: u64,
        num_tasks: usize,
        addr_space: u64,
        num_pus: usize,
        store_frac: f64,
    ) -> Workload {
        let mut rng = Xoshiro256::seed_from(seed);
        let tasks = (0..num_tasks)
            .map(|t| {
                let len = rng.gen_index(1..8);
                (0..len)
                    .map(|i| {
                        let addr = Addr(rng.gen_range(0..addr_space));
                        if rng.gen_bool(store_frac) {
                            Op::Store(addr, Word(((t as u64) << 16) | (i as u64 + 1)))
                        } else {
                            Op::Load(addr)
                        }
                    })
                    .collect()
            })
            .collect();
        Workload { tasks, num_pus }
    }
}

/// Drives `dut` and a fresh oracle in lockstep over `wl` with the given
/// interleaving seed. Returns the number of violation squash events.
///
/// # Panics
///
/// Panics on any divergence between `dut` and the oracle (that is the
/// point), or if the run livelocks.
pub fn run_lockstep<M: VersionedMemory>(wl: &Workload, dut: M, seed: u64) -> u64 {
    run_lockstep_impl(wl, dut, seed, false)
}

/// Like [`run_lockstep`], but for designs whose violation detection is
/// *coarser* than word granularity (multi-word versioning blocks, §3.7):
/// the DUT may report violations the word-exact oracle does not (false
/// sharing) — those squash both sides and execution continues — but a
/// violation the oracle detects and the DUT misses is still fatal, as are
/// value and final-memory divergences.
pub fn run_lockstep_coarse<M: VersionedMemory>(wl: &Workload, dut: M, seed: u64) -> u64 {
    run_lockstep_impl(wl, dut, seed, true)
}

fn run_lockstep_impl<M: VersionedMemory>(
    wl: &Workload,
    mut dut: M,
    seed: u64,
    allow_extra_violations: bool,
) -> u64 {
    assert_eq!(dut.num_pus(), wl.num_pus, "DUT sized for the workload");
    let mut oracle = IdealMemory::new(wl.num_pus, 1);
    let mut rng = Xoshiro256::seed_from(seed ^ 0xD1F);
    let mut running: Vec<Option<(usize, usize)>> = vec![None; wl.num_pus];
    let mut next_task = 0usize;
    let mut committed = 0usize;
    let mut now = Cycle(0);
    let mut squashes = 0u64;

    fn dispatch<M: VersionedMemory>(
        pu: usize,
        task: usize,
        running: &mut [Option<(usize, usize)>],
        dut: &mut M,
        oracle: &mut IdealMemory,
    ) {
        running[pu] = Some((task, 0));
        dut.assign(PuId(pu), TaskId(task as u64));
        oracle.assign(PuId(pu), TaskId(task as u64));
    }

    for pu in 0..wl.num_pus {
        if next_task < wl.tasks.len() {
            dispatch(pu, next_task, &mut running, &mut dut, &mut oracle);
            next_task += 1;
        }
    }

    let mut guard = 0u64;
    while committed < wl.tasks.len() {
        guard += 1;
        assert!(guard < 2_000_000, "lockstep engine livelocked");
        now += 1;
        let busy: Vec<usize> = (0..wl.num_pus).filter(|&p| running[p].is_some()).collect();
        if busy.is_empty() {
            break;
        }
        let pu = busy[rng.gen_index(0..busy.len())];
        let (task, op_idx) = running[pu].expect("picked busy");
        let ops = &wl.tasks[task];

        if op_idx >= ops.len() {
            let oldest = running
                .iter()
                .flatten()
                .map(|&(t, _)| t)
                .min()
                .expect("busy");
            if task == oldest {
                dut.commit(PuId(pu), now);
                oracle.commit(PuId(pu), now);
                committed += 1;
                running[pu] = None;
                if next_task < wl.tasks.len() {
                    dispatch(pu, next_task, &mut running, &mut dut, &mut oracle);
                    next_task += 1;
                }
            }
            continue;
        }

        // A stalled *head* task can never be unblocked by a commit (it is
        // the one that has to commit); the machine frees resources by
        // squashing the youngest running task instead. Younger stalled
        // tasks simply retry after a commit.
        let free_for_head =
            |running: &mut Vec<Option<(usize, usize)>>, dut: &mut M, oracle: &mut IdealMemory| {
                // The squash model is contiguous (victim..tail), so free every
                // task younger than the stalled head, youngest first, and
                // restart them.
                let mut younger: Vec<(usize, usize)> = running
                    .iter()
                    .enumerate()
                    .filter_map(|(p, s)| s.map(|(t, _)| (p, t)))
                    .filter(|&(_, t)| t > task)
                    .collect();
                assert!(
                    !younger.is_empty(),
                    "head task alone exceeds the memory system's speculative capacity"
                );
                younger.sort_by_key(|&(_, t)| core::cmp::Reverse(t));
                for &(p, _) in &younger {
                    dut.squash(PuId(p));
                    oracle.squash(PuId(p));
                    running[p] = None;
                }
                for &(p, t) in younger.iter().rev() {
                    dispatch(p, t, running, dut, oracle);
                }
            };
        let is_head = running
            .iter()
            .flatten()
            .map(|&(t, _)| t)
            .min()
            .expect("busy")
            == task;

        match ops[op_idx] {
            Op::Load(addr) => {
                let s = match dut.load(PuId(pu), addr, now) {
                    Ok(out) => out,
                    Err(AccessError::ReplacementStall { .. } | AccessError::Structural(_)) => {
                        if is_head {
                            free_for_head(&mut running, &mut dut, &mut oracle);
                        }
                        continue; // retry this op later
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                };
                let o = oracle
                    .load(PuId(pu), addr, now)
                    .expect("oracle never stalls");
                assert_eq!(
                    s.value, o.value,
                    "load divergence: task {task} addr {addr} (dut={}, oracle={})",
                    s.value, o.value
                );
                now = now.max(s.done_at);
                running[pu] = Some((task, op_idx + 1));
            }
            Op::Store(addr, value) => {
                let s = match dut.store(PuId(pu), addr, value, now) {
                    Ok(out) => out,
                    Err(AccessError::ReplacementStall { .. } | AccessError::Structural(_)) => {
                        if is_head {
                            free_for_head(&mut running, &mut dut, &mut oracle);
                        }
                        continue;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                };
                let o = oracle.store(PuId(pu), addr, value, now).expect("oracle");
                match (s.violation, o.violation) {
                    (Some(sv), Some(ov)) => {
                        // A coarse design may pick an *earlier* victim
                        // (false sharing widens the squash) — that is
                        // conservative and safe. A *later* victim would
                        // leave the oracle's victim unsquashed: fatal.
                        if sv.victim != ov.victim {
                            assert!(
                                allow_extra_violations && sv.victim < ov.victim,
                                "violation victim divergence: task {task} stores {addr} \
                                 (dut {}, oracle {})",
                                sv.victim,
                                ov.victim
                            );
                        }
                    }
                    (None, None) => {}
                    (Some(sv), None) => assert!(
                        allow_extra_violations,
                        "spurious violation: task {task} stores {addr} squashing {}",
                        sv.victim
                    ),
                    (None, Some(ov)) => panic!(
                        "MISSED violation: task {task} stores {addr}, oracle squashes {}",
                        ov.victim
                    ),
                }
                now = now.max(s.done_at);
                running[pu] = Some((task, op_idx + 1));
                if let Some(v) = s.violation {
                    squashes += 1;
                    let victim = v.victim.0 as usize;
                    let mut to_squash: Vec<(usize, usize)> = running
                        .iter()
                        .enumerate()
                        .filter_map(|(pu, s)| s.map(|(t, _)| (pu, t)))
                        .filter(|&(_, t)| t >= victim)
                        .collect();
                    to_squash.sort_by_key(|&(_, t)| core::cmp::Reverse(t));
                    for &(pu, _) in &to_squash {
                        dut.squash(PuId(pu));
                        oracle.squash(PuId(pu));
                        running[pu] = None;
                    }
                    let mut tasks: Vec<usize> = to_squash.iter().map(|&(_, t)| t).collect();
                    tasks.sort_unstable();
                    let pus: Vec<usize> = to_squash.iter().map(|&(pu, _)| pu).collect();
                    for (i, t) in tasks.into_iter().enumerate() {
                        dispatch(pus[i], t, &mut running, &mut dut, &mut oracle);
                    }
                }
            }
        }
    }

    dut.drain();
    oracle.drain();
    for a in 0..2048 {
        assert_eq!(
            dut.architectural(Addr(a)),
            oracle.architectural(Addr(a)),
            "architectural divergence at {}",
            Addr(a)
        );
    }
    squashes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::random(7, 10, 32, 4);
        let b = Workload::random(7, 10, 32, 4);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.tasks.len(), 10);
        assert!(a.tasks.iter().all(|t| (1..8).contains(&t.len())));
    }

    #[test]
    fn oracle_against_itself_has_no_divergence() {
        let wl = Workload::random(1, 20, 16, 4);
        run_lockstep(&wl, IdealMemory::new(4, 1), 1);
    }
}
