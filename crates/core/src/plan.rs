//! Pure planning for parallel access pre-computation.
//!
//! The expensive part of an SVC miss is *deciding* — snapshotting the
//! line across every cache, ordering the VOL, and running the VCL's
//! combinational planning — not *applying* the decision. This module
//! factors that decision work into pure functions over a [`PlanView`]
//! (read-only borrows of the caches, assignment table, VCL and config) so
//! [`SvcSystem::plan_batch`](crate::SvcSystem) can run it for several
//! PUs' predicted accesses on worker threads, ahead of the engine's
//! issue phase.
//!
//! Correctness contract: a plan produced here for the current state,
//! redeemed while that state is unchanged (the engine guards this with a
//! conflict-set footprint plus a squash counter), yields *byte-identical*
//! values to what the inline miss path would compute — the apply code in
//! `system.rs` is shared, only the source of the decision differs. Any
//! situation the planner does not model (local hits, replacement stalls)
//! is [`SvcPlan::Fallback`], which makes the redeemer recompute inline.

use smallvec::SmallVec;
use svc_types::{Addr, LineId, PuId, TaskId};

use crate::config::SvcConfig;
use crate::line::{LineState, SvcLine};
use crate::mask::SubMask;
use crate::snapshot::LineSnapshot;
use crate::vcl::{ReadPlan, Vcl, WritePlan};
use svc_mem::{CacheArray, WayRef};

/// Read-only borrows of everything the VCL-side planning reads. Built
/// from a live [`SvcSystem`](crate::SvcSystem) (inline planning and the
/// shared snapshot/snarf helpers) or from the detached
/// [`PlanCtx`](crate::system::PlanCtx) a worker thread holds.
pub(crate) struct PlanView<'a> {
    pub caches: &'a [CacheArray<SvcLine>],
    pub assignments: &'a svc_types::TaskAssignments,
    pub vcl: Vcl,
    pub config: &'a SvcConfig,
}

/// How the planned access gets a slot: the line is already resident, or
/// a *clean* victim way is claimed. Dirty victims are never planned —
/// their BusWback mutates same-set state (purging other caches' copies)
/// before the VCL plans the miss itself, so a plan computed ahead of the
/// wback could diverge from the inline path; those misses fall back.
#[derive(Debug, Clone)]
pub(crate) enum Residency {
    /// The cache already holds the line at this way.
    Resident(WayRef),
    /// Claim this way (its current state is clean, so the castout is
    /// silent).
    Claim(WayRef),
}

/// Precomputed products of a BusRead miss.
#[derive(Debug, Clone)]
pub(crate) struct ReadMissPlan {
    pub residency: Residency,
    pub fresh: bool,
    pub fill_mask: SubMask,
    pub plan: ReadPlan,
}

/// Precomputed products of a BusWrite miss.
#[derive(Debug, Clone)]
pub(crate) struct WriteMissPlan {
    pub residency: Residency,
    pub fresh: bool,
    pub fill_mask: SubMask,
    pub plan: WritePlan,
}

/// The planner's verdict for one predicted access. `Fallback` covers
/// every cheap or unplannable case (local hit, §3.4.3 reuse, X-bit
/// store, no task, replacement stall, dirty-victim eviction): the
/// redeemer recomputes inline, which is exactly the sequential behavior.
#[derive(Debug, Clone)]
pub(crate) enum SvcPlan {
    Fallback,
    ReadMiss(ReadMissPlan),
    WriteMiss(WriteMissPlan),
}

impl<'a> PlanView<'a> {
    /// Per-PU snapshots of `line` — the VCL's input (paper Figure 5).
    pub fn snapshots(&self, line: LineId) -> SmallVec<LineSnapshot, 8> {
        (0..self.config.num_pus)
            .map(|i| {
                let pu = PuId(i);
                let task = self.assignments.task_of(pu);
                match self.caches[i].find(line) {
                    Some(r) => {
                        let l = self.caches[i].slot(r);
                        LineSnapshot {
                            pu,
                            task,
                            valid: l.valid,
                            store: l.store,
                            load: l.load,
                            committed: l.committed,
                            stale: l.stale,
                            arch: l.arch,
                            next: l.next,
                        }
                    }
                    None => LineSnapshot {
                        pu,
                        task,
                        valid: SubMask::EMPTY,
                        store: SubMask::EMPTY,
                        load: SubMask::EMPTY,
                        committed: false,
                        stale: false,
                        arch: false,
                        next: None,
                    },
                }
            })
            .collect()
    }

    /// Caches eligible to snarf a fill of `line`: no copy, a free way,
    /// and an assigned task.
    pub fn snarf_candidates(&self, line: LineId, exclude: PuId) -> SmallVec<(PuId, TaskId), 8> {
        if !self.config.snarfing {
            return SmallVec::new();
        }
        (0..self.config.num_pus)
            .filter_map(|i| {
                let q = PuId(i);
                if q == exclude || self.caches[i].find(line).is_some() {
                    return None;
                }
                let task = self.assignments.task_of(q)?;
                let r = self.caches[i].victim_way(line);
                if self.caches[i].slot(r).state() == LineState::Invalid {
                    Some((q, task))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Head task's id, if any task is running.
    pub fn head_task(&self) -> Option<TaskId> {
        self.assignments
            .head()
            .and_then(|pu| self.assignments.task_of(pu))
    }

    /// Mirrors the victim selection of `SvcSystem::ensure_resident`
    /// (fault-free path): resident slot, else the §3.2.5/§3.8.1 victim
    /// preference chain. `None` means a replacement stall or a dirty
    /// victim — both unplannable, both handled inline via fallback.
    fn plan_residency(&self, pu: PuId, line: LineId) -> Option<Residency> {
        if let Some(r) = self.caches[pu.index()].find(line) {
            return Some(Residency::Resident(r));
        }
        let is_head = self.assignments.head() == Some(pu);
        let ways = self.caches[pu.index()].ways_by_lru(line);
        let pick = |want: &[LineState]| {
            ways.iter()
                .copied()
                .find(|&r| want.contains(&self.caches[pu.index()].slot(r).state()))
        };
        let victim = pick(&[LineState::Invalid])
            .or_else(|| pick(&[LineState::PassiveClean]))
            .or_else(|| pick(&[LineState::PassiveDirty]))
            .or_else(|| {
                if is_head {
                    pick(&[LineState::ActiveClean]).or_else(|| pick(&[LineState::ActiveDirty]))
                } else {
                    None
                }
            })?;
        match self.caches[pu.index()].slot(victim).state() {
            LineState::Invalid | LineState::PassiveClean | LineState::ActiveClean => {
                Some(Residency::Claim(victim))
            }
            // Dirty victim: the BusWback would run between this plan and
            // its redemption — unplannable, see [`Residency`].
            LineState::PassiveDirty | LineState::ActiveDirty => None,
        }
    }

    /// The slot state the access will see after residency is applied:
    /// `(fresh, valid-mask-we-already-hold)`. Matches the inline miss
    /// path's `fresh` formula, evaluated against the post-`ensure_resident`
    /// slot (a claimed way is always fresh and empty).
    fn freshness(&self, pu: PuId, residency: &Residency) -> (bool, SubMask) {
        match residency {
            Residency::Resident(r) => {
                let l = self.caches[pu.index()].slot(*r);
                let fresh = l.committed || l.valid.is_empty();
                (fresh, if fresh { SubMask::EMPTY } else { l.valid })
            }
            Residency::Claim(_) => (true, SubMask::EMPTY),
        }
    }

    /// Plans a predicted load. See [`SvcPlan`] for the fallback rules.
    pub fn plan_load(&self, pu: PuId, addr: Addr) -> SvcPlan {
        let Some(task) = self.assignments.task_of(pu) else {
            return SvcPlan::Fallback;
        };
        let g = self.config.geometry;
        let line = g.line_of(addr);
        let j = g.subblock_of(addr);
        if let Some(r) = self.caches[pu.index()].find(line) {
            let l = self.caches[pu.index()].slot(r);
            if !l.committed && l.valid.contains(j) {
                return SvcPlan::Fallback; // local active hit
            }
            if l.committed
                && self.config.stale_bit
                && !l.stale
                && l.store.is_empty()
                && l.valid.contains(j)
            {
                return SvcPlan::Fallback; // §3.4.3 stale-copy reuse
            }
        }
        let Some(residency) = self.plan_residency(pu, line) else {
            return SvcPlan::Fallback; // replacement stall
        };
        let (fresh, have) = self.freshness(pu, &residency);
        let fill_mask = SubMask::all(g.subblocks_per_line()).minus(have);
        let snaps = self.snapshots(line);
        let candidates = self.snarf_candidates(line, pu);
        let plan = self
            .vcl
            .plan_read(&snaps, pu, task, self.head_task(), fill_mask, &candidates);
        SvcPlan::ReadMiss(ReadMissPlan {
            residency,
            fresh,
            fill_mask,
            plan,
        })
    }

    /// Plans a predicted store. See [`SvcPlan`] for the fallback rules.
    pub fn plan_store(&self, pu: PuId, addr: Addr) -> SvcPlan {
        let Some(task) = self.assignments.task_of(pu) else {
            return SvcPlan::Fallback;
        };
        let g = self.config.geometry;
        let line = g.line_of(addr);
        let j = g.subblock_of(addr);
        if let Some(r) = self.caches[pu.index()].find(line) {
            let l = self.caches[pu.index()].slot(r);
            let covers = g.words_per_subblock() == 1 || l.valid.contains(j);
            if !l.committed && !l.store.is_empty() && l.next.is_none() && covers {
                return SvcPlan::Fallback; // local owner hit
            }
            if l.exclusive && !l.stale && l.next.is_none() && covers {
                return SvcPlan::Fallback; // X-bit silent store
            }
        }
        let Some(residency) = self.plan_residency(pu, line) else {
            return SvcPlan::Fallback; // replacement stall
        };
        let (fresh, have) = self.freshness(pu, &residency);
        let store_mask = SubMask::single(j);
        let mut fill_mask = SubMask::all(g.subblocks_per_line()).minus(have);
        if g.words_per_subblock() == 1 {
            fill_mask = fill_mask.minus(store_mask);
        }
        let snaps = self.snapshots(line);
        let plan = self.vcl.plan_write(&snaps, pu, task, store_mask, fill_mask);
        SvcPlan::WriteMiss(WriteMissPlan {
            residency,
            fresh,
            fill_mask,
            plan,
        })
    }
}
