//! # Speculative Versioning Cache (SVC)
//!
//! A from-scratch implementation of the memory system proposed in
//! *"Speculative Versioning Cache"* (Gopal, Vijaykumar, Smith, Sohi; HPCA
//! 1998): a private-cache, snooping-bus memory system that conceptually
//! unifies cache coherence and memory-dependence speculation for processors
//! with hierarchical execution models (multiscalar processors, speculative
//! chip multiprocessors).
//!
//! Each processing unit (PU) has a private L1 cache. Lines carry, beyond
//! the usual valid/dirty state, the paper's speculative-versioning bits —
//! **L**oad (use-before-define), **C**ommit, s**T**ale, and
//! **A**rchitectural — plus a pointer linking the copies and versions of
//! each line into a **Version Ordering List (VOL)**. On every bus request
//! the **Version Control Logic (VCL)** reconstructs the VOL, supplies the
//! correct version to loads, invalidates the right range of copies on
//! stores (detecting memory-dependence violations), writes back committed
//! versions lazily and in order, and repairs the VOL after task squashes.
//!
//! The paper presents the SVC as a progression of designs; all of them are
//! runnable here through [`SvcConfig`] presets:
//!
//! | Preset | Paper § | Adds |
//! |---|---|---|
//! | [`SvcConfig::base`] | §3.2 | V/S/L bits + VOL pointer, flush-on-commit, invalidate-all on squash |
//! | [`SvcConfig::ec`] | §3.4 | C and T bits: one-cycle commits, lazy writeback, stale-copy reuse |
//! | [`SvcConfig::ecs`] | §3.5 | A bit: architectural copies survive squashes; VOL repair |
//! | [`SvcConfig::hr`] | §3.6 | snarfing against reference spreading |
//! | [`SvcConfig::rl`] | §3.7 | multi-word lines with per-sub-block L/S/V bits and store masks |
//! | [`SvcConfig::final_design`] | §3.8 | hybrid update–invalidate protocol |
//!
//! # Quick start
//!
//! ```
//! use svc::{SvcConfig, SvcSystem};
//! use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};
//!
//! let mut svc = SvcSystem::new(SvcConfig::final_design(4));
//! // Task 0 on PU0 stores; task 1 on PU1 loads the value speculatively.
//! svc.assign(PuId(0), TaskId(0));
//! svc.assign(PuId(1), TaskId(1));
//! svc.store(PuId(0), Addr(64), Word(42), Cycle(0))?;
//! let out = svc.load(PuId(1), Addr(64), Cycle(10))?;
//! assert_eq!(out.value, Word(42)); // closest previous version
//! // Commit in program order; the speculative state becomes architectural.
//! svc.commit(PuId(0), Cycle(20));
//! svc.commit(PuId(1), Cycle(21));
//! svc.drain();
//! assert_eq!(svc.architectural(Addr(64)), Word(42));
//! # Ok::<(), svc_types::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod conformance;
mod ideal;
mod inspect;
mod line;
mod mask;
mod plan;
mod snapshot;
mod system;
mod vcl;
mod vol;
pub mod watchdog;

pub use config::{SvcConfig, SvcDesign};
pub use ideal::IdealMemory;
pub use inspect::StateCensus;
pub use line::{LineState, SvcLine};
pub use mask::SubMask;
pub use snapshot::LineSnapshot;
pub use vcl::{ReadPlan, SupplySource, Vcl, WbackPlan, WritePlan};
pub use vol::order_vol;

pub use system::SvcSystem;
