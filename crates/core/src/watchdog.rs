//! Runtime invariant watchdog for the SVC.
//!
//! Validates the protocol-level consistency of the complete speculative
//! state — the distributed Version Ordering List and the per-line state
//! bits — and reports every problem as a structured
//! [`InvariantViolation`] instead of panicking, so a harness can feed the
//! violations to forensics and keep the run alive.
//!
//! The checks (each maps to an [`InvariantKind`]):
//!
//! - **State-bit legality** ([`InvariantKind::StateBits`]): store and load
//!   masks are subsets of the valid mask, and a committed line carries no
//!   load (use-before-define) bits — commits flash-clear L (§3.4).
//! - **Orphans** ([`InvariantKind::Orphan`]): every uncommitted valid line
//!   belongs to its PU's *current* task; a task-less PU holding
//!   speculative state has escaped a commit/squash.
//! - **VOL acyclicity** ([`InvariantKind::VolCycle`]): following the
//!   distributed `next` pointers among the current holders never revisits
//!   a cache. (Pointers *to caches that no longer hold the line* are
//!   legal dangling ends — squashes leave them behind and the next bus
//!   request repairs them, §3.5.)
//! - **Program-order consistency** ([`InvariantKind::VolOrder`]): every
//!   stored pointer between two live holders agrees with the VOL
//!   reconstructed by [`order_vol`] — no pointer runs backwards.
//!   Two epoch-stale shapes are exempt because only bus transactions
//!   rewrite pointers: a pointer *from* an uncommitted architectural
//!   copy (local reuse, §3.4.3/§3.5.1, adopts the line without a bus
//!   transaction) and a pointer from an uncommitted holder *to* a
//!   committed one (a squash flash-reverted the destination). Both are
//!   repaired by the next bus request, like dangling pointers.
//! - **Exclusive ownership** ([`InvariantKind::Ownership`]): a line with
//!   the X bit set (Figure 16 silent-store optimization) is the only
//!   cached copy anywhere.
//! - **Post-squash cleanliness** ([`InvariantKind::SquashResidue`],
//!   [`check_post_squash`]): immediately after a squash, no uncommitted
//!   valid line survives in the squashed PU's cache.

use smallvec::SmallVec;
use svc_types::{Cycle, InvariantKind, InvariantViolation, LineId, PuId};

use crate::snapshot::LineSnapshot;
use crate::system::SvcSystem;
use crate::vol::order_vol;

/// Runs every whole-system invariant check. Returns all violations found
/// (empty for a healthy system).
pub fn check_system(sys: &SvcSystem, now: Cycle) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for line in sys.resident_lines() {
        check_line(sys, line, &sys.snapshots(line), now, &mut out);
    }
    out
}

/// Runs the post-squash cleanliness check for `pu`: called immediately
/// after a squash, it reports any uncommitted valid line that survived.
pub fn check_post_squash(sys: &SvcSystem, pu: PuId, now: Cycle) -> Vec<InvariantViolation> {
    sys.speculative_lines_of(pu)
        .into_iter()
        .map(|line| InvariantViolation {
            kind: InvariantKind::SquashResidue,
            pu: Some(pu),
            line: Some(line),
            cycle: now,
            detail: "uncommitted valid line survived the squash".to_string(),
        })
        .collect()
}

fn violation(
    kind: InvariantKind,
    pu: Option<PuId>,
    line: LineId,
    now: Cycle,
    detail: String,
) -> InvariantViolation {
    InvariantViolation {
        kind,
        pu,
        line: Some(line),
        cycle: now,
        detail,
    }
}

fn check_line(
    sys: &SvcSystem,
    line: LineId,
    snaps: &[LineSnapshot],
    now: Cycle,
    out: &mut Vec<InvariantViolation>,
) {
    let holders: SmallVec<&LineSnapshot, 8> = snaps.iter().filter(|s| s.is_valid()).collect();
    let mut orphaned = false;
    for s in &holders {
        if !s.store.minus(s.valid).is_empty() {
            out.push(violation(
                InvariantKind::StateBits,
                Some(s.pu),
                line,
                now,
                format!("store mask {:?} exceeds valid mask {:?}", s.store, s.valid),
            ));
        }
        if !s.load.minus(s.valid).is_empty() {
            out.push(violation(
                InvariantKind::StateBits,
                Some(s.pu),
                line,
                now,
                format!("load mask {:?} exceeds valid mask {:?}", s.load, s.valid),
            ));
        }
        if s.committed && !s.load.is_empty() {
            out.push(violation(
                InvariantKind::StateBits,
                Some(s.pu),
                line,
                now,
                "committed line carries load bits".to_string(),
            ));
        }
        if !s.committed && s.task.is_none() {
            orphaned = true;
            out.push(violation(
                InvariantKind::Orphan,
                Some(s.pu),
                line,
                now,
                "uncommitted valid line on a PU with no assigned task".to_string(),
            ));
        }
        if sys.line_exclusive(s.pu, line) && holders.len() > 1 {
            out.push(violation(
                InvariantKind::Ownership,
                Some(s.pu),
                line,
                now,
                format!("X bit set but {} caches hold the line", holders.len()),
            ));
        }
    }

    // VOL acyclicity: walk the next pointers from every holder; a pointer
    // to a non-holder is a legal dangling end, but revisiting a holder
    // already on the walk is a cycle. Report at most once per line.
    'walks: for start in &holders {
        let mut visited: SmallVec<PuId, 8> = SmallVec::new();
        visited.push(start.pu);
        let mut cur = start.next;
        while let Some(q) = cur {
            let Some(next_snap) = holders.iter().find(|s| s.pu == q) else {
                break; // dangling: squash repair pending
            };
            if visited.contains(&q) {
                out.push(violation(
                    InvariantKind::VolCycle,
                    Some(q),
                    line,
                    now,
                    format!("VOL pointer walk from {} revisits {}", start.pu, q),
                ));
                break 'walks;
            }
            visited.push(q);
            cur = next_snap.next;
        }
    }

    // Program-order consistency: the stored forward pointers must agree
    // with the reconstruction. (Skipped if an orphan was found — the
    // reconstruction needs every uncommitted holder to have a task.)
    if !orphaned {
        let vol = order_vol(snaps);
        for s in holders.iter().filter(|s| !vol.contains(&s.pu)) {
            out.push(violation(
                InvariantKind::VolOrder,
                Some(s.pu),
                line,
                now,
                "holder missing from the reconstructed VOL".to_string(),
            ));
        }
        for s in &holders {
            // Local reuse of a passive architectural copy (§3.4.3/§3.5.1)
            // clears C and adopts the line for the PU's current task
            // *without* a bus transaction, so its stored pointer is an
            // epoch-stale leftover until the next bus request rewrites
            // it. Such pointers are legal in any direction — only check
            // pointers written by a bus transaction in this epoch.
            if !s.committed && s.arch {
                continue;
            }
            let Some(q) = s.next else { continue };
            let Some(dst) = holders.iter().find(|h| h.pu == q) else {
                continue; // dangling: squash repair pending
            };
            // A squash flash-reverts architectural copies back to
            // committed (C/A optimization) without repairing inbound
            // pointers, so an uncommitted holder legally pointing at a
            // now-committed copy is the in-cache analog of a dangling
            // pointer; the next bus request rewrites it.
            if !s.committed && dst.committed {
                continue;
            }
            let (Some(i), Some(j)) = (
                vol.iter().position(|&p| p == s.pu),
                vol.iter().position(|&p| p == q),
            ) else {
                continue; // missing from the VOL: handled above
            };
            if j <= i {
                out.push(violation(
                    InvariantKind::VolOrder,
                    Some(s.pu),
                    line,
                    now,
                    format!("VOL pointer {} -> {} runs against program order", s.pu, q),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use svc_types::{Addr, PuId, TaskId, VersionedMemory, Word};

    use super::*;
    use crate::config::SvcConfig;

    fn busy_system(design: fn(usize) -> SvcConfig) -> SvcSystem {
        let mut sys = SvcSystem::new(design(4));
        for i in 0..4 {
            sys.assign(PuId(i), TaskId(i as u64));
        }
        // Mix of shared lines, private lines, versions and copies.
        for i in 0..4u64 {
            let pu = PuId(i as usize);
            sys.store(pu, Addr(64 + i), Word(i), Cycle(i)).unwrap();
            sys.load(pu, Addr(64), Cycle(10 + i)).unwrap();
            sys.store(pu, Addr(128 + 8 * i), Word(i), Cycle(20 + i))
                .unwrap();
        }
        sys
    }

    #[test]
    fn healthy_system_has_no_violations() {
        for design in [
            SvcConfig::base as fn(usize) -> SvcConfig,
            SvcConfig::final_design,
        ] {
            let sys = busy_system(design);
            assert_eq!(check_system(&sys, Cycle(30)), Vec::new());
        }
    }

    #[test]
    fn flipped_state_bit_is_caught() {
        let mut sys = busy_system(SvcConfig::final_design);
        assert!(sys.fault_flip_state_bit(PuId(1), Addr(64)));
        let found = check_system(&sys, Cycle(40));
        assert!(
            found.iter().any(|v| v.kind == InvariantKind::StateBits),
            "got {found:?}"
        );
    }

    #[test]
    fn spliced_vol_is_caught() {
        let mut sys = busy_system(SvcConfig::final_design);
        assert!(sys.fault_splice_vol(Addr(64)));
        let found = check_system(&sys, Cycle(40));
        assert!(
            found
                .iter()
                .any(|v| v.kind == InvariantKind::VolCycle || v.kind == InvariantKind::VolOrder),
            "got {found:?}"
        );
    }

    #[test]
    fn post_squash_is_clean() {
        let mut sys = busy_system(SvcConfig::final_design);
        sys.squash_at(PuId(3), Cycle(50));
        assert_eq!(check_post_squash(&sys, PuId(3), Cycle(50)), Vec::new());
        assert_eq!(check_system(&sys, Cycle(50)), Vec::new());
    }

    #[test]
    fn commit_and_drain_stay_clean() {
        let mut sys = busy_system(SvcConfig::final_design);
        for i in 0..4 {
            sys.commit(PuId(i), Cycle(60 + i as u64));
            assert_eq!(check_system(&sys, Cycle(60 + i as u64)), Vec::new());
        }
        sys.drain();
        assert_eq!(check_system(&sys, Cycle(70)), Vec::new());
    }
}
